//! Why merge at all? (Paper §1: fewer relations → fewer joins → better
//! access performance.) Loads the same university data into an unmerged
//! and a merged engine database and compares the work a "course detail"
//! query does in each.
//!
//! Run with `cargo run --release --example query_speedup`.

use std::time::Instant;

use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge::core::Merge;
use relmerge::engine::{Database, DbmsProfile, JoinStep, QueryPlan};
use relmerge::relational::{Tuple, Value};
use relmerge::workload::{generate_university, UniversitySpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses: 5_000,
            ..UniversitySpec::default()
        },
        &mut rng,
    )?;
    let mut merged = Merge::plan(
        &u.schema,
        &["COURSE", "OFFER", "TEACH", "ASSIST"],
        "COURSE_M",
    )?;
    merged.remove_all_removable()?;

    let mut unmerged_db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
    unmerged_db.load_state(&u.state)?;
    let merged_state = merged.apply(&u.state)?;
    let mut merged_db = Database::new(merged.schema().clone(), DbmsProfile::ideal())?;
    merged_db.load_state(&merged_state)?;

    let keys: Vec<i64> = (0..10_000)
        .map(|_| *u.offered_courses.choose(&mut rng).expect("offers"))
        .collect();

    // Unmerged: lookup + three outer joins (the Figure 3 schema).
    let unmerged_plan = |nr: i64| {
        QueryPlan::lookup("COURSE", &["C.NR"], Tuple::new([Value::Int(nr)]))
            .join(JoinStep::outer("OFFER", &["C.NR"], &["O.C.NR"]))
            .join(JoinStep::outer("TEACH", &["O.C.NR"], &["T.C.NR"]))
            .join(JoinStep::outer("ASSIST", &["O.C.NR"], &["A.C.NR"]))
    };
    // Merged: one probe.
    let merged_plan =
        |nr: i64| QueryPlan::lookup("COURSE_M", &["C.NR"], Tuple::new([Value::Int(nr)]));

    // Correctness first: both plans agree on every sampled key.
    let mut probes = (0u64, 0u64);
    for &nr in keys.iter().take(100) {
        let (r1, s1) = unmerged_db.execute(&unmerged_plan(nr))?;
        let (r2, s2) = merged_db.execute(&merged_plan(nr))?;
        assert_eq!(r1.len(), r2.len());
        probes = (probes.0 + s1.index_probes, probes.1 + s2.index_probes);
    }
    println!(
        "per-query index probes: unmerged {} vs merged {}",
        probes.0 / 100,
        probes.1 / 100
    );

    let start = Instant::now();
    for &nr in &keys {
        let _ = unmerged_db.execute(&unmerged_plan(nr))?;
    }
    let unmerged_time = start.elapsed();
    let start = Instant::now();
    for &nr in &keys {
        let _ = merged_db.execute(&merged_plan(nr))?;
    }
    let merged_time = start.elapsed();
    println!(
        "{} point queries: unmerged {:?}, merged {:?} ({:.2}x)",
        keys.len(),
        unmerged_time,
        merged_time,
        unmerged_time.as_secs_f64() / merged_time.as_secs_f64()
    );
    Ok(())
}
