//! The design pitfall that motivates the paper (§1, Figure 1): the
//! Teorey–Yang–Fry methodology merges a many-to-one relationship set into
//! its many-side entity relation *without* the null constraints needed to
//! keep the schema faithful to the ER semantics — so the database can reach
//! states that correspond to no ER instance.
//!
//! Run with `cargo run --example teorey_pitfall`.

use relmerge::eer::{figures, repair, translate, translate_teorey};
use relmerge::relational::{DatabaseState, Tuple, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eer = figures::fig1_eer();
    println!("ER schema (paper Figure 1(i)):\n{eer}");

    // The modular translation: one relation per object-set, BCNF, faithful.
    let rs = translate(&eer)?;
    println!("RS — modular translation (Figure 1(ii)):\n{rs}");

    // The Teorey translation: EMPLOYEE folded into WORKS.
    let teorey = translate_teorey(&eer)?;
    println!(
        "RS' — Teorey translation (Figure 1(iii)):\n{}",
        teorey.schema
    );
    for f in &teorey.folded {
        println!(
            "folded relationship {} absorbed entity {} (nullable: {:?} {:?})",
            f.relationship, f.entity, f.one_side_attrs, f.rel_attrs
        );
    }

    // The pitfall: an employee with an assignment DATE but no PROJECT.
    // The ER schema cannot express this (DATE is an attribute *of the
    // WORKS relationship*), yet RS' accepts it.
    let mut bad = DatabaseState::empty_for(&teorey.schema)?;
    bad.insert(
        "WORKS",
        Tuple::new([Value::Int(1), Value::Null, Value::Date(100)]),
    )?;
    println!(
        "\nRS' accepts employee 1 with DATE=d100 but no project: {}",
        bad.is_consistent(&teorey.schema)?
    );
    assert!(bad.is_consistent(&teorey.schema)?);

    // The paper's fix: the null-existence constraint DATE ⊑ NR.
    let repaired = repair(&teorey)?;
    println!(
        "Repaired schema adds: {}",
        repaired
            .null_constraints()
            .iter()
            .filter(|c| !teorey.schema.null_constraints().contains(c))
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "Repaired schema accepts the bad state: {}",
        bad.is_consistent(&repaired)?
    );
    assert!(!bad.is_consistent(&repaired)?);

    // Legitimate states still pass.
    let mut good = DatabaseState::empty_for(&repaired)?;
    good.insert("PROJECT", Tuple::new([Value::Int(7)]))?;
    good.insert(
        "WORKS",
        Tuple::new([Value::Int(1), Value::Int(7), Value::Date(100)]),
    )?;
    good.insert(
        "WORKS",
        Tuple::new([Value::Int(2), Value::Null, Value::Null]),
    )?;
    assert!(good.is_consistent(&repaired)?);
    println!("A faithful state (assigned + unassigned employees) still passes.");
    Ok(())
}
