//! §5.2's catalogue (Figure 8): which EER structures can live in a single
//! relation, and what it costs in constraints. For each of the four
//! structures: classify, translate, merge, remove, and show the surviving
//! constraint set next to the classifier's verdict.
//!
//! Run with `cargo run --example fig8_catalog`.

use relmerge::core::{Merge, MergeReport};
use relmerge::eer::{
    classify_generalization, classify_many_one_star, figures, translate, Amenability,
    ClassifiedGroup, EerSchema,
};

fn demo(
    label: &str,
    eer: &EerSchema,
    group: ClassifiedGroup,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure {label}: root {} ==", group.root);
    println!(
        "classifier: {}",
        match group.amenability {
            Amenability::NnaOnly => "single relation with only NNA constraints".to_owned(),
            Amenability::GeneralNullConstraints => format!(
                "single relation needs general null constraints ({})",
                group.violations.join("; ")
            ),
        }
    );
    let schema = translate(eer)?;
    let mut set: Vec<&str> = vec![group.root.as_str()];
    set.extend(group.members.iter().map(String::as_str));
    let mut merged = Merge::plan(&schema, &set, "SINGLE")?;
    merged.remove_all_removable()?;
    println!("{}", MergeReport::new(&merged));
    let survivors: Vec<String> = merged
        .generated_null_constraints()
        .iter()
        .map(ToString::to_string)
        .collect();
    println!("surviving null constraints: {}\n", survivors.join("; "));
    // The classifier's NNA-only verdict must match reality.
    let nna_only = merged
        .generated_null_constraints()
        .iter()
        .all(|c| c.is_nna());
    assert_eq!(nna_only, group.amenability == Amenability::NnaOnly);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let i = figures::fig8_i();
    demo(
        "8(i)",
        &i,
        classify_generalization(&i, "VEHICLE").expect("group"),
    )?;
    let ii = figures::fig8_ii();
    demo(
        "8(ii)",
        &ii,
        classify_many_one_star(&ii, "PRODUCT").expect("group"),
    )?;
    let iii = figures::fig8_iii();
    demo(
        "8(iii)",
        &iii,
        classify_generalization(&iii, "ACCOUNT").expect("group"),
    )?;
    let iv = figures::fig8_iv();
    demo(
        "8(iv)",
        &iv,
        classify_many_one_star(&iv, "COURSE").expect("group"),
    )?;
    println!("Paper §5.2: (i),(ii) need general null constraints; (iii),(iv) only NNA. ✓");
    Ok(())
}
