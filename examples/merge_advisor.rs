//! The merge advisor: given a schema and a target DBMS, find and apply
//! every merge the system can maintain — the paper's SDT option (ii)
//! automated, with Propositions 5.1/5.2 as admissibility gates.
//!
//! Run with `cargo run --example merge_advisor`.

use relmerge::core::{Advisor, AdvisorConfig};
use relmerge::ddl::{advisor_config_for, Dialect};
use relmerge::eer::{figures, translate};
use relmerge::workload::{star_schema, StarSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scenario 1: the university schema under three regimes.
    let schema = translate(&figures::fig7_eer())?;
    println!(
        "University schema: {} relation-schemes, {} inclusion dependencies\n",
        schema.schemes().len(),
        schema.inds().len()
    );

    for (label, config) in [
        (
            "permissive (triggers available)",
            AdvisorConfig::permissive(),
        ),
        (
            "declarative-only (plain DB2)",
            AdvisorConfig::declarative_only(),
        ),
        (
            "SQL-92 (CHECKs, no triggers)",
            advisor_config_for(Dialect::Sql92),
        ),
    ] {
        println!("== {label} ==");
        let proposals = Advisor::new(config).propose_static(&schema)?;
        for p in &proposals {
            println!(
                "  candidate {:?}: eliminates {} join(s); key-based INDs: {}; \
                 non-null keys: {}; NNA-only: {}; admissible: {}",
                p.members,
                p.joins_eliminated,
                p.inds_key_based,
                p.keys_non_null,
                p.nna_only,
                p.admissible
            );
        }
        let (final_schema, applied) = Advisor::new(config).greedy(&schema)?;
        println!(
            "  applied {} merge(s): {} -> {} relation-schemes\n",
            applied.len(),
            schema.schemes().len(),
            final_schema.schemes().len()
        );
    }

    // Scenario 2: a wide star — the advisor collapses it to 2 schemes.
    let spec = StarSpec {
        satellites: 6,
        non_key_attrs: 1,
        externals: 1,
    };
    let star = star_schema(&spec);
    println!("Synthetic star: {} schemes -> ", star.schemes().len());
    let (collapsed, applied) = Advisor::new(AdvisorConfig::declarative_only()).greedy(&star)?;
    println!(
        "{} schemes after {} merge(s); final schema:\n{collapsed}",
        collapsed.schemes().len(),
        applied.len()
    );
    Ok(())
}
