//! The paper's full university pipeline (Figures 3–7):
//!
//! 1. model the Figure 7 EER schema;
//! 2. translate it into the Figure 3 BCNF relational schema;
//! 3. merge the COURSE chain (Figure 5) and remove redundant attributes
//!    (Figure 6);
//! 4. emit deployment DDL for all four dialects, showing which constraint
//!    classes each system maintains and how.
//!
//! Run with `cargo run --example university`.

use relmerge::core::{Merge, MergeReport};
use relmerge::ddl::{backward_migration, forward_migration, generate, Dialect};
use relmerge::eer::figures;
use relmerge::eer::translate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The EER schema.
    let eer = figures::fig7_eer();
    println!("EER schema (paper Figure 7):\n{eer}");

    // 2. Translation (the paper's Figure 3).
    let schema = translate(&eer)?;
    println!("Relational translation (paper Figure 3):\n{schema}");
    assert!(schema.is_bcnf());
    assert!(schema.key_based_inds_only());
    assert!(schema.nna_only());

    // 3. Merge the whole COURSE chain and remove redundant keys.
    let mut merged = Merge::plan(
        &schema,
        &["COURSE", "OFFER", "TEACH", "ASSIST"],
        "COURSE_ALL",
    )?;
    println!(
        "Merged (paper Figure 5), removable: {:?}",
        merged.removable_groups()
    );
    let removed = merged.remove_all_removable()?;
    println!(
        "Removed keys of: {removed:?} (paper Figure 6)\n{}",
        merged.schema()
    );
    assert!(merged.schema().is_bcnf());
    println!("{}", MergeReport::new(&merged));

    // Data migration: the state mappings as executable SQL.
    println!(
        "-- forward migration (η):\n{}\n",
        forward_migration(&merged)?
    );
    println!("-- backward migration (η′):");
    for stmt in backward_migration(&merged)? {
        println!("{stmt}\n");
    }

    // 4. Deployment DDL. The merged schema carries the null-existence
    //    constraints T.F.SSN ⊑ O.D.NAME and A.S.SSN ⊑ O.D.NAME, which only
    //    some systems can maintain (paper Section 5.1).
    for dialect in Dialect::ALL {
        let script = generate(merged.schema(), dialect)?;
        println!(
            "--- {dialect}: {} statements, {} procedural, {} unsupported ---",
            script.statements.len(),
            script.procedural_count(),
            script.unsupported().len()
        );
        if dialect == Dialect::Sybase40 {
            // Show the trigger bodies SYBASE needs for the general null
            // constraints.
            for s in &script.statements {
                if let relmerge::ddl::DdlStatement::Trigger { sql, .. } = s {
                    if sql.contains("_nc") {
                        println!("{sql}\n");
                    }
                }
            }
        }
        if dialect == Dialect::Db2 {
            for s in script.unsupported() {
                println!("{}", s.sql());
            }
        }
    }
    Ok(())
}
