//! Quickstart: merge two relation-schemes and round-trip a database state.
//!
//! Reproduces the paper's Figure 2: `OFFER (COURSE, DEPT)` and
//! `TEACH (COURSE, FACULTY)` merge into a single `ASSIGN` relation-scheme,
//! BCNF and information capacity preserved.
//!
//! Run with `cargo run --example quickstart`.

use relmerge::core::{check_forward, Merge};
use relmerge::relational::{
    Attribute, DatabaseState, Domain, NullConstraint, RelationScheme, RelationalSchema, Tuple,
    Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the schema: two relation-schemes keyed by compatible
    //    course numbers, every attribute nulls-not-allowed.
    let mut schema = RelationalSchema::new();
    schema.add_scheme(RelationScheme::new(
        "OFFER",
        vec![
            Attribute::new("O.CN", Domain::Int),
            Attribute::new("O.DN", Domain::Text),
        ],
        &["O.CN"],
    )?)?;
    schema.add_scheme(RelationScheme::new(
        "TEACH",
        vec![
            Attribute::new("T.CN", Domain::Int),
            Attribute::new("T.FN", Domain::Text),
        ],
        &["T.CN"],
    )?)?;
    schema.add_null_constraint(NullConstraint::nna("OFFER", &["O.CN", "O.DN"]))?;
    schema.add_null_constraint(NullConstraint::nna("TEACH", &["T.CN", "T.FN"]))?;
    println!("Input schema:\n{schema}");

    // 2. Merge. Neither scheme's key contains the other's (no inclusion
    //    dependency), so a synthetic key-relation `CN` is created
    //    (Definition 4.1's second case).
    let merged = Merge::plan_with_synthetic_key(&schema, &["OFFER", "TEACH"], "ASSIGN", &["CN"])?;
    println!("Merged schema:\n{}", merged.schema());
    println!("BCNF preserved: {}\n", merged.schema().is_bcnf());

    // 3. Map a concrete state through η and back through η′.
    let mut state = DatabaseState::empty_for(&schema)?;
    state.insert(
        "OFFER",
        Tuple::new([Value::Int(101), Value::text("physics")]),
    )?;
    state.insert("OFFER", Tuple::new([Value::Int(102), Value::text("math")]))?;
    state.insert("TEACH", Tuple::new([Value::Int(101), Value::text("curie")]))?;
    state.insert(
        "TEACH",
        Tuple::new([Value::Int(103), Value::text("noether")]),
    )?;

    let merged_state = merged.apply(&state)?;
    println!("Merged relation (outer-equi-join on the key-relation):");
    println!(
        "ASSIGN {}",
        merged_state.relation("ASSIGN").expect("merged relation")
    );

    let back = merged.invert(&merged_state)?;
    assert_eq!(back, state, "η′ ∘ η must be the identity");

    // 4. The machine-checked Proposition 4.1 conditions.
    let report = check_forward(&merged, &state)?;
    println!(
        "Definition 2.1 conditions: consistent={} round-trip={} values-preserved={}",
        report.forward_consistent, report.forward_round_trip, report.forward_values_preserved
    );
    assert!(report.holds());
    println!("Information capacity preserved. Done.");
    Ok(())
}
