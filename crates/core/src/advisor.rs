//! A merge advisor: the automated counterpart of the SDT tool's "use
//! merging" option (paper §6), constrained by DBMS capabilities (§5.1).
//!
//! The advisor enumerates candidate merge sets (schemes with pairwise
//! compatible primary keys connected by key-to-key inclusion dependencies,
//! via `Refkey*`), filters them by the target DBMS's capabilities using the
//! Proposition 5.1 / 5.2 predicates, and greedily applies non-overlapping
//! sets largest-first, running `Remove` to completion after each merge.

use std::collections::BTreeSet;

use relmerge_obs as obs;
use relmerge_relational::{RelationalSchema, Result};

use crate::conditions::{
    maximal_merge_sets, prop51_inds_key_based, prop51_keys_non_null, prop52_nna_only,
};
use crate::merge::{Merge, Merged};

/// What the target DBMS can maintain — drives which merges the advisor is
/// willing to propose (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvisorConfig {
    /// The DBMS supports only key-based inclusion dependencies (no
    /// triggers/rules for general ones) — require Proposition 5.1(i).
    pub require_key_based_inds: bool,
    /// The DBMS cannot maintain nullable keys (all nulls identical) —
    /// require Proposition 5.1(ii).
    pub require_non_null_keys: bool,
    /// The DBMS supports only declarative nulls-not-allowed constraints —
    /// require Proposition 5.2.
    pub require_nna_only: bool,
    /// Upper bound on merge-set size (0 = unlimited).
    pub max_set_size: usize,
}

impl AdvisorConfig {
    /// No restrictions: any merge the procedure allows (a DBMS with full
    /// trigger/rule support, e.g. SYBASE 4.0 or INGRES 6.3).
    #[must_use]
    pub fn permissive() -> Self {
        AdvisorConfig {
            require_key_based_inds: false,
            require_non_null_keys: false,
            require_nna_only: false,
            max_set_size: 0,
        }
    }

    /// Fully declarative targets (the DB2-without-procedures regime):
    /// all three proposition predicates required.
    #[must_use]
    pub fn declarative_only() -> Self {
        AdvisorConfig {
            require_key_based_inds: true,
            require_non_null_keys: true,
            require_nna_only: true,
            max_set_size: 0,
        }
    }
}

/// A candidate merge the advisor evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeProposal {
    /// The merge set `R̄`, key-relation first.
    pub members: Vec<String>,
    /// Joins a query touching all members no longer needs (`|R̄| − 1`).
    pub joins_eliminated: usize,
    /// Observed workload cost (index probes + scanned rows, summed over
    /// every profiled join edge between two members) this merge would
    /// eliminate. `0` for purely static proposals — no evidence, not
    /// "measured as free".
    pub observed_cost: u64,
    /// Proposition 5.1(i): output inclusion dependencies all key-based.
    pub inds_key_based: bool,
    /// Proposition 5.1(ii): output key attributes all non-null.
    pub keys_non_null: bool,
    /// Proposition 5.2: output null constraints all NNA after removal.
    pub nna_only: bool,
    /// Whether the proposal passes `config`'s requirements.
    pub admissible: bool,
}

/// One applied merge in an advisor run.
#[derive(Debug)]
pub struct AppliedMerge {
    /// The proposal that was applied.
    pub proposal: MergeProposal,
    /// The name of the merged relation-scheme.
    pub merged_name: String,
    /// The merge (after `Remove` ran to completion).
    pub merged: Merged,
}

/// The advisor: instantiate with [`Advisor::new`] and ask it to
/// [`propose_static`](Advisor::propose_static) from the schema alone, or
/// [`propose_from_profile`](Advisor::propose_from_profile) with workload
/// evidence ranking the proposals by the access cost they would
/// eliminate.
pub struct Advisor {
    config: AdvisorConfig,
}

impl Advisor {
    /// An advisor constrained by `config`.
    #[must_use]
    pub fn new(config: AdvisorConfig) -> Self {
        Advisor { config }
    }

    /// The capability constraints this advisor proposes under.
    #[must_use]
    pub fn advisor_config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// Evaluates every maximal merge set in `schema` against the
    /// configured constraints, without applying anything. Sorted by
    /// joins eliminated, descending (`observed_cost` stays 0: no
    /// workload evidence was consulted).
    pub fn propose_static(&self, schema: &RelationalSchema) -> Result<Vec<MergeProposal>> {
        self.evaluate(schema, None)
    }

    /// Like [`Advisor::propose_static`], but scores each proposal with
    /// the workload evidence in `snapshot`: a proposal's `observed_cost`
    /// is the cumulative probe + scan cost of every profiled join edge
    /// whose two relations are both members, i.e. the measured access
    /// work the merge would eliminate. Sorted by observed cost
    /// descending, then joins eliminated, then members.
    pub fn propose_from_profile(
        &self,
        snapshot: &obs::ProfileSnapshot,
        schema: &RelationalSchema,
    ) -> Result<Vec<MergeProposal>> {
        let evidence = obs::JoinEvidence::from_snapshot(snapshot);
        self.evaluate(schema, Some(&evidence))
    }

    fn evaluate(
        &self,
        schema: &RelationalSchema,
        evidence: Option<&obs::JoinEvidence>,
    ) -> Result<Vec<MergeProposal>> {
        let config = &self.config;
        let mut span = obs::span("core.advisor.propose");
        let mut proposals = Vec::new();
        for set in maximal_merge_sets(schema) {
            let set = if config.max_set_size > 0 && set.len() > config.max_set_size {
                set.into_iter().take(config.max_set_size).collect()
            } else {
                set
            };
            if set.len() < 2 {
                continue;
            }
            let refs: Vec<&str> = set.iter().map(String::as_str).collect();
            // The simplifying NNA assumption must hold for the set to be
            // mergeable at all.
            let mergeable = refs.iter().all(|name| {
                schema.scheme(name).is_some_and(|s| {
                    s.attrs()
                        .iter()
                        .all(|a| schema.attr_not_null(name, a.name()))
                })
            });
            if !mergeable {
                continue;
            }
            let inds_key_based = prop51_inds_key_based(schema, &refs)?;
            let keys_non_null = prop51_keys_non_null(schema, &refs)?;
            let nna_only = prop52_nna_only(schema, &refs)?.is_empty();
            let admissible = (!config.require_key_based_inds || inds_key_based)
                && (!config.require_non_null_keys || keys_non_null)
                && (!config.require_nna_only || nna_only);
            let observed_cost = evidence.map_or(0, |ev| {
                let mut cost = 0;
                for (i, a) in refs.iter().enumerate() {
                    for b in &refs[i + 1..] {
                        cost += ev.cost_between(a, b);
                    }
                }
                cost
            });
            proposals.push(MergeProposal {
                joins_eliminated: set.len() - 1,
                members: set,
                observed_cost,
                inds_key_based,
                keys_non_null,
                nna_only,
                admissible,
            });
        }
        proposals.sort_by(|a, b| {
            b.observed_cost
                .cmp(&a.observed_cost)
                .then_with(|| b.joins_eliminated.cmp(&a.joins_eliminated))
                .then_with(|| a.members.cmp(&b.members))
        });
        span.add_field("proposals", proposals.len());
        span.add_field(
            "admissible",
            proposals.iter().filter(|p| p.admissible).count(),
        );
        obs::global()
            .counter("core.advisor.proposals")
            .add(proposals.len() as u64);
        Ok(proposals)
    }

    /// Greedily applies admissible, pairwise-disjoint proposals in
    /// `proposals` order (first come, first merged), running `Remove` to
    /// completion after each merge. Returns the final schema and the
    /// applied merges in order. Pass [`Advisor::propose_static`] output
    /// for the classic largest-first behavior, or
    /// [`Advisor::propose_from_profile`] output to merge hottest-first.
    pub fn apply_proposals(
        &self,
        schema: &RelationalSchema,
        proposals: &[MergeProposal],
    ) -> Result<(RelationalSchema, Vec<AppliedMerge>)> {
        let mut span = obs::span("core.advisor.apply_greedy");
        let mut current = schema.clone();
        let mut consumed: BTreeSet<String> = BTreeSet::new();
        let mut applied = Vec::new();
        for proposal in proposals {
            if !proposal.admissible {
                continue;
            }
            if proposal.members.iter().any(|m| consumed.contains(m)) {
                continue;
            }
            let merged_name = format!("{}_M", proposal.members[0]);
            let refs: Vec<&str> = proposal.members.iter().map(String::as_str).collect();
            let mut merged = Merge::plan(&current, &refs, &merged_name)?;
            merged.remove_all_removable()?;
            current = merged.schema().clone();
            consumed.extend(proposal.members.iter().cloned());
            applied.push(AppliedMerge {
                proposal: proposal.clone(),
                merged_name,
                merged,
            });
        }
        span.add_field("applied", applied.len());
        obs::global()
            .counter("core.advisor.applied")
            .add(applied.len() as u64);
        Ok((current, applied))
    }

    /// [`Advisor::propose_static`] followed by
    /// [`Advisor::apply_proposals`]: the classic one-call greedy run.
    pub fn greedy(
        &self,
        schema: &RelationalSchema,
    ) -> Result<(RelationalSchema, Vec<AppliedMerge>)> {
        let proposals = self.propose_static(schema)?;
        self.apply_proposals(schema, &proposals)
    }

    /// Like [`Advisor::greedy`], but also assembles the applied merges
    /// into a [`crate::pipeline::MergePipeline`] whose composed state
    /// mappings carry data between the original and final schemas.
    pub fn greedy_pipeline(
        &self,
        schema: &RelationalSchema,
    ) -> Result<(RelationalSchema, crate::pipeline::MergePipeline)> {
        let (final_schema, applied) = self.greedy(schema)?;
        let pipeline = crate::pipeline::MergePipeline::from_steps(
            applied.into_iter().map(|a| a.merged).collect(),
        )?;
        Ok((final_schema, pipeline))
    }

    /// Evaluates every maximal merge set in `schema` against `config`.
    #[deprecated(note = "use `Advisor::new(config).propose_static(schema)` instead")]
    pub fn propose(
        schema: &RelationalSchema,
        config: &AdvisorConfig,
    ) -> Result<Vec<MergeProposal>> {
        Advisor::new(*config).propose_static(schema)
    }

    /// Greedy application with a composed pipeline.
    #[deprecated(note = "use `Advisor::new(config).greedy_pipeline(schema)` instead")]
    pub fn apply_greedy_pipeline(
        schema: &RelationalSchema,
        config: &AdvisorConfig,
    ) -> Result<(RelationalSchema, crate::pipeline::MergePipeline)> {
        Advisor::new(*config).greedy_pipeline(schema)
    }

    /// Greedy application, largest proposal first.
    #[deprecated(note = "use `Advisor::new(config).greedy(schema)` instead")]
    pub fn apply_greedy(
        schema: &RelationalSchema,
        config: &AdvisorConfig,
    ) -> Result<(RelationalSchema, Vec<AppliedMerge>)> {
        Advisor::new(*config).greedy(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmerge_relational::{Attribute, Domain, InclusionDep, NullConstraint, RelationScheme};

    fn attr(name: &str) -> Attribute {
        Attribute::new(name, Domain::Int)
    }

    fn scheme(name: &str, attrs: &[&str], key: &[&str]) -> RelationScheme {
        RelationScheme::new(name, attrs.iter().map(|a| attr(a)).collect(), key).unwrap()
    }

    fn nna_all(rs: &mut RelationalSchema) {
        let pairs: Vec<(String, Vec<String>)> = rs
            .schemes()
            .iter()
            .map(|s| {
                (
                    s.name().to_owned(),
                    s.attr_names().iter().map(|a| (*a).to_owned()).collect(),
                )
            })
            .collect();
        for (name, attrs) in pairs {
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            rs.add_null_constraint(NullConstraint::nna(&name, &refs))
                .unwrap();
        }
    }

    /// Two independent stars: P ← {Q}, X ← {Y, Z}.
    fn two_stars() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("P", &["P.K"], &["P.K"])).unwrap();
        rs.add_scheme(scheme("Q", &["Q.K", "Q.V"], &["Q.K"]))
            .unwrap();
        rs.add_scheme(scheme("X", &["X.K"], &["X.K"])).unwrap();
        rs.add_scheme(scheme("Y", &["Y.K", "Y.V"], &["Y.K"]))
            .unwrap();
        rs.add_scheme(scheme("Z", &["Z.K", "Z.V"], &["Z.K"]))
            .unwrap();
        nna_all(&mut rs);
        rs.add_ind(InclusionDep::new("Q", &["Q.K"], "P", &["P.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("Y", &["Y.K"], "X", &["X.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("Z", &["Z.K"], "X", &["X.K"]))
            .unwrap();
        rs
    }

    #[test]
    fn proposals_ranked_by_joins_eliminated() {
        let rs = two_stars();
        let proposals = Advisor::new(AdvisorConfig::permissive())
            .propose_static(&rs)
            .unwrap();
        assert_eq!(proposals.len(), 2);
        assert_eq!(proposals[0].members, ["X", "Y", "Z"]);
        assert_eq!(proposals[0].joins_eliminated, 2);
        assert_eq!(proposals[1].members, ["P", "Q"]);
        assert!(proposals.iter().all(|p| p.admissible));
        // Both stars satisfy Prop 5.2 (single non-key attribute, direct
        // references, no external targets).
        assert!(proposals.iter().all(|p| p.nna_only));
    }

    #[test]
    fn greedy_application_merges_both_stars() {
        let rs = two_stars();
        let (final_schema, applied) = Advisor::new(AdvisorConfig::declarative_only())
            .greedy(&rs)
            .unwrap();
        assert_eq!(applied.len(), 2);
        assert_eq!(final_schema.schemes().len(), 2);
        assert!(final_schema.scheme("X_M").is_some());
        assert!(final_schema.scheme("P_M").is_some());
        // Fully declarative output.
        assert!(final_schema.nna_only());
        assert!(final_schema.key_based_inds_only());
        assert!(final_schema.is_bcnf());
        // After removal, X_M is (X.K, Y.V, Z.V).
        assert_eq!(
            final_schema.scheme("X_M").unwrap().attr_names(),
            ["X.K", "Y.V", "Z.V"]
        );
    }

    #[test]
    fn declarative_config_rejects_chain_merges() {
        // The Figure 3 chain: OFFER is referenced by TEACH/ASSIST, so
        // prop 5.2 fails for the full merge set; with declarative-only
        // config the big merge is inadmissible.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("COURSE", &["C.NR"], &["C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("OFFER", &["O.C.NR", "O.D"], &["O.C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("TEACH", &["T.C.NR", "T.F"], &["T.C.NR"]))
            .unwrap();
        nna_all(&mut rs);
        rs.add_ind(InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new(
            "TEACH",
            &["T.C.NR"],
            "OFFER",
            &["O.C.NR"],
        ))
        .unwrap();
        let advisor = Advisor::new(AdvisorConfig::declarative_only());
        let proposals = advisor.propose_static(&rs).unwrap();
        let big = proposals
            .iter()
            .find(|p| p.members.len() == 3)
            .expect("course chain proposal");
        assert!(!big.nna_only);
        assert!(!big.admissible);
        // The OFFER ← TEACH sub-star *is* admissible… except TEACH's IND
        // into OFFER makes OFFER a target (condition 3 is about Ri ≠ Rk;
        // OFFER is the key-relation here, so it passes).
        let small = proposals
            .iter()
            .find(|p| p.members.len() == 2)
            .expect("offer star proposal");
        assert_eq!(small.members, ["OFFER", "TEACH"]);
        assert!(small.admissible, "{small:?}");
        let (final_schema, applied) = advisor.greedy(&rs).unwrap();
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].merged_name, "OFFER_M");
        assert!(final_schema.nna_only());
    }

    #[test]
    fn permissive_config_accepts_everything() {
        let rs = two_stars();
        let (final_schema, applied) = Advisor::new(AdvisorConfig::permissive())
            .greedy(&rs)
            .unwrap();
        assert_eq!(applied.len(), 2);
        assert!(final_schema.is_bcnf());
    }

    /// A workload that only ever joins P with Q must outrank the bigger
    /// (but cold) X star.
    #[test]
    fn profile_evidence_reorders_proposals() {
        let rs = two_stars();
        let profiler = obs::Profiler::new();
        let shape = obs::QueryShape {
            fingerprint: 0xFEED,
            label: "P + 1 join".to_owned(),
            root: "P".to_owned(),
            edges: vec![obs::JoinEdge {
                left: "P".to_owned(),
                right: "Q".to_owned(),
                probe_attrs: vec!["Q.K".to_owned()],
            }],
        };
        let cost = obs::QueryCost {
            index_probes: 500,
            rows_scanned: 250,
            ..obs::QueryCost::default()
        };
        let edge = obs::EdgeCost {
            index_probes: 500,
            rows_scanned: 250,
            ..obs::EdgeCost::default()
        };
        profiler.record(&shape, &cost, &[edge]);
        let advisor = Advisor::new(AdvisorConfig::permissive());
        let snapshot = profiler.snapshot();
        let proposals = advisor.propose_from_profile(&snapshot, &rs).unwrap();
        assert_eq!(proposals.len(), 2);
        assert_eq!(proposals[0].members, ["P", "Q"]);
        assert_eq!(proposals[0].observed_cost, 750);
        assert_eq!(proposals[1].members, ["X", "Y", "Z"]);
        assert_eq!(proposals[1].observed_cost, 0);
        // With no evidence the static ranking (joins eliminated) returns.
        let cold = advisor
            .propose_from_profile(&obs::ProfileSnapshot::default(), &rs)
            .unwrap();
        assert_eq!(cold[0].members, ["X", "Y", "Z"]);
    }

    /// The deprecated statics must keep delegating to the instance API.
    #[test]
    #[allow(deprecated)]
    fn deprecated_statics_delegate() {
        let rs = two_stars();
        let config = AdvisorConfig::declarative_only();
        let advisor = Advisor::new(config);
        assert_eq!(
            Advisor::propose(&rs, &config).unwrap(),
            advisor.propose_static(&rs).unwrap()
        );
        let (old_schema, old_applied) = Advisor::apply_greedy(&rs, &config).unwrap();
        let (new_schema, new_applied) = advisor.greedy(&rs).unwrap();
        assert_eq!(old_schema, new_schema);
        assert_eq!(old_applied.len(), new_applied.len());
    }
}
