//! The `Remove` procedure: removability conditions (Definition 4.2) and
//! redundant-attribute removal (Definition 4.3) with its μ / μ′ mappings.

use std::collections::HashSet;

use relmerge_obs as obs;
use relmerge_relational::{
    Error, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Result,
};

use crate::merge::Merged;

/// Why a candidate attribute set is not removable (the four conditions of
/// Definition 4.2, plus the structural prerequisites).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotRemovable {
    /// The named group does not exist in this merge.
    NoSuchGroup(String),
    /// The group is the key-relation: its key *is* `Km` (`Yi ≠ Km` fails).
    IsKeyRelation,
    /// The group's key was already removed.
    AlreadyRemoved,
    /// Condition (1): removing `Yi` would leave no attribute of `Xi`
    /// (`|Xi − Yi| ≥ 1` fails), destroying the membership witness μ′ needs.
    NothingLeft,
    /// Condition (2): an external inclusion dependency targets `Rm[Yi]`.
    ExternalReference(String),
    /// Condition (3): `Rm[Yi]` is a foreign key to an external scheme, but
    /// some total-equality-related attribute set is not.
    ForeignKeyNotShared(String),
    /// Condition (4): `Yi` overlaps a foreign key of `Rm` other than
    /// itself.
    OverlapsForeignKey(String),
}

impl std::fmt::Display for NotRemovable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NotRemovable::NoSuchGroup(g) => write!(f, "no merged group named `{g}`"),
            NotRemovable::IsKeyRelation => {
                f.write_str("the key-relation's key is Km and cannot be removed")
            }
            NotRemovable::AlreadyRemoved => f.write_str("group key already removed"),
            NotRemovable::NothingLeft => {
                f.write_str("condition (1): removal would leave the group empty")
            }
            NotRemovable::ExternalReference(ind) => {
                write!(
                    f,
                    "condition (2): external IND targets the attributes: {ind}"
                )
            }
            NotRemovable::ForeignKeyNotShared(detail) => {
                write!(f, "condition (3): {detail}")
            }
            NotRemovable::OverlapsForeignKey(ind) => {
                write!(f, "condition (4): overlapping foreign key: {ind}")
            }
        }
    }
}

fn same_set(a: &[String], b: &[String]) -> bool {
    a.len() == b.len() && a.iter().all(|x| b.contains(x))
}

impl Merged {
    /// Checks Definition 4.2: whether the (former) primary key `Ki` of the
    /// merged group `group` is removable in `Rm`. Returns `Ok(())` when
    /// removable; otherwise the first failing condition.
    ///
    /// The total-equality constraints `Merge` generates all have the form
    /// `Km =⊥ Ki`, so the removable candidates are exactly the member keys
    /// other than `Km` — which is why this API is keyed by group.
    pub fn removable(&self, group: &str) -> std::result::Result<(), NotRemovable> {
        let g = self
            .group(group)
            .ok_or_else(|| NotRemovable::NoSuchGroup(group.to_owned()))?;
        if g.is_key_relation {
            return Err(NotRemovable::IsKeyRelation);
        }
        if g.key_removed() {
            return Err(NotRemovable::AlreadyRemoved);
        }
        let yi = &g.key;
        // Synthetic key-relations keep Km disjoint from member attributes,
        // but guard anyway: Yi must differ from Km.
        if same_set(yi, &self.km.clone()) {
            return Err(NotRemovable::IsKeyRelation);
        }
        // Condition (1): |Xi − Yi| ≥ 1.
        if g.original_attrs.len() <= yi.len() {
            return Err(NotRemovable::NothingLeft);
        }
        let rm = self.merged_name();
        let inds = self.schema().inds();
        // Condition (2): no Rj[Z] ⊆ Rm[Yi] with Rj ≠ Rm.
        if let Some(ind) = inds
            .iter()
            .find(|ind| ind.rhs_rel == rm && ind.lhs_rel != rm && same_set(&ind.rhs_attrs, yi))
        {
            return Err(NotRemovable::ExternalReference(ind.to_string()));
        }
        // Condition (3): if Rm[Yi] ⊆ Rj[Kj] (Rj ≠ Rm) exists, every
        // total-equality attribute set W of Rm must also satisfy
        // Rm[W] ⊆ Rj[Kj] ∈ I′.
        let te_sets: Vec<Vec<String>> = self
            .schema()
            .null_constraints()
            .iter()
            .filter(|c| c.rel() == rm)
            .filter_map(|c| match c {
                NullConstraint::TotalEquality { lhs, rhs, .. } => Some([lhs.clone(), rhs.clone()]),
                _ => None,
            })
            .flatten()
            .collect();
        for ind in inds
            .iter()
            .filter(|i| i.lhs_rel == rm && i.rhs_rel != rm && same_set(&i.lhs_attrs, yi))
        {
            for w in &te_sets {
                let shared = inds.iter().any(|other| {
                    other.lhs_rel == rm
                        && other.rhs_rel == ind.rhs_rel
                        && same_set(&other.lhs_attrs, w)
                        && other.rhs_attrs == ind.rhs_attrs
                });
                if !shared {
                    return Err(NotRemovable::ForeignKeyNotShared(format!(
                        "`{}` references `{}` but total-equality set ({}) lacks \
                         a matching inclusion dependency",
                        ind,
                        ind.rhs_rel,
                        w.join(",")
                    )));
                }
            }
        }
        // Condition (4): any foreign key of Rm overlapping Yi equals Yi.
        // (Extended to internal inclusion dependencies as a conservative
        // strengthening; Merge never generates an internal IND with LHS Yi.)
        if let Some(ind) = inds.iter().find(|ind| {
            ind.lhs_rel == rm
                && ind.lhs_attrs.iter().any(|a| yi.contains(a))
                && !same_set(&ind.lhs_attrs, yi)
        }) {
            return Err(NotRemovable::OverlapsForeignKey(ind.to_string()));
        }
        Ok(())
    }

    /// Applies `Remove(Yi)` (Definition 4.3) for the key of `group`,
    /// transforming `RS′` into `RS″` in place. Fails if the key is not
    /// removable.
    pub fn remove(&mut self, group: &str) -> Result<()> {
        let _span = obs::span("core.remove")
            .field("merged", self.merged_name())
            .field("group", group);
        self.removable(group)
            .map_err(|e| Error::PreconditionViolated {
                procedure: "Remove",
                detail: e.to_string(),
            })?;
        crate::merge::removal_counter().inc();
        let g = self
            .groups
            .iter()
            .find(|g| g.scheme == group)
            .expect("checked by removable");
        let yi: Vec<String> = g.key.clone();
        let yi_set: HashSet<&str> = yi.iter().map(String::as_str).collect();
        let rm = self.merged_name.clone();

        // Step 1 (R″): drop the Yi attributes from Xm.
        let old_scheme = self.merged_scheme().clone();
        let new_attrs: Vec<_> = old_scheme
            .attrs()
            .iter()
            .filter(|a| !yi_set.contains(a.name()))
            .cloned()
            .collect();
        // Step 2 (F″): any declared candidate key mentioning a Yi attribute
        // is rewritten through the Km =⊥ Yi correspondence.
        let rewritten_keys: Vec<Vec<String>> = old_scheme
            .candidate_keys()
            .iter()
            .map(|ck| {
                ck.iter()
                    .map(|a| match yi.iter().position(|y| y == a) {
                        Some(p) => self.km[p].clone(),
                        None => (*a).to_owned(),
                    })
                    .collect()
            })
            .collect();
        let mut dedup_keys: Vec<Vec<String>> = Vec::new();
        for k in rewritten_keys {
            if !dedup_keys.iter().any(|existing| same_set(existing, &k)) {
                dedup_keys.push(k);
            }
        }
        let key_refs: Vec<Vec<&str>> = dedup_keys
            .iter()
            .map(|k| k.iter().map(String::as_str).collect())
            .collect();
        let key_slices: Vec<&[&str]> = key_refs.iter().map(Vec::as_slice).collect();
        let new_scheme = RelationScheme::with_candidate_keys(&rm, new_attrs, &key_slices)?;
        let schemes: Vec<RelationScheme> = self
            .current
            .schemes()
            .iter()
            .map(|s| {
                if s.name() == rm {
                    new_scheme.clone()
                } else {
                    s.clone()
                }
            })
            .collect();

        // Step 3 (I″): rewrite Rm[Yi] ⊆ Rj[Kj] to Rm[Km] ⊆ Rj[Kj],
        // preserving the positional correspondence Yi[p] ↔ Km[p].
        let mut inds: Vec<InclusionDep> = Vec::new();
        for ind in self.current.inds() {
            let mut out = ind.clone();
            if out.lhs_rel == rm && same_set(&out.lhs_attrs, &yi) {
                out.lhs_attrs = out
                    .lhs_attrs
                    .iter()
                    .map(|a| {
                        let p = yi.iter().position(|y| y == a).expect("same_set checked");
                        self.km[p].clone()
                    })
                    .collect();
            }
            if !inds.contains(&out) {
                inds.push(out);
            }
        }

        // Step 4 (N″): project Yi out of part-null / null-existence /
        // null-synchronization constraints (4a) and drop the total-equality
        // constraint Km =⊥ Yi (4b); trivialized constraints disappear.
        let nulls: Vec<NullConstraint> = self
            .current
            .null_constraints()
            .iter()
            .filter_map(|c| {
                if c.rel() == rm {
                    c.remove_attrs(&yi_set)
                } else {
                    Some(c.clone())
                }
            })
            .collect();

        let next = RelationalSchema::with_parts(schemes, inds, nulls);
        next.validate()?;
        self.current = next;
        self.groups
            .iter_mut()
            .find(|g| g.scheme == group)
            .expect("checked by removable")
            .removed = yi;
        Ok(())
    }

    /// Removes every removable group key, iterating to a fixed point
    /// (removability can change as inclusion dependencies are rewritten).
    /// Returns the groups whose keys were removed, in removal order.
    pub fn remove_all_removable(&mut self) -> Result<Vec<String>> {
        let mut removed = Vec::new();
        loop {
            let candidate = self
                .groups
                .iter()
                .map(|g| g.scheme.clone())
                .find(|g| self.removable(g).is_ok());
            match candidate {
                Some(g) => {
                    self.remove(&g)?;
                    removed.push(g);
                }
                None => return Ok(removed),
            }
        }
    }

    /// The names of groups whose key is currently removable (Definition
    /// 4.2), without mutating anything.
    #[must_use]
    pub fn removable_groups(&self) -> Vec<&str> {
        self.groups
            .iter()
            .filter(|g| self.removable(&g.scheme).is_ok())
            .map(|g| g.scheme.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::Merge;
    use relmerge_relational::{Attribute, DatabaseState, Domain, Tuple, Value};

    fn attr(name: &str) -> Attribute {
        Attribute::new(name, Domain::Int)
    }

    /// A compact version of the Figure 3 schema restricted to the COURSE /
    /// OFFER / TEACH / ASSIST chain (integer domains throughout).
    fn university() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("COURSE", vec![attr("C.NR")], &["C.NR"]).unwrap())
            .unwrap();
        rs.add_scheme(
            RelationScheme::new("OFFER", vec![attr("O.C.NR"), attr("O.D.NAME")], &["O.C.NR"])
                .unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new("TEACH", vec![attr("T.C.NR"), attr("T.F.SSN")], &["T.C.NR"])
                .unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new("ASSIST", vec![attr("A.C.NR"), attr("A.S.SSN")], &["A.C.NR"])
                .unwrap(),
        )
        .unwrap();
        for (rel, attrs) in [
            ("COURSE", vec!["C.NR"]),
            ("OFFER", vec!["O.C.NR", "O.D.NAME"]),
            ("TEACH", vec!["T.C.NR", "T.F.SSN"]),
            ("ASSIST", vec!["A.C.NR", "A.S.SSN"]),
        ] {
            rs.add_null_constraint(NullConstraint::nna(rel, &attrs))
                .unwrap();
        }
        rs.add_ind(InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new(
            "TEACH",
            &["T.C.NR"],
            "OFFER",
            &["O.C.NR"],
        ))
        .unwrap();
        rs.add_ind(InclusionDep::new(
            "ASSIST",
            &["A.C.NR"],
            "OFFER",
            &["O.C.NR"],
        ))
        .unwrap();
        rs
    }

    #[test]
    fn figure_4_o_c_nr_not_removable() {
        // Merge {COURSE, OFFER, TEACH}: ASSIST[A.C.NR] ⊆ COURSE'[O.C.NR]
        // survives, so O.C.NR is not removable (condition 2) — the paper's
        // Figure 4/5 contrast.
        let rs = university();
        let m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH"], "COURSE_P").unwrap();
        assert_eq!(
            m.removable("OFFER"),
            Err(NotRemovable::ExternalReference(
                "ASSIST [A.C.NR] <= COURSE_P [O.C.NR]".to_owned()
            ))
        );
        // TEACH's key is removable.
        assert_eq!(m.removable("TEACH"), Ok(()));
        // COURSE is the key-relation.
        assert_eq!(m.removable("COURSE"), Err(NotRemovable::IsKeyRelation));
    }

    #[test]
    fn figure_5_and_6_all_keys_removable() {
        let rs = university();
        let mut m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH", "ASSIST"], "COURSE_PP").unwrap();
        for g in ["OFFER", "TEACH", "ASSIST"] {
            assert_eq!(m.removable(g), Ok(()), "{g} should be removable");
        }
        let removed = m.remove_all_removable().unwrap();
        assert_eq!(removed.len(), 3);
        // Figure 6's final scheme.
        assert_eq!(
            m.merged_scheme().attr_names(),
            ["C.NR", "O.D.NAME", "T.F.SSN", "A.S.SSN"]
        );
        // Figure 6's null constraints: ∅ ⊑ C.NR, T.F.SSN ⊑ O.D.NAME,
        // A.S.SSN ⊑ O.D.NAME.
        let cons = m.generated_null_constraints();
        assert_eq!(cons.len(), 3);
        assert!(cons.contains(&&NullConstraint::nna("COURSE_PP", &["C.NR"])));
        assert!(cons.contains(&&NullConstraint::ne(
            "COURSE_PP",
            &["T.F.SSN"],
            &["O.D.NAME"]
        )));
        assert!(cons.contains(&&NullConstraint::ne(
            "COURSE_PP",
            &["A.S.SSN"],
            &["O.D.NAME"]
        )));
    }

    #[test]
    fn remove_preserves_round_trip() {
        let rs = university();
        let mut m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH", "ASSIST"], "COURSE_PP").unwrap();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        for nr in [1, 2, 3] {
            st.insert("COURSE", Tuple::new([Value::Int(nr)])).unwrap();
        }
        st.insert("OFFER", Tuple::new([Value::Int(1), Value::Int(77)]))
            .unwrap();
        st.insert("OFFER", Tuple::new([Value::Int(2), Value::Int(88)]))
            .unwrap();
        st.insert("TEACH", Tuple::new([Value::Int(1), Value::Int(500)]))
            .unwrap();
        st.insert("ASSIST", Tuple::new([Value::Int(2), Value::Int(600)]))
            .unwrap();
        assert!(st.is_consistent(&rs).unwrap());

        // Round trip before removal…
        let merged_state = m.apply(&st).unwrap();
        assert!(merged_state.is_consistent(m.schema()).unwrap());
        assert_eq!(m.invert(&merged_state).unwrap(), st);

        // …and after removing every redundant key.
        m.remove_all_removable().unwrap();
        let merged_state = m.apply(&st).unwrap();
        assert!(merged_state.is_consistent(m.schema()).unwrap());
        let rm = merged_state.relation("COURSE_PP").unwrap();
        assert_eq!(rm.arity(), 4);
        assert_eq!(m.invert(&merged_state).unwrap(), st);
    }

    #[test]
    fn removal_shrinks_relation_size() {
        let rs = university();
        let mut m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH", "ASSIST"], "COURSE_PP").unwrap();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        for nr in 0..50 {
            st.insert("COURSE", Tuple::new([Value::Int(nr)])).unwrap();
            st.insert("OFFER", Tuple::new([Value::Int(nr), Value::Int(nr + 1000)]))
                .unwrap();
        }
        let before = m
            .apply(&st)
            .unwrap()
            .relation("COURSE_PP")
            .unwrap()
            .value_count();
        m.remove_all_removable().unwrap();
        let after = m
            .apply(&st)
            .unwrap()
            .relation("COURSE_PP")
            .unwrap()
            .value_count();
        assert!(after < before, "{after} should be < {before}");
    }

    #[test]
    fn nothing_left_condition() {
        // Merging two single-attribute schemes: the non-key-relation's key
        // is its whole attribute set, so condition (1) fails.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("A", vec![attr("A.K")], &["A.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("B", vec![attr("B.K")], &["B.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("B", &["B.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
            .unwrap();
        let m = Merge::plan(&rs, &["A", "B"], "M").unwrap();
        assert_eq!(m.removable("B"), Err(NotRemovable::NothingLeft));
    }

    #[test]
    fn condition_3_foreign_key_sharing() {
        // B's key is a foreign key to an external scheme EXT; A (the
        // key-relation) does not reference EXT, so condition (3) fails.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("EXT", vec![attr("E.K")], &["E.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("A", vec![attr("A.K"), attr("A.V")], &["A.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("B", vec![attr("B.K"), attr("B.V")], &["B.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K", "A.V"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("B", &["B.K", "B.V"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("EXT", &["E.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("B", &["B.K"], "EXT", &["E.K"]))
            .unwrap();
        let m = Merge::plan(&rs, &["A", "B"], "M").unwrap();
        assert!(matches!(
            m.removable("B"),
            Err(NotRemovable::ForeignKeyNotShared(_))
        ));
        // Adding A[A.K] ⊆ EXT[E.K] (so that Km is also a foreign key to
        // EXT) makes B.K removable.
        let mut rs2 = rs.clone();
        rs2.add_ind(InclusionDep::new("A", &["A.K"], "EXT", &["E.K"]))
            .unwrap();
        let mut m2 = Merge::plan(&rs2, &["A", "B"], "M").unwrap();
        assert_eq!(m2.removable("B"), Ok(()));
        m2.remove("B").unwrap();
        // The foreign key was rewritten onto Km.
        assert!(m2.schema().inds().iter().any(|i| i.lhs_rel == "M"
            && i.lhs_attrs == vec!["A.K".to_owned()]
            && i.rhs_rel == "EXT"));
    }

    #[test]
    fn removability_unlocked_by_earlier_removal() {
        // Condition (3) quantifies over the *current* total-equality sets:
        // B's key is a foreign key to EXT, and A (key-relation) references
        // EXT too — but C's key participates in a total-equality constraint
        // without referencing EXT, blocking B. Removing C's key first drops
        // that constraint, unblocking B — the fixpoint loop must find this.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("EXT", vec![attr("E.K")], &["E.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("A", vec![attr("A.K"), attr("A.V")], &["A.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("B", vec![attr("B.K"), attr("B.V")], &["B.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("C", vec![attr("C.K"), attr("C.V")], &["C.K"]).unwrap())
            .unwrap();
        for (rel, attrs) in [
            ("EXT", vec!["E.K"]),
            ("A", vec!["A.K", "A.V"]),
            ("B", vec!["B.K", "B.V"]),
            ("C", vec!["C.K", "C.V"]),
        ] {
            rs.add_null_constraint(NullConstraint::nna(rel, &attrs))
                .unwrap();
        }
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("C", &["C.K"], "A", &["A.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("B", &["B.K"], "EXT", &["E.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("A", &["A.K"], "EXT", &["E.K"]))
            .unwrap();
        let mut m = Merge::plan(&rs, &["A", "B", "C"], "M").unwrap();
        // B is blocked by condition (3): the TE set {C.K} has no inclusion
        // dependency into EXT.
        assert!(matches!(
            m.removable("B"),
            Err(NotRemovable::ForeignKeyNotShared(_))
        ));
        // C itself is removable; after it goes, B unblocks.
        assert_eq!(m.removable("C"), Ok(()));
        let removed = m.remove_all_removable().unwrap();
        assert_eq!(removed.len(), 2);
        assert!(m.group("B").unwrap().key_removed());
        assert!(m.group("C").unwrap().key_removed());
        // And the rewritten FK landed on Km.
        assert!(m.schema().inds().iter().any(|i| i.lhs_rel == "M"
            && i.lhs_attrs == vec!["A.K".to_owned()]
            && i.rhs_rel == "EXT"));
    }

    #[test]
    fn double_remove_rejected() {
        let rs = university();
        let mut m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH", "ASSIST"], "COURSE_PP").unwrap();
        m.remove("TEACH").unwrap();
        assert_eq!(m.removable("TEACH"), Err(NotRemovable::AlreadyRemoved));
        assert!(m.remove("TEACH").is_err());
    }
}
