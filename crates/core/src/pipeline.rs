//! Composition of several merges into one end-to-end transformation.
//!
//! The advisor (and the SDT "use merging" option) applies a *sequence* of
//! merges, each planned against the schema the previous one produced. A
//! [`MergePipeline`] owns that sequence and composes the state mappings, so
//! data can be carried from the original schema to the final merged schema
//! and back in one call — with the same information-capacity guarantees,
//! compositionally.

use relmerge_obs as obs;
use relmerge_relational::{DatabaseState, Error, RelationalSchema, Result};

use crate::merge::Merged;

/// An ordered sequence of merges; step `i+1` was planned on step `i`'s
/// output schema.
#[derive(Debug, Default)]
pub struct MergePipeline {
    steps: Vec<Merged>,
}

impl MergePipeline {
    /// An empty pipeline (identity transformation).
    #[must_use]
    pub fn new() -> Self {
        MergePipeline::default()
    }

    /// Builds a pipeline from already-chained merges, validating that each
    /// step's original schema is the previous step's output schema.
    pub fn from_steps(steps: Vec<Merged>) -> Result<Self> {
        for pair in steps.windows(2) {
            if pair[1].original_schema() != pair[0].schema() {
                return Err(Error::PreconditionViolated {
                    procedure: "MergePipeline",
                    detail: format!(
                        "step merging into `{}` was not planned on the schema produced \
                         by the step merging into `{}`",
                        pair[1].merged_name(),
                        pair[0].merged_name()
                    ),
                });
            }
        }
        Ok(MergePipeline { steps })
    }

    /// Appends a merge; its original schema must match the pipeline's
    /// current output schema.
    pub fn push(&mut self, merged: Merged) -> Result<()> {
        if let Some(last) = self.steps.last() {
            if merged.original_schema() != last.schema() {
                return Err(Error::PreconditionViolated {
                    procedure: "MergePipeline::push",
                    detail: "step was not planned on the pipeline's output schema".to_owned(),
                });
            }
        }
        self.steps.push(merged);
        Ok(())
    }

    /// The steps, in application order.
    #[must_use]
    pub fn steps(&self) -> &[Merged] {
        &self.steps
    }

    /// Whether the pipeline performs any merging at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The input schema (of the first step), if any.
    #[must_use]
    pub fn input_schema(&self) -> Option<&RelationalSchema> {
        self.steps.first().map(Merged::original_schema)
    }

    /// The output schema (of the last step), if any.
    #[must_use]
    pub fn output_schema(&self) -> Option<&RelationalSchema> {
        self.steps.last().map(Merged::schema)
    }

    /// The composed forward mapping: η of every step, in order.
    pub fn apply(&self, state: &DatabaseState) -> Result<DatabaseState> {
        let _span = obs::span("core.pipeline.apply").field("steps", self.steps.len());
        let mut current = state.clone();
        for step in &self.steps {
            let _step_span = obs::span("core.pipeline.step").field("merged", step.merged_name());
            current = step.apply(&current)?;
        }
        Ok(current)
    }

    /// The composed backward mapping: η′ of every step, in reverse order.
    pub fn invert(&self, state: &DatabaseState) -> Result<DatabaseState> {
        let _span = obs::span("core.pipeline.invert").field("steps", self.steps.len());
        let mut current = state.clone();
        for step in self.steps.iter().rev() {
            let _step_span = obs::span("core.pipeline.step").field("merged", step.merged_name());
            current = step.invert(&current)?;
        }
        Ok(current)
    }

    /// Total joins eliminated across all steps (`Σ |R̄ᵢ| − 1`).
    #[must_use]
    pub fn joins_eliminated(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.groups().len().saturating_sub(1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{Advisor, AdvisorConfig};
    use crate::merge::Merge;
    use relmerge_relational::{
        Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, Tuple, Value,
    };

    fn attr(name: &str) -> Attribute {
        Attribute::new(name, Domain::Int)
    }

    /// Two independent stars: P ← Q and X ← {Y, Z}.
    fn two_stars() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        for (name, attrs, key) in [
            ("P", vec!["P.K"], "P.K"),
            ("Q", vec!["Q.K", "Q.V"], "Q.K"),
            ("X", vec!["X.K"], "X.K"),
            ("Y", vec!["Y.K", "Y.V"], "Y.K"),
            ("Z", vec!["Z.K", "Z.V"], "Z.K"),
        ] {
            rs.add_scheme(
                RelationScheme::new(name, attrs.iter().map(|a| attr(a)).collect(), &[key]).unwrap(),
            )
            .unwrap();
            rs.add_null_constraint(NullConstraint::nna(name, &attrs))
                .unwrap();
        }
        rs.add_ind(InclusionDep::new("Q", &["Q.K"], "P", &["P.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("Y", &["Y.K"], "X", &["X.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("Z", &["Z.K"], "X", &["X.K"]))
            .unwrap();
        rs
    }

    fn sample_state(rs: &RelationalSchema) -> DatabaseState {
        let mut st = DatabaseState::empty_for(rs).unwrap();
        st.insert("P", Tuple::new([Value::Int(1)])).unwrap();
        st.insert("Q", Tuple::new([Value::Int(1), Value::Int(10)]))
            .unwrap();
        st.insert("X", Tuple::new([Value::Int(5)])).unwrap();
        st.insert("X", Tuple::new([Value::Int(6)])).unwrap();
        st.insert("Y", Tuple::new([Value::Int(5), Value::Int(50)]))
            .unwrap();
        st.insert("Z", Tuple::new([Value::Int(6), Value::Int(60)]))
            .unwrap();
        st
    }

    fn build_pipeline(rs: &RelationalSchema) -> MergePipeline {
        let mut m1 = Merge::plan(rs, &["P", "Q"], "PQ").unwrap();
        m1.remove_all_removable().unwrap();
        let schema1 = m1.schema().clone();
        let mut m2 = Merge::plan(&schema1, &["X", "Y", "Z"], "XYZ").unwrap();
        m2.remove_all_removable().unwrap();
        MergePipeline::from_steps(vec![m1, m2]).unwrap()
    }

    #[test]
    fn composed_round_trip() {
        let rs = two_stars();
        let pipeline = build_pipeline(&rs);
        assert_eq!(pipeline.steps().len(), 2);
        assert_eq!(pipeline.joins_eliminated(), 3);
        assert_eq!(pipeline.output_schema().unwrap().schemes().len(), 2);

        let st = sample_state(&rs);
        let merged = pipeline.apply(&st).unwrap();
        assert!(merged
            .is_consistent(pipeline.output_schema().unwrap())
            .unwrap());
        assert_eq!(merged.relation("PQ").unwrap().len(), 1);
        assert_eq!(merged.relation("XYZ").unwrap().len(), 2);
        let back = pipeline.invert(&merged).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn chaining_validated() {
        let rs = two_stars();
        let m1 = Merge::plan(&rs, &["P", "Q"], "PQ").unwrap();
        // m2 planned on the ORIGINAL schema, not m1's output: rejected.
        let m2 = Merge::plan(&rs, &["X", "Y", "Z"], "XYZ").unwrap();
        assert!(MergePipeline::from_steps(vec![m1, m2]).is_err());
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let rs = two_stars();
        let st = sample_state(&rs);
        let pipeline = MergePipeline::new();
        assert!(pipeline.is_empty());
        assert_eq!(pipeline.apply(&st).unwrap(), st);
        assert_eq!(pipeline.invert(&st).unwrap(), st);
        assert_eq!(pipeline.joins_eliminated(), 0);
    }

    #[test]
    fn advisor_produces_a_valid_pipeline() {
        let rs = two_stars();
        let (final_schema, pipeline) = Advisor::new(AdvisorConfig::declarative_only())
            .greedy_pipeline(&rs)
            .unwrap();
        assert_eq!(pipeline.steps().len(), 2);
        assert_eq!(pipeline.output_schema().unwrap(), &final_schema);
        let st = sample_state(&rs);
        let merged = pipeline.apply(&st).unwrap();
        assert!(merged.is_consistent(&final_schema).unwrap());
        assert_eq!(pipeline.invert(&merged).unwrap(), st);
    }
}
