//! The `Merge` procedure (Definition 4.1) and its state mappings η / η′.

use std::collections::BTreeSet;

use relmerge_obs as obs;
use relmerge_relational::algebra;
use relmerge_relational::{
    Attribute, DatabaseState, Error, NullConstraint, Relation, RelationScheme, RelationalSchema,
    Result, Tuple, Value,
};

use crate::keyrel::{self, KeyRelationSpec};

/// One merged relation-scheme's worth of bookkeeping: which attributes of
/// the merged scheme `Rm` came from which original scheme `Ri`, and which
/// of them have since been dropped by `Remove`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeGroup {
    /// The original relation-scheme name `Ri`.
    pub scheme: String,
    /// `Xi`: the attribute names contributed to `Xm` at merge time.
    pub original_attrs: Vec<String>,
    /// `Ki`: the original primary key, in key order.
    pub key: Vec<String>,
    /// Attributes of `Xi` removed by `Remove` (either empty or all of `Ki`).
    pub removed: Vec<String>,
    /// Whether this member was chosen as the key-relation `Rk`.
    pub is_key_relation: bool,
}

impl MergeGroup {
    /// `Xi` minus the removed attributes — the columns of `Rm` that still
    /// belong to this group.
    #[must_use]
    pub fn surviving_attrs(&self) -> Vec<&str> {
        self.original_attrs
            .iter()
            .filter(|a| !self.removed.contains(a))
            .map(String::as_str)
            .collect()
    }

    /// Whether the group's key has been removed.
    #[must_use]
    pub fn key_removed(&self) -> bool {
        !self.removed.is_empty()
    }
}

/// Options for [`Merge::plan_with_options`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeOptions {
    /// Explicit attribute names for a synthetic key-relation (rejected
    /// when the merge set already contains a key-relation — the names
    /// would silently go unused).
    pub synthetic_key_names: Option<Vec<String>>,
    /// **Total-participation strengthening** (an SDT-style variation of
    /// the technique, cf. §6): when the original schema also contains the
    /// *reverse* key-to-key dependency `Rk[Kk] ⊆ Ri[Ki]`, every key value
    /// has a partner in `ri`, the outer join never pads group `i`, and the
    /// null-synchronization set `NS(Xi)` can be strengthened to the
    /// declarative nulls-not-allowed constraint `∅ ⊑ Xi` (with the
    /// null-existence constraints targeting `Xi` dropped as implied).
    /// Off by default — the paper-faithful output.
    pub strengthen_total_participation: bool,
}

/// Entry point for the paper's `Merge(R̄)` procedure.
pub struct Merge;

impl Merge {
    /// Plans `Merge(R̄)` on `schema`, merging the relation-schemes named in
    /// `members` into a new relation-scheme `merged_name`.
    ///
    /// Preconditions (Definition 4.1):
    /// * at least two members, all present in the schema, pairwise distinct;
    /// * pairwise compatible primary keys;
    /// * every member attribute carries a nulls-not-allowed constraint, and
    ///   members carry no other null constraints (the definition's
    ///   simplifying assumption).
    ///
    /// The key-relation is found with Proposition 3.1; when no member
    /// qualifies, a synthetic key-relation is created with fresh attribute
    /// names `<merged_name>.K1…`.
    ///
    /// ```
    /// use relmerge_relational::{Attribute, Domain, InclusionDep,
    ///     NullConstraint, RelationScheme, RelationalSchema};
    /// use relmerge_core::Merge;
    ///
    /// let mut schema = RelationalSchema::new();
    /// schema.add_scheme(RelationScheme::new(
    ///     "EMP",
    ///     vec![Attribute::new("E.SSN", Domain::Int),
    ///          Attribute::new("E.GRADE", Domain::Int)],
    ///     &["E.SSN"],
    /// )?)?;
    /// schema.add_scheme(RelationScheme::new(
    ///     "MGR",
    ///     vec![Attribute::new("M.SSN", Domain::Int),
    ///          Attribute::new("M.NR", Domain::Int)],
    ///     &["M.SSN"],
    /// )?)?;
    /// schema.add_null_constraint(NullConstraint::nna("EMP", &["E.SSN", "E.GRADE"]))?;
    /// schema.add_null_constraint(NullConstraint::nna("MGR", &["M.SSN", "M.NR"]))?;
    /// schema.add_ind(InclusionDep::new("MGR", &["M.SSN"], "EMP", &["E.SSN"]))?;
    ///
    /// // EMP is the key-relation (every manager is an employee).
    /// let mut merged = Merge::plan(&schema, &["EMP", "MGR"], "EMP_M")?;
    /// assert_eq!(merged.km(), ["E.SSN"]);
    /// assert!(merged.schema().is_bcnf());
    /// // MGR's key copy is redundant; drop it.
    /// merged.remove_all_removable()?;
    /// assert_eq!(
    ///     merged.merged_scheme().attr_names(),
    ///     ["E.SSN", "E.GRADE", "M.NR"],
    /// );
    /// # Ok::<(), relmerge_relational::Error>(())
    /// ```
    pub fn plan(schema: &RelationalSchema, members: &[&str], merged_name: &str) -> Result<Merged> {
        Self::plan_with_options(schema, members, merged_name, &MergeOptions::default())
    }

    /// Like [`Merge::plan`] but naming the synthetic key-relation's
    /// attributes explicitly (e.g. Figure 2's `CN`). Fails if the merge set
    /// already contains a key-relation (the names would be unused) — use
    /// [`Merge::plan`] there.
    pub fn plan_with_synthetic_key(
        schema: &RelationalSchema,
        members: &[&str],
        merged_name: &str,
        key_names: &[&str],
    ) -> Result<Merged> {
        Self::plan_with_options(
            schema,
            members,
            merged_name,
            &MergeOptions {
                synthetic_key_names: Some(key_names.iter().map(|s| (*s).to_owned()).collect()),
                ..MergeOptions::default()
            },
        )
    }

    /// Like [`Merge::plan`] with explicit [`MergeOptions`].
    pub fn plan_with_options(
        schema: &RelationalSchema,
        members: &[&str],
        merged_name: &str,
        options: &MergeOptions,
    ) -> Result<Merged> {
        let synthetic_key_names: Option<Vec<&str>> = options
            .synthetic_key_names
            .as_ref()
            .map(|v| v.iter().map(String::as_str).collect());
        Self::plan_inner(
            schema,
            members,
            merged_name,
            synthetic_key_names.as_deref(),
            options.strengthen_total_participation,
        )
    }

    fn plan_inner(
        schema: &RelationalSchema,
        members: &[&str],
        merged_name: &str,
        synthetic_key_names: Option<&[&str]>,
        strengthen_total_participation: bool,
    ) -> Result<Merged> {
        let mut span = obs::span("core.merge.plan")
            .field("merged", merged_name)
            .field("members", members.len());
        merge_counters().plans.inc();
        let member_schemes = Self::validate_members(schema, members, merged_name)?;

        // --- Key-relation (Definition 4.1 case split). ---
        let keyrel_span = obs::span("core.merge.keyrel");
        let found = keyrel::find_key_relation(schema, &member_schemes);
        drop(keyrel_span);
        let key_relation = match found {
            Some(r0) => {
                if synthetic_key_names.is_some() {
                    return Err(Error::PreconditionViolated {
                        procedure: "Merge",
                        detail: format!(
                            "merge set already contains key-relation `{}`; \
                             synthetic key names are not applicable",
                            r0.name()
                        ),
                    });
                }
                KeyRelationSpec::Member(r0.name().to_owned())
            }
            None => KeyRelationSpec::Synthetic {
                attrs: keyrel::synthesize_key_attrs(
                    schema,
                    &member_schemes,
                    merged_name,
                    synthetic_key_names,
                )?,
            },
        };
        let km: Vec<String> = key_relation.key_names(schema)?;
        span.add_field(
            "keyrel",
            match &key_relation {
                KeyRelationSpec::Member(n) => n.clone(),
                KeyRelationSpec::Synthetic { .. } => "<synthetic>".to_owned(),
            },
        );

        // --- Step 1: Xm := Xk ∪ ⋃ Xi, Km := Kk; groups in fold order. ---
        let mut xm: Vec<Attribute> = Vec::new();
        let mut groups: Vec<MergeGroup> = Vec::new();
        if let KeyRelationSpec::Synthetic { attrs } = &key_relation {
            xm.extend(attrs.iter().cloned());
        }
        let key_rel_name = match &key_relation {
            KeyRelationSpec::Member(n) => Some(n.clone()),
            KeyRelationSpec::Synthetic { .. } => None,
        };
        // Key-relation member first (its attributes open Xm), then the rest
        // in the caller's order.
        let ordered: Vec<&RelationScheme> = member_schemes
            .iter()
            .copied()
            .filter(|s| Some(s.name()) == key_rel_name.as_deref())
            .chain(
                member_schemes
                    .iter()
                    .copied()
                    .filter(|s| Some(s.name()) != key_rel_name.as_deref()),
            )
            .collect();
        for s in &ordered {
            xm.extend(s.attrs().iter().cloned());
            groups.push(MergeGroup {
                scheme: s.name().to_owned(),
                original_attrs: s.attr_names().iter().map(|a| (*a).to_owned()).collect(),
                key: s.primary_key().iter().map(|k| (*k).to_owned()).collect(),
                removed: Vec::new(),
                is_key_relation: Some(s.name()) == key_rel_name.as_deref(),
            });
        }

        // --- Step 2 (F′): Rm's declared keys: Km primary, plus every
        // member's *alternative* candidate keys (their primary keys are
        // implied equal to Km by the total-equality constraints of step 3b
        // and stay implicit). ---
        let mut declared_keys: Vec<Vec<String>> = vec![km.clone()];
        for s in &ordered {
            for ck in s.candidate_keys().iter().skip(1) {
                declared_keys.push(ck.iter().map(|k| (*k).to_owned()).collect());
            }
        }
        let key_refs: Vec<Vec<&str>> = declared_keys
            .iter()
            .map(|k| k.iter().map(String::as_str).collect())
            .collect();
        let key_slices: Vec<&[&str]> = key_refs.iter().map(Vec::as_slice).collect();
        let merged_scheme = RelationScheme::with_candidate_keys(merged_name, xm, &key_slices)?;

        // R′: replace the members with Rm at the first member's position.
        let mut schemes: Vec<RelationScheme> = Vec::new();
        let mut inserted = false;
        for s in schema.schemes() {
            if members.contains(&s.name()) {
                if !inserted {
                    schemes.push(merged_scheme.clone());
                    inserted = true;
                }
            } else {
                schemes.push(s.clone());
            }
        }

        // --- Step 4 (I′). ---
        let constraints_span = obs::span("core.merge.constraints");
        let member_keys: Vec<(&str, Vec<&str>)> = ordered
            .iter()
            .map(|s| (s.name(), s.primary_key()))
            .collect();
        let is_member = |n: &str| members.contains(&n);
        let mut inds = Vec::new();
        for ind in schema.inds() {
            let mut out = ind.clone();
            // (a) replace Ri with Rm on both sides.
            if is_member(&out.lhs_rel) {
                out.lhs_rel = merged_name.to_owned();
            }
            if is_member(&out.rhs_rel) {
                out.rhs_rel = merged_name.to_owned();
            }
            if out.lhs_rel == merged_name && out.rhs_rel == merged_name {
                // (b) rewrite Rm[Z] ⊆ Rm[Ki] to Rm[Z] ⊆ Rm[Km].
                let rhs_names: Vec<&str> = out.rhs_attrs.iter().map(String::as_str).collect();
                if let Some((_, ki)) = member_keys.iter().find(|(_, ki)| same_set(&rhs_names, ki)) {
                    out.rhs_attrs = reorder_to_km(&out.rhs_attrs, ki, &km);
                }
                // (c) drop Rm[Ki] ⊆ Rm[Km] for member primary keys Ki.
                let lhs_names: Vec<&str> = out.lhs_attrs.iter().map(String::as_str).collect();
                let rhs_is_km = same_set(
                    &out.rhs_attrs.iter().map(String::as_str).collect::<Vec<_>>(),
                    &km.iter().map(String::as_str).collect::<Vec<_>>(),
                );
                if rhs_is_km && member_keys.iter().any(|(_, ki)| same_set(&lhs_names, ki)) {
                    continue;
                }
            }
            if !inds.contains(&out) {
                inds.push(out);
            }
        }

        // --- Step 3 (N′). ---
        let mut nulls: Vec<NullConstraint> = schema
            .null_constraints()
            .iter()
            .filter(|c| !is_member(c.rel()))
            .cloned()
            .collect();
        // Total-participation strengthening (extension, off by default):
        // groups whose scheme is the target of the *reverse* key-to-key
        // dependency Rk[Kk] ⊆ Ri[Ki] are present in every merged tuple,
        // so their whole attribute set can be nulls-not-allowed.
        let total_groups: BTreeSet<String> = if strengthen_total_participation {
            match &key_relation {
                KeyRelationSpec::Member(ro) => {
                    let ro_scheme = schema.scheme_required(ro)?;
                    let ko: Vec<&str> = ro_scheme.primary_key();
                    groups
                        .iter()
                        .filter(|g| !g.is_key_relation)
                        .filter(|g| {
                            schema.inds().iter().any(|ind| {
                                ind.lhs_rel == *ro
                                    && ind.rhs_rel == g.scheme
                                    && same_set(
                                        &ind.lhs_attrs
                                            .iter()
                                            .map(String::as_str)
                                            .collect::<Vec<_>>(),
                                        &ko,
                                    )
                                    && same_set(
                                        &ind.rhs_attrs
                                            .iter()
                                            .map(String::as_str)
                                            .collect::<Vec<_>>(),
                                        &g.key.iter().map(String::as_str).collect::<Vec<_>>(),
                                    )
                            })
                        })
                        .map(|g| g.scheme.clone())
                        .collect()
                }
                KeyRelationSpec::Synthetic { .. } => BTreeSet::new(),
            }
        } else {
            BTreeSet::new()
        };
        // 3a: Rm : ∅ ⊑ Xk (the key-relation's whole attribute set).
        let xk: Vec<&str> = match &key_relation {
            KeyRelationSpec::Member(n) => schema.scheme_required(n)?.attr_names(),
            KeyRelationSpec::Synthetic { attrs } => attrs.iter().map(Attribute::name).collect(),
        };
        nulls.push(NullConstraint::nna(merged_name, &xk));
        // 3c: NS(Xi) for every member except Rk with |Xi| > 1 — or, with
        // the strengthening, NNA(Xi) for totally-participating groups.
        for g in &groups {
            if g.is_key_relation {
                continue;
            }
            let attrs: Vec<&str> = g.original_attrs.iter().map(String::as_str).collect();
            if total_groups.contains(&g.scheme) {
                nulls.push(NullConstraint::nna(merged_name, &attrs));
            } else if g.original_attrs.len() > 1 {
                nulls.push(NullConstraint::ns(merged_name, &attrs));
            }
        }
        // 3e: for every IND Rj[Kj] ⊆ Ri[Ki] with both members and Ki ≠ Km,
        // add Rm : Xj ⊑ Xi — unless Xi is fully NNA (strengthened), in
        // which case the constraint is implied.
        //
        // The left-hand side must be Rj's *primary key* (the paper writes
        // Rj[Z] but its justification — "the inter-relational existence
        // constraints implied by the inclusion dependencies" — only holds
        // when Z aligns the row: a tuple whose Rj-part is present has
        // Kj = Km, so the referenced Ri-group lives in the SAME tuple. For
        // a non-key Z the referenced value lives in a *different* tuple,
        // the single-tuple constraint is unsound (it rejects consistent η
        // images), and the information is instead preserved by the
        // internal inclusion dependency Rm[Z] ⊆ Rm[Km] that step 4 keeps.
        // See DESIGN.md §6 and the forest property test that caught this.
        for ind in schema.inds() {
            if is_member(&ind.lhs_rel) && is_member(&ind.rhs_rel) {
                let ri = schema.scheme_required(&ind.rhs_rel)?;
                if !ind.is_key_based(ri) {
                    continue;
                }
                let rj = schema.scheme_required(&ind.lhs_rel)?;
                let lhs_names: Vec<&str> = ind.lhs_attrs.iter().map(String::as_str).collect();
                if !rj.is_primary_key(&lhs_names) {
                    continue;
                }
                if total_groups.contains(&ind.rhs_rel) {
                    continue;
                }
                let ki: Vec<&str> = ri.primary_key();
                let km_refs: Vec<&str> = km.iter().map(String::as_str).collect();
                if same_set(&ki, &km_refs) {
                    continue;
                }
                let xj: Vec<&str> = rj.attr_names();
                let xi: Vec<&str> = ri.attr_names();
                let ne = NullConstraint::ne(merged_name, &xj, &xi);
                if !nulls.contains(&ne) {
                    nulls.push(ne);
                }
            }
        }
        // 3b: total-equality Rm : Km =⊥ Ki for every member with Ki ≠ Km.
        let km_refs: Vec<&str> = km.iter().map(String::as_str).collect();
        for g in &groups {
            let ki: Vec<&str> = g.key.iter().map(String::as_str).collect();
            if !same_set(&ki, &km_refs) {
                nulls.push(NullConstraint::te(merged_name, &km_refs, &ki));
            }
        }
        // 3d: part-null over the member attribute sets if Rk is synthetic.
        if matches!(key_relation, KeyRelationSpec::Synthetic { .. }) {
            let group_attrs: Vec<Vec<&str>> = groups
                .iter()
                .map(|g| g.original_attrs.iter().map(String::as_str).collect())
                .collect();
            let group_refs: Vec<&[&str]> = group_attrs.iter().map(Vec::as_slice).collect();
            nulls.push(NullConstraint::pn(merged_name, &group_refs));
        }

        let generated_nulls = nulls.iter().filter(|c| c.rel() == merged_name).count();
        drop(constraints_span);
        span.add_field("null_constraints", generated_nulls);
        merge_counters()
            .null_constraints
            .add(generated_nulls as u64);

        let current = RelationalSchema::with_parts(schemes, inds, nulls);
        current.validate()?;
        Ok(Merged {
            original: schema.clone(),
            current,
            merged_name: merged_name.to_owned(),
            km,
            key_relation,
            groups,
        })
    }

    fn validate_members<'a>(
        schema: &'a RelationalSchema,
        members: &[&str],
        merged_name: &str,
    ) -> Result<Vec<&'a RelationScheme>> {
        if members.len() < 2 {
            return Err(Error::PreconditionViolated {
                procedure: "Merge",
                detail: "need at least two relation-schemes to merge".to_owned(),
            });
        }
        let mut seen = BTreeSet::new();
        for m in members {
            if !seen.insert(*m) {
                return Err(Error::PreconditionViolated {
                    procedure: "Merge",
                    detail: format!("relation-scheme `{m}` listed twice"),
                });
            }
        }
        if schema.scheme(merged_name).is_some() {
            return Err(Error::DuplicateScheme(merged_name.to_owned()));
        }
        let member_schemes: Vec<&RelationScheme> = members
            .iter()
            .map(|m| schema.scheme_required(m))
            .collect::<Result<_>>()?;
        // Definition 4.1's standing assumption: attribute names are
        // globally unique across the schemes being merged (Xm would
        // otherwise contain duplicate columns).
        let mut attr_seen = BTreeSet::new();
        for s in &member_schemes {
            for a in s.attrs() {
                if !attr_seen.insert(a.name()) {
                    return Err(Error::DuplicateAttribute(a.name().to_owned()));
                }
            }
        }
        // Pairwise compatible primary keys.
        for pair in member_schemes.windows(2) {
            if !pair[0].key_compatible(pair[1]) {
                return Err(Error::PreconditionViolated {
                    procedure: "Merge",
                    detail: format!(
                        "primary keys of `{}` and `{}` are not compatible",
                        pair[0].name(),
                        pair[1].name()
                    ),
                });
            }
        }
        // Every member attribute must be nulls-not-allowed, and members may
        // carry no other null constraints (Definition 4.1's assumption).
        for s in &member_schemes {
            for a in s.attrs() {
                if !schema.attr_not_null(s.name(), a.name()) {
                    return Err(Error::PreconditionViolated {
                        procedure: "Merge",
                        detail: format!(
                            "attribute `{}` of `{}` must carry a nulls-not-allowed \
                             constraint before merging",
                            a.name(),
                            s.name()
                        ),
                    });
                }
            }
            if schema
                .null_constraints()
                .iter()
                .any(|c| c.rel() == s.name() && !c.is_nna())
            {
                return Err(Error::PreconditionViolated {
                    procedure: "Merge",
                    detail: format!(
                        "`{}` carries non-NNA null constraints; Definition 4.1 \
                         assumes merge members allow no nulls",
                        s.name()
                    ),
                });
            }
        }
        Ok(member_schemes)
    }
}

/// Reorders `rhs` (a permutation of `ki`) into the corresponding `km`
/// attributes: position `p` of the original key order maps `ki[p] → km[p]`.
fn reorder_to_km(rhs: &[String], ki: &[&str], km: &[String]) -> Vec<String> {
    rhs.iter()
        .map(|a| {
            let p = ki
                .iter()
                .position(|k| k == a)
                .expect("rhs is a permutation of ki");
            km[p].clone()
        })
        .collect()
}

fn same_set(a: &[&str], b: &[&str]) -> bool {
    a.len() == b.len() && a.iter().all(|x| b.contains(x))
}

/// Process-wide counters for the merge procedure, cached so the hot path
/// never touches the registry lock.
struct MergeCounters {
    plans: std::sync::Arc<obs::Counter>,
    null_constraints: std::sync::Arc<obs::Counter>,
    removals: std::sync::Arc<obs::Counter>,
}

fn merge_counters() -> &'static MergeCounters {
    static COUNTERS: std::sync::OnceLock<MergeCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = obs::global();
        MergeCounters {
            plans: r.counter("core.merge.plans"),
            null_constraints: r.counter("core.merge.null_constraints"),
            removals: r.counter("core.remove.removed"),
        }
    })
}

pub(crate) fn removal_counter() -> &'static std::sync::Arc<obs::Counter> {
    &merge_counters().removals
}

/// The result of `Merge` (and any subsequent `Remove`s): the transformed
/// schema `RS′` together with the state mappings η / η′ of Definition 4.1
/// (composed with the μ / μ′ of Definition 4.3 once attributes have been
/// removed).
#[derive(Debug, Clone)]
pub struct Merged {
    pub(crate) original: RelationalSchema,
    pub(crate) current: RelationalSchema,
    pub(crate) merged_name: String,
    pub(crate) km: Vec<String>,
    pub(crate) key_relation: KeyRelationSpec,
    pub(crate) groups: Vec<MergeGroup>,
}

impl Merged {
    /// The schema `RS′` (or `RS″` after removals).
    #[must_use]
    pub fn schema(&self) -> &RelationalSchema {
        &self.current
    }

    /// The original schema `RS` the merge was planned on.
    #[must_use]
    pub fn original_schema(&self) -> &RelationalSchema {
        &self.original
    }

    /// The merged relation-scheme's name `Rm`.
    #[must_use]
    pub fn merged_name(&self) -> &str {
        &self.merged_name
    }

    /// The merged scheme `Rm(Xm)`.
    #[must_use]
    pub fn merged_scheme(&self) -> &RelationScheme {
        self.current
            .scheme(&self.merged_name)
            .expect("merged scheme is always present")
    }

    /// `Km`: the merged primary key's attribute names, in key order.
    #[must_use]
    pub fn km(&self) -> Vec<&str> {
        self.km.iter().map(String::as_str).collect()
    }

    /// How the key-relation was obtained.
    #[must_use]
    pub fn key_relation(&self) -> &KeyRelationSpec {
        &self.key_relation
    }

    /// The per-member bookkeeping groups, in η's fold order.
    #[must_use]
    pub fn groups(&self) -> &[MergeGroup] {
        &self.groups
    }

    /// Looks up the group for original scheme `name`.
    #[must_use]
    pub fn group(&self, name: &str) -> Option<&MergeGroup> {
        self.groups.iter().find(|g| g.scheme == name)
    }

    /// The names of the merged (replaced) relation-schemes `R̄`.
    #[must_use]
    pub fn member_names(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.scheme.as_str()).collect()
    }

    /// The null constraints `Merge` generated on `Rm`.
    #[must_use]
    pub fn generated_null_constraints(&self) -> Vec<&NullConstraint> {
        self.current
            .null_constraints()
            .iter()
            .filter(|c| c.rel() == self.merged_name)
            .collect()
    }

    /// The state mapping **η** (composed with μ for removed attributes):
    /// maps a database state of the original schema into one of the merged
    /// schema. Identity outside `R̄`; `r_m` is built by outer-equi-joining
    /// the key-relation with the member relations on `Km = Ki`, then
    /// projecting away removed attributes.
    pub fn apply(&self, state: &DatabaseState) -> Result<DatabaseState> {
        let mut out = DatabaseState::new();
        for s in self.current.schemes() {
            if s.name() == self.merged_name {
                continue;
            }
            out.set_relation(s.name(), state.relation_required(s.name())?.clone());
        }

        // Start from the key-relation.
        let member_names: Vec<&str> = self.member_names();
        let mut rm = match &self.key_relation {
            KeyRelationSpec::Member(n) => state.relation_required(n)?.clone(),
            KeyRelationSpec::Synthetic { attrs } => {
                keyrel::union_of_keys(&self.original, state, &member_names, attrs)?
            }
        };
        // Fold the outer-equi-joins in group order.
        let km_refs: Vec<&str> = self.km();
        for g in &self.groups {
            if g.is_key_relation {
                continue;
            }
            let ri = state.relation_required(&g.scheme)?;
            let on: Vec<(&str, &str)> = km_refs
                .iter()
                .copied()
                .zip(g.key.iter().map(String::as_str))
                .collect();
            rm = algebra::outer_equi_join(&rm, ri, &on)?;
        }
        // Project onto the current merged header (drops removed attributes
        // and fixes column order).
        let wanted: Vec<&str> = self.merged_scheme().attr_names();
        let rm = algebra::project(&rm, &wanted)?;
        out.set_relation(self.merged_name.clone(), rm);
        Ok(out)
    }

    /// The state mapping **η′** (composed with μ′ for removed attributes):
    /// maps a database state of the merged schema back into one of the
    /// original schema. Identity outside `r_m`; each member relation is
    /// reconstructed as the total projection `π↓_{Xi}(r_m)`, with removed
    /// key attributes recovered from `Km` through the total-equality
    /// correspondence.
    pub fn invert(&self, state: &DatabaseState) -> Result<DatabaseState> {
        let rm = state.relation_required(&self.merged_name)?;
        let mut out = DatabaseState::new();
        for s in self.original.schemes() {
            if self.member_names().contains(&s.name()) {
                continue;
            }
            out.set_relation(s.name(), state.relation_required(s.name())?.clone());
        }
        for g in &self.groups {
            let scheme = self.original.scheme_required(&g.scheme)?;
            let reconstructed = self.reconstruct_group(rm, g, scheme)?;
            out.set_relation(g.scheme.clone(), reconstructed);
        }
        Ok(out)
    }

    /// Reconstructs one member relation from `r_m`.
    ///
    /// Without removals this is exactly `π↓_{Xi}(r_m)`. With the group key
    /// removed, a tuple's membership is witnessed by the surviving
    /// attributes `Xi − Yi` being total (the null-synchronization set
    /// `NS(Xi)` makes `Xi` all-or-nothing), and the key values are copied
    /// from `Km` (equal by the total-equality constraint `Km =⊥ Ki`,
    /// which held of every tuple before the projection μ).
    fn reconstruct_group(
        &self,
        rm: &Relation,
        g: &MergeGroup,
        scheme: &RelationScheme,
    ) -> Result<Relation> {
        let survivors = g.surviving_attrs();
        let survivor_pos = rm.positions(&survivors)?;
        let km_refs: Vec<&str> = self.km();
        let km_pos = rm.positions(&km_refs)?;
        // For each original attribute: where to fetch its value from.
        enum Source {
            Col(usize),
            FromKm(usize),
        }
        let sources: Vec<Source> = g
            .original_attrs
            .iter()
            .map(|a| {
                if g.removed.contains(a) {
                    let p = g
                        .key
                        .iter()
                        .position(|k| k == a)
                        .expect("only key attributes are removable");
                    Ok(Source::FromKm(km_pos[p]))
                } else {
                    Ok(Source::Col(rm.position(a).ok_or_else(|| {
                        Error::UnknownAttribute {
                            attribute: a.clone(),
                            context: self.merged_name.clone(),
                        }
                    })?))
                }
            })
            .collect::<Result<_>>()?;
        let mut out = Relation::new(scheme.attrs().to_vec())?;
        for t in rm.iter() {
            if !t.is_total_at(&survivor_pos) {
                continue;
            }
            let values: Vec<Value> = sources
                .iter()
                .map(|s| match s {
                    Source::Col(i) | Source::FromKm(i) => t.get(*i).clone(),
                })
                .collect();
            out.insert(Tuple::new(values))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmerge_relational::{Domain, InclusionDep};

    fn attr(name: &str, d: Domain) -> Attribute {
        Attribute::new(name, d)
    }

    /// Figure 2's two relation-schemes, with every attribute NNA.
    fn offer_teach() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new(
                "OFFER",
                vec![attr("O.CN", Domain::Int), attr("O.DN", Domain::Int)],
                &["O.CN"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "TEACH",
                vec![attr("T.CN", Domain::Int), attr("T.FN", Domain::Int)],
                &["T.CN"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.CN", "O.DN"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("TEACH", &["T.CN", "T.FN"]))
            .unwrap();
        rs
    }

    #[test]
    fn synthetic_key_merge_matches_figure_2() {
        let rs = offer_teach();
        let m =
            Merge::plan_with_synthetic_key(&rs, &["OFFER", "TEACH"], "ASSIGN", &["CN"]).unwrap();
        let scheme = m.merged_scheme();
        assert_eq!(scheme.attr_names(), ["CN", "O.CN", "O.DN", "T.CN", "T.FN"]);
        assert_eq!(scheme.primary_key(), ["CN"]);
        let cons = m.generated_null_constraints();
        // NNA on CN, NS per member, PN over both groups, TE per member.
        assert!(cons.contains(&&NullConstraint::nna("ASSIGN", &["CN"])));
        assert!(cons.contains(&&NullConstraint::ns("ASSIGN", &["O.CN", "O.DN"])));
        assert!(cons.contains(&&NullConstraint::ns("ASSIGN", &["T.CN", "T.FN"])));
        assert!(cons.contains(&&NullConstraint::pn(
            "ASSIGN",
            &[&["O.CN", "O.DN"], &["T.CN", "T.FN"]]
        )));
        assert!(cons.contains(&&NullConstraint::te("ASSIGN", &["CN"], &["O.CN"])));
        assert!(cons.contains(&&NullConstraint::te("ASSIGN", &["CN"], &["T.CN"])));
        assert_eq!(cons.len(), 6);
        assert!(m.schema().is_bcnf());
    }

    #[test]
    fn member_key_relation_when_ind_present() {
        // With TEACH[T.CN] ⊆ OFFER[O.CN], OFFER is the key-relation
        // (the paper's Figure 2 discussion).
        let mut rs = offer_teach();
        rs.add_ind(InclusionDep::new("TEACH", &["T.CN"], "OFFER", &["O.CN"]))
            .unwrap();
        let m = Merge::plan(&rs, &["OFFER", "TEACH"], "ASSIGN").unwrap();
        assert_eq!(
            m.key_relation(),
            &KeyRelationSpec::Member("OFFER".to_owned())
        );
        assert_eq!(m.km(), ["O.CN"]);
        let scheme = m.merged_scheme();
        assert_eq!(scheme.attr_names(), ["O.CN", "O.DN", "T.CN", "T.FN"]);
        let cons = m.generated_null_constraints();
        // NNA over the key-relation's whole attribute set.
        assert!(cons.contains(&&NullConstraint::nna("ASSIGN", &["O.CN", "O.DN"])));
        // No part-null constraint (key-relation is a member).
        assert!(!cons
            .iter()
            .any(|c| matches!(c, NullConstraint::PartNull { .. })));
        // NS only for TEACH.
        assert!(cons.contains(&&NullConstraint::ns("ASSIGN", &["T.CN", "T.FN"])));
        // TE only for TEACH's key.
        assert!(cons.contains(&&NullConstraint::te("ASSIGN", &["O.CN"], &["T.CN"])));
        // The internal IND disappears (step 4c).
        assert!(m.schema().inds().is_empty());
    }

    #[test]
    fn preconditions_enforced() {
        let rs = offer_teach();
        assert!(Merge::plan(&rs, &["OFFER"], "A").is_err());
        assert!(Merge::plan(&rs, &["OFFER", "OFFER"], "A").is_err());
        assert!(Merge::plan(&rs, &["OFFER", "NOPE"], "A").is_err());
        assert!(Merge::plan(&rs, &["OFFER", "TEACH"], "OFFER").is_err());

        // Missing NNA on a member attribute.
        let mut no_nna = RelationalSchema::new();
        no_nna
            .add_scheme(RelationScheme::new("A", vec![attr("A.K", Domain::Int)], &["A.K"]).unwrap())
            .unwrap();
        no_nna
            .add_scheme(RelationScheme::new("B", vec![attr("B.K", Domain::Int)], &["B.K"]).unwrap())
            .unwrap();
        no_nna
            .add_null_constraint(NullConstraint::nna("A", &["A.K"]))
            .unwrap();
        let err = Merge::plan(&no_nna, &["A", "B"], "M").unwrap_err();
        assert!(matches!(err, Error::PreconditionViolated { .. }));

        // Incompatible keys.
        let mut incompat = RelationalSchema::new();
        incompat
            .add_scheme(RelationScheme::new("A", vec![attr("A.K", Domain::Int)], &["A.K"]).unwrap())
            .unwrap();
        incompat
            .add_scheme(
                RelationScheme::new("B", vec![attr("B.K", Domain::Text)], &["B.K"]).unwrap(),
            )
            .unwrap();
        incompat
            .add_null_constraint(NullConstraint::nna("A", &["A.K"]))
            .unwrap();
        incompat
            .add_null_constraint(NullConstraint::nna("B", &["B.K"]))
            .unwrap();
        assert!(Merge::plan(&incompat, &["A", "B"], "M").is_err());
    }

    #[test]
    fn eta_round_trip_synthetic_key() {
        let rs = offer_teach();
        let m =
            Merge::plan_with_synthetic_key(&rs, &["OFFER", "TEACH"], "ASSIGN", &["CN"]).unwrap();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("OFFER", Tuple::new([Value::Int(1), Value::Int(10)]))
            .unwrap();
        st.insert("OFFER", Tuple::new([Value::Int(3), Value::Int(30)]))
            .unwrap();
        st.insert("TEACH", Tuple::new([Value::Int(1), Value::Int(100)]))
            .unwrap();
        st.insert("TEACH", Tuple::new([Value::Int(2), Value::Int(200)]))
            .unwrap();
        let merged_state = m.apply(&st).unwrap();
        let rm = merged_state.relation("ASSIGN").unwrap();
        // 3 distinct course numbers → 3 tuples.
        assert_eq!(rm.len(), 3);
        assert!(merged_state.is_consistent(m.schema()).unwrap());
        let back = m.invert(&merged_state).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn eta_round_trip_member_key() {
        let mut rs = offer_teach();
        rs.add_ind(InclusionDep::new("TEACH", &["T.CN"], "OFFER", &["O.CN"]))
            .unwrap();
        let m = Merge::plan(&rs, &["OFFER", "TEACH"], "ASSIGN").unwrap();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("OFFER", Tuple::new([Value::Int(1), Value::Int(10)]))
            .unwrap();
        st.insert("OFFER", Tuple::new([Value::Int(2), Value::Int(20)]))
            .unwrap();
        st.insert("TEACH", Tuple::new([Value::Int(1), Value::Int(100)]))
            .unwrap();
        assert!(st.is_consistent(&rs).unwrap());
        let merged_state = m.apply(&st).unwrap();
        let rm = merged_state.relation("ASSIGN").unwrap();
        assert_eq!(rm.len(), 2);
        // The unmatched OFFER tuple has nulls in the TEACH part only.
        assert!(rm.contains(&Tuple::new([
            Value::Int(2),
            Value::Int(20),
            Value::Null,
            Value::Null
        ])));
        assert!(merged_state.is_consistent(m.schema()).unwrap());
        let back = m.invert(&merged_state).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn step_3e_skips_non_key_intra_set_dependencies() {
        // Regression for a soundness bug found by the forest property
        // test: F2's *non-key* attribute references fellow member F1's
        // key. Definition 4.1 step 3(e) read literally would add
        // Rm : X_F2 ⊑ X_F1, which rejects consistent η images (the
        // referenced F1 group lives in a DIFFERENT tuple). The constraint
        // must only be generated for key-to-key dependencies; the non-key
        // reference survives as an internal inclusion dependency instead.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new("F0", vec![attr("F0.K", Domain::Int)], &["F0.K"]).unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new("F1", vec![attr("F1.K", Domain::Int)], &["F1.K"]).unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "F2",
                vec![attr("F2.K", Domain::Int), attr("F2.V0", Domain::Int)],
                &["F2.K"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("F0", &["F0.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("F1", &["F1.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("F2", &["F2.K", "F2.V0"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("F1", &["F1.K"], "F0", &["F0.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("F2", &["F2.K"], "F0", &["F0.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("F2", &["F2.V0"], "F1", &["F1.K"]))
            .unwrap();
        let m = Merge::plan(&rs, &["F0", "F1", "F2"], "M").unwrap();
        // No null-existence constraint between the F2 and F1 groups.
        assert!(!m.generated_null_constraints().iter().any(|c| matches!(
            c,
            NullConstraint::NullExistence { lhs, .. } if !lhs.is_empty()
        )));
        // The non-key reference became an internal IND onto Km.
        assert!(m
            .schema()
            .inds()
            .contains(&InclusionDep::new("M", &["F2.V0"], "M", &["F0.K"])));
        // The witness state: course 5 exists in F2 (pointing at F1-key 4)
        // while F1 has no member 5 — consistent before AND after merging.
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        for k in [1i64, 4, 5] {
            st.insert("F0", Tuple::new([Value::Int(k)])).unwrap();
        }
        st.insert("F1", Tuple::new([Value::Int(4)])).unwrap();
        st.insert("F2", Tuple::new([Value::Int(5), Value::Int(4)]))
            .unwrap();
        assert!(st.is_consistent(&rs).unwrap());
        let image = m.apply(&st).unwrap();
        assert!(
            image.is_consistent(m.schema()).unwrap(),
            "{:?}",
            image.violations(m.schema()).unwrap()
        );
        assert_eq!(m.invert(&image).unwrap(), st);
    }

    #[test]
    fn total_participation_strengthening() {
        // COURSE and OFFER reference each other key-to-key: every course
        // is offered (total participation). With the strengthening option,
        // the OFFER group becomes nulls-not-allowed instead of
        // null-synchronized.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new("COURSE", vec![attr("C.NR", Domain::Int)], &["C.NR"]).unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "OFFER",
                vec![attr("O.C.NR", Domain::Int), attr("O.D", Domain::Int)],
                &["O.C.NR"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "TEACH",
                vec![attr("T.C.NR", Domain::Int), attr("T.F", Domain::Int)],
                &["T.C.NR"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("COURSE", &["C.NR"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.C.NR", "O.D"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("TEACH", &["T.C.NR", "T.F"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("COURSE", &["C.NR"], "OFFER", &["O.C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("TEACH", &["T.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();

        // Paper-faithful output: NS for both satellites.
        let plain = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH"], "M").unwrap();
        assert!(plain
            .generated_null_constraints()
            .contains(&&NullConstraint::ns("M", &["O.C.NR", "O.D"])));

        // Strengthened output: NNA for OFFER, NS only for TEACH.
        let options = MergeOptions {
            strengthen_total_participation: true,
            ..MergeOptions::default()
        };
        let strengthened =
            Merge::plan_with_options(&rs, &["COURSE", "OFFER", "TEACH"], "M", &options).unwrap();
        let cons = strengthened.generated_null_constraints();
        assert!(cons.contains(&&NullConstraint::nna("M", &["O.C.NR", "O.D"])));
        assert!(!cons.contains(&&NullConstraint::ns("M", &["O.C.NR", "O.D"])));
        assert!(cons.contains(&&NullConstraint::ns("M", &["T.C.NR", "T.F"])));

        // Semantics: on states honoring the total participation, both
        // variants round-trip and both schemas accept the merged image.
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        for nr in [1i64, 2] {
            st.insert("COURSE", Tuple::new([Value::Int(nr)])).unwrap();
            st.insert("OFFER", Tuple::new([Value::Int(nr), Value::Int(nr + 10)]))
                .unwrap();
        }
        st.insert("TEACH", Tuple::new([Value::Int(1), Value::Int(100)]))
            .unwrap();
        assert!(st.is_consistent(&rs).unwrap());
        for m in [&plain, &strengthened] {
            let image = m.apply(&st).unwrap();
            assert!(image.is_consistent(m.schema()).unwrap());
            assert_eq!(m.invert(&image).unwrap(), st);
        }
        // The strengthened schema *rejects* merged tuples with an absent
        // OFFER group — which the plain schema would accept even though
        // no consistent original state maps to them (the reverse
        // dependency would be violated).
        let mut bad = strengthened.apply(&st).unwrap();
        bad.relation_mut("M")
            .unwrap()
            .insert(Tuple::new([
                Value::Int(3),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ]))
            .unwrap();
        assert!(!bad.is_consistent(strengthened.schema()).unwrap());
    }

    #[test]
    fn composite_key_merge() {
        // Two schemes with compatible 2-attribute keys (Int, Text order).
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new(
                "A",
                vec![
                    attr("A.K1", Domain::Int),
                    attr("A.K2", Domain::Text),
                    attr("A.V", Domain::Int),
                ],
                &["A.K1", "A.K2"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "B",
                vec![
                    attr("B.K1", Domain::Int),
                    attr("B.K2", Domain::Text),
                    attr("B.V", Domain::Int),
                ],
                &["B.K1", "B.K2"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K1", "A.K2", "A.V"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("B", &["B.K1", "B.K2", "B.V"]))
            .unwrap();
        rs.add_ind(InclusionDep::new(
            "B",
            &["B.K1", "B.K2"],
            "A",
            &["A.K1", "A.K2"],
        ))
        .unwrap();
        let m = Merge::plan(&rs, &["A", "B"], "M").unwrap();
        assert_eq!(m.km(), ["A.K1", "A.K2"]);
        // The TE constraint pairs key components positionally.
        assert!(m
            .generated_null_constraints()
            .contains(&&NullConstraint::te(
                "M",
                &["A.K1", "A.K2"],
                &["B.K1", "B.K2"]
            )));
        // Round trip with composite keys.
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert(
            "A",
            Tuple::new([Value::Int(1), Value::text("x"), Value::Int(10)]),
        )
        .unwrap();
        st.insert(
            "A",
            Tuple::new([Value::Int(1), Value::text("y"), Value::Int(20)]),
        )
        .unwrap();
        st.insert(
            "B",
            Tuple::new([Value::Int(1), Value::text("x"), Value::Int(30)]),
        )
        .unwrap();
        let merged_state = m.apply(&st).unwrap();
        assert!(merged_state.is_consistent(m.schema()).unwrap());
        assert_eq!(m.invert(&merged_state).unwrap(), st);
    }

    #[test]
    fn non_key_internal_ind_becomes_self_reference() {
        // B carries a second reference into A (B.REF ⊆ A.K) beyond its
        // key-based one. After merging it must survive as a
        // self-referencing inclusion dependency Rm[B.REF] ⊆ Rm[Km]
        // (step 4(a)+(b)), while the key-to-key one disappears (4(c)).
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("A", vec![attr("A.K", Domain::Int)], &["A.K"]).unwrap())
            .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "B",
                vec![attr("B.K", Domain::Int), attr("B.REF", Domain::Int)],
                &["B.K"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("B", &["B.K", "B.REF"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("B", &["B.REF"], "A", &["A.K"]))
            .unwrap();
        let m = Merge::plan(&rs, &["A", "B"], "M").unwrap();
        let inds = m.schema().inds();
        assert_eq!(inds.len(), 1);
        assert_eq!(inds[0], InclusionDep::new("M", &["B.REF"], "M", &["A.K"]));
        // The self-reference is still key-based (Km is Rm's primary key).
        assert!(m.schema().key_based_inds_only());
        // A state where every REF points at an existing key round-trips.
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("A", Tuple::new([Value::Int(1)])).unwrap();
        st.insert("A", Tuple::new([Value::Int(2)])).unwrap();
        st.insert("B", Tuple::new([Value::Int(1), Value::Int(2)]))
            .unwrap();
        let merged_state = m.apply(&st).unwrap();
        assert!(merged_state.is_consistent(m.schema()).unwrap());
        assert_eq!(m.invert(&merged_state).unwrap(), st);
        // B.REF is NOT removable: condition (4) — wait, B.REF is not a
        // group key at all; only group keys are candidates. The group key
        // B.K *is* blocked by condition (4): B.REF's self-reference does
        // not overlap B.K, so check the actual gate — condition (2): the
        // internal IND targets Rm[A.K], not Rm[B.K], so B.K is removable.
        assert_eq!(m.removable("B"), Ok(()));
    }

    #[test]
    fn merged_scheme_inherits_alternative_candidate_keys() {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::with_candidate_keys(
                "A",
                vec![attr("A.K", Domain::Int), attr("A.ALT", Domain::Int)],
                &[&["A.K"], &["A.ALT"]],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_scheme(RelationScheme::new("B", vec![attr("B.K", Domain::Int)], &["B.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K", "A.ALT"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("B", &["B.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
            .unwrap();
        let m = Merge::plan(&rs, &["A", "B"], "M").unwrap();
        let keys = m.merged_scheme().candidate_keys();
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0], vec!["A.K"]);
        assert_eq!(keys[1], vec!["A.ALT"]);
    }
}
