//! Key-relations (Definition 3.1) and their syntactic characterization
//! through the `Refkey*` recursion (Proposition 3.1).

use relmerge_relational::algebra;
use relmerge_relational::ind::refkey_star;
use relmerge_relational::{
    Attribute, DatabaseState, Error, Relation, RelationScheme, RelationalSchema, Result,
};

/// How the key-relation `Rk(Xk)` of a merge set `R̄` is obtained
/// (Definition 4.1's case split).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyRelationSpec {
    /// `R̄` contains a key-relation `R₀` (Proposition 3.1):
    /// `Rk := R₀`, `Xk := X₀`, `Kk := K₀`.
    Member(String),
    /// No member qualifies; a fresh relation-scheme `Rk(Kk)` is synthesized
    /// with `Xk = Kk` disjoint from all existing attribute names. Its
    /// relation is derived from the state:
    /// `rk := ⋃ rename(π_{Ki}(ri), Ki ← Kk)`.
    Synthetic {
        /// The fresh key attributes `Kk`.
        attrs: Vec<Attribute>,
    },
}

impl KeyRelationSpec {
    /// The key attribute names `Kk` of the key-relation, resolving a
    /// member against the schema.
    pub fn key_names(&self, schema: &RelationalSchema) -> Result<Vec<String>> {
        match self {
            KeyRelationSpec::Member(name) => Ok(schema
                .scheme_required(name)?
                .primary_key()
                .iter()
                .map(|s| (*s).to_owned())
                .collect()),
            KeyRelationSpec::Synthetic { attrs } => {
                Ok(attrs.iter().map(|a| a.name().to_owned()).collect())
            }
        }
    }
}

/// Finds a key-relation among `members` using Proposition 3.1: `R₀ ∈ R̄` is
/// a key-relation of `R̄` iff `R̄ = {R₀} ∪ Refkey*(R₀, R̄)`.
///
/// Returns the first qualifying member in `members` order (the
/// characterization can admit several when key-to-key inclusion
/// dependencies form cycles; any qualifies).
#[must_use]
pub fn find_key_relation<'a>(
    schema: &RelationalSchema,
    members: &[&'a RelationScheme],
) -> Option<&'a RelationScheme> {
    members.iter().copied().find(|r0| {
        let star = refkey_star(r0, members, schema.inds());
        star.len() + 1 == members.len()
    })
}

/// Checks the *semantic* key-relation condition of Definition 3.1 against a
/// concrete state: `π_{Kk}(rk) = ⋃_{Ri ∈ R̄} rename(π_{Ki}(ri), Ki ← Kk)`.
///
/// `key_rel` names the candidate key-relation (a member of `members`).
/// Used by tests to confirm that Proposition 3.1's syntactic test agrees
/// with the definition on consistent states.
pub fn is_key_relation_semantically(
    schema: &RelationalSchema,
    state: &DatabaseState,
    key_rel: &str,
    members: &[&str],
) -> Result<bool> {
    let r0_scheme = schema.scheme_required(key_rel)?;
    let kk_attrs = r0_scheme.primary_key_attrs();
    let r0 = state.relation_required(key_rel)?;
    let kk_names: Vec<&str> = r0_scheme.primary_key();
    let lhs = algebra::project(r0, &kk_names)?;
    let rhs = union_of_keys(schema, state, members, &kk_attrs)?;
    Ok(lhs.set_eq_unordered(&rhs))
}

/// Builds `⋃_{Ri ∈ members} rename(π_{Ki}(ri), Ki ← Kk)` — the relation a
/// *synthetic* key-relation is associated with (Definition 4.1), and the
/// right-hand side of Definition 3.1's condition.
pub fn union_of_keys(
    schema: &RelationalSchema,
    state: &DatabaseState,
    members: &[&str],
    kk: &[Attribute],
) -> Result<Relation> {
    let mut acc = Relation::new(kk.to_vec())?;
    for name in members {
        let scheme = schema.scheme_required(name)?;
        let ki: Vec<&str> = scheme.primary_key();
        if ki.len() != kk.len() {
            return Err(Error::IncompatibleAttributes {
                detail: format!(
                    "primary key of `{name}` has arity {} but key-relation key has arity {}",
                    ki.len(),
                    kk.len()
                ),
            });
        }
        let r = state.relation_required(name)?;
        let keys = algebra::project(r, &ki)?;
        let renamed = algebra::rename(&keys, &ki, kk)?;
        acc = algebra::union(&acc, &renamed)?;
    }
    Ok(acc)
}

/// Synthesizes fresh key-relation attributes `Kk` for a merge set with no
/// member key-relation: names `<base>.K1 … <base>.Kn` (checked fresh
/// against the whole schema), domains copied from the first member's
/// primary key.
pub fn synthesize_key_attrs(
    schema: &RelationalSchema,
    members: &[&RelationScheme],
    base: &str,
    requested: Option<&[&str]>,
) -> Result<Vec<Attribute>> {
    let first = members.first().ok_or_else(|| Error::PreconditionViolated {
        procedure: "Merge",
        detail: "empty merge set".to_owned(),
    })?;
    let key = first.primary_key_attrs();
    let names: Vec<String> = match requested {
        Some(names) => {
            if names.len() != key.len() {
                return Err(Error::PreconditionViolated {
                    procedure: "Merge",
                    detail: format!(
                        "requested {} synthetic key names for a {}-attribute key",
                        names.len(),
                        key.len()
                    ),
                });
            }
            names.iter().map(|s| (*s).to_owned()).collect()
        }
        None => (1..=key.len()).map(|i| format!("{base}.K{i}")).collect(),
    };
    for n in &names {
        if schema.scheme_of_attr(n).is_some() {
            return Err(Error::DuplicateAttribute(n.clone()));
        }
    }
    Ok(names
        .into_iter()
        .zip(&key)
        .map(|(n, a)| Attribute::new(n, a.domain()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmerge_relational::{Domain, InclusionDep, Tuple, Value};

    fn scheme(name: &str, attrs: &[&str], key: &[&str]) -> RelationScheme {
        RelationScheme::new(
            name,
            attrs
                .iter()
                .map(|a| Attribute::new(*a, Domain::Int))
                .collect(),
            key,
        )
        .unwrap()
    }

    /// COURSE <- OFFER <- {TEACH, ASSIST} key chain of Figures 3-5.
    fn university() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("COURSE", &["C.NR"], &["C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("OFFER", &["O.C.NR", "O.D"], &["O.C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("TEACH", &["T.C.NR", "T.F"], &["T.C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("ASSIST", &["A.C.NR", "A.S"], &["A.C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new(
            "TEACH",
            &["T.C.NR"],
            "OFFER",
            &["O.C.NR"],
        ))
        .unwrap();
        rs.add_ind(InclusionDep::new(
            "ASSIST",
            &["A.C.NR"],
            "OFFER",
            &["O.C.NR"],
        ))
        .unwrap();
        rs
    }

    #[test]
    fn finds_key_relation_through_transitive_chain() {
        let rs = university();
        let members: Vec<&RelationScheme> = rs.schemes().iter().collect();
        let k = find_key_relation(&rs, &members).unwrap();
        assert_eq!(k.name(), "COURSE");
        // For {OFFER, TEACH, ASSIST}, OFFER qualifies.
        let sub: Vec<&RelationScheme> = rs.schemes()[1..].iter().collect();
        assert_eq!(find_key_relation(&rs, &sub).unwrap().name(), "OFFER");
        // {TEACH, ASSIST} has no key-relation (no IND between them).
        let pair: Vec<&RelationScheme> = rs.schemes()[2..].iter().collect();
        assert!(find_key_relation(&rs, &pair).is_none());
    }

    #[test]
    fn semantic_check_agrees_on_consistent_states() {
        let rs = university();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        for nr in [1, 2, 3] {
            st.insert("COURSE", Tuple::new([Value::Int(nr)])).unwrap();
        }
        st.insert("OFFER", Tuple::new([Value::Int(1), Value::Int(10)]))
            .unwrap();
        st.insert("OFFER", Tuple::new([Value::Int(2), Value::Int(20)]))
            .unwrap();
        st.insert("TEACH", Tuple::new([Value::Int(1), Value::Int(100)]))
            .unwrap();
        // Definition 3.1 requires *equality*: COURSE(3) is offered by
        // nobody, so COURSE is not a key-relation of {OFFER, TEACH}.
        assert!(!is_key_relation_semantically(&rs, &st, "COURSE", &["OFFER", "TEACH"]).unwrap());
        // Covering course 3 restores equality.
        st.insert("OFFER", Tuple::new([Value::Int(3), Value::Int(30)]))
            .unwrap();
        assert!(is_key_relation_semantically(&rs, &st, "COURSE", &["OFFER", "TEACH"]).unwrap());
        // A member key-relation: when Rk ∈ R̄ its own keys join the union,
        // so the condition reduces to "rk covers all member keys".
        assert!(is_key_relation_semantically(&rs, &st, "OFFER", &["OFFER", "TEACH"]).unwrap());
        // TEACH lacks courses 2 and 3: not a key-relation of the pair.
        assert!(!is_key_relation_semantically(&rs, &st, "TEACH", &["OFFER", "TEACH"]).unwrap());
    }

    #[test]
    fn union_of_keys_renames_and_dedupes() {
        let rs = university();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("TEACH", Tuple::new([Value::Int(1), Value::Int(100)]))
            .unwrap();
        st.insert("ASSIST", Tuple::new([Value::Int(1), Value::Int(200)]))
            .unwrap();
        st.insert("ASSIST", Tuple::new([Value::Int(2), Value::Int(200)]))
            .unwrap();
        let kk = vec![Attribute::new("K", Domain::Int)];
        let u = union_of_keys(&rs, &st, &["TEACH", "ASSIST"], &kk).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.attr_names(), ["K"]);
    }

    #[test]
    fn key_to_key_cycle_both_qualify() {
        // A[K] ⊆ B[K] and B[K] ⊆ A[K]: both schemes qualify as
        // key-relations (Prop 3.1 admits either); the finder returns the
        // first in member order, deterministically.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("A", &["A.K"], &["A.K"])).unwrap();
        rs.add_scheme(scheme("B", &["B.K"], &["B.K"])).unwrap();
        rs.add_ind(InclusionDep::new("A", &["A.K"], "B", &["B.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
            .unwrap();
        let schemes: Vec<&RelationScheme> = rs.schemes().iter().collect();
        assert_eq!(find_key_relation(&rs, &schemes).unwrap().name(), "A");
        let reversed: Vec<&RelationScheme> = rs.schemes().iter().rev().collect();
        assert_eq!(find_key_relation(&rs, &reversed).unwrap().name(), "B");
    }

    #[test]
    fn key_relation_spec_key_names() {
        let rs = university();
        let member = KeyRelationSpec::Member("OFFER".to_owned());
        assert_eq!(member.key_names(&rs).unwrap(), ["O.C.NR"]);
        assert!(KeyRelationSpec::Member("NOPE".to_owned())
            .key_names(&rs)
            .is_err());
        let synthetic = KeyRelationSpec::Synthetic {
            attrs: vec![Attribute::new("KX", Domain::Int)],
        };
        assert_eq!(synthetic.key_names(&rs).unwrap(), ["KX"]);
    }

    #[test]
    fn synthetic_key_attrs_fresh_and_typed() {
        let rs = university();
        let members: Vec<&RelationScheme> = rs.schemes()[2..].iter().collect(); // TEACH, ASSIST
        let attrs = synthesize_key_attrs(&rs, &members, "MERGED", None).unwrap();
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].name(), "MERGED.K1");
        assert_eq!(attrs[0].domain(), Domain::Int);
        let named = synthesize_key_attrs(&rs, &members, "MERGED", Some(&["CN"])).unwrap();
        assert_eq!(named[0].name(), "CN");
        // Collisions with existing attribute names are rejected.
        assert!(synthesize_key_attrs(&rs, &members, "MERGED", Some(&["C.NR"])).is_err());
        // Wrong arity rejected.
        assert!(synthesize_key_attrs(&rs, &members, "MERGED", Some(&["A", "B"])).is_err());
    }
}
