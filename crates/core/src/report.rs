//! Human-readable merge reports: what a `Merge`/`Remove` pipeline did to a
//! schema, as a structured diff — the explanatory output an SDT-style tool
//! shows its user before committing to a transformation.

use std::fmt;

use relmerge_relational::{InclusionDep, NullConstraint};

use crate::keyrel::KeyRelationSpec;
use crate::merge::Merged;

/// A structured account of one merge (after any removals).
#[derive(Debug, Clone)]
pub struct MergeReport {
    /// The merged relation-scheme's name.
    pub merged_name: String,
    /// The replaced relation-schemes `R̄`.
    pub replaced: Vec<String>,
    /// How the key-relation was obtained.
    pub key_relation: String,
    /// `Km`.
    pub km: Vec<String>,
    /// Attributes of `Xm` that `Remove` dropped, by original scheme.
    pub removed_attrs: Vec<(String, Vec<String>)>,
    /// Null constraints now on `Rm`, partitioned by declarative support.
    pub nna_constraints: Vec<NullConstraint>,
    /// General (trigger/rule-tier) null constraints on `Rm`.
    pub general_constraints: Vec<NullConstraint>,
    /// Inclusion dependencies rewritten onto `Rm` (either side).
    pub rewritten_inds: Vec<InclusionDep>,
    /// Non-key-based inclusion dependencies in the whole output schema
    /// (the §5.1 deployment hazard).
    pub non_key_based_inds: Vec<InclusionDep>,
    /// Joins eliminated for a query touching all members (`|R̄| − 1`).
    pub joins_eliminated: usize,
    /// Whether the output schema is in BCNF.
    pub bcnf: bool,
    /// Scheme count before and after.
    pub scheme_count: (usize, usize),
}

impl MergeReport {
    /// Builds the report from a (possibly removed-from) [`Merged`].
    #[must_use]
    pub fn new(merged: &Merged) -> Self {
        let schema = merged.schema();
        let rm = merged.merged_name();
        let (nna, general): (Vec<_>, Vec<_>) = schema
            .null_constraints()
            .iter()
            .filter(|c| c.rel() == rm)
            .cloned()
            .partition(NullConstraint::is_nna);
        let rewritten: Vec<InclusionDep> = schema
            .inds()
            .iter()
            .filter(|i| i.lhs_rel == rm || i.rhs_rel == rm)
            .cloned()
            .collect();
        let non_key_based: Vec<InclusionDep> = schema
            .inds()
            .iter()
            .filter(|ind| {
                schema
                    .scheme(&ind.rhs_rel)
                    .is_some_and(|rhs| !ind.is_key_based(rhs))
            })
            .cloned()
            .collect();
        MergeReport {
            merged_name: rm.to_owned(),
            replaced: merged
                .member_names()
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            key_relation: match merged.key_relation() {
                KeyRelationSpec::Member(n) => format!("member `{n}` (Proposition 3.1)"),
                KeyRelationSpec::Synthetic { attrs } => format!(
                    "synthetic ({})",
                    attrs
                        .iter()
                        .map(|a| a.name().to_owned())
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            },
            km: merged.km().iter().map(|s| (*s).to_owned()).collect(),
            removed_attrs: merged
                .groups()
                .iter()
                .filter(|g| g.key_removed())
                .map(|g| (g.scheme.clone(), g.removed.clone()))
                .collect(),
            nna_constraints: nna,
            general_constraints: general,
            rewritten_inds: rewritten,
            non_key_based_inds: non_key_based,
            joins_eliminated: merged.groups().len().saturating_sub(1),
            bcnf: schema.is_bcnf(),
            scheme_count: (
                merged.original_schema().schemes().len(),
                schema.schemes().len(),
            ),
        }
    }

    /// Whether the output is deployable with purely declarative
    /// mechanisms (NNA-only constraints and key-based dependencies) — the
    /// DB2 regime of §5.1.
    #[must_use]
    pub fn fully_declarative(&self) -> bool {
        self.general_constraints.is_empty() && self.non_key_based_inds.is_empty()
    }
}

impl fmt::Display for MergeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Merged {{{}}} -> {} ({} -> {} relation-schemes, {} join(s) eliminated)",
            self.replaced.join(", "),
            self.merged_name,
            self.scheme_count.0,
            self.scheme_count.1,
            self.joins_eliminated
        )?;
        writeln!(
            f,
            "  key-relation: {}; Km = ({})",
            self.key_relation,
            self.km.join(",")
        )?;
        if !self.removed_attrs.is_empty() {
            let parts: Vec<String> = self
                .removed_attrs
                .iter()
                .map(|(s, attrs)| format!("{s}: {}", attrs.join(",")))
                .collect();
            writeln!(f, "  removed redundant attributes: {}", parts.join("; "))?;
        }
        writeln!(f, "  BCNF: {}", self.bcnf)?;
        writeln!(
            f,
            "  declarative (NOT NULL) constraints: {}",
            self.nna_constraints.len()
        )?;
        if self.general_constraints.is_empty() {
            writeln!(f, "  general null constraints: none")?;
        } else {
            writeln!(f, "  general null constraints (trigger/rule tier):")?;
            for c in &self.general_constraints {
                writeln!(f, "    {c}")?;
            }
        }
        if !self.non_key_based_inds.is_empty() {
            writeln!(
                f,
                "  non key-based inclusion dependencies (deployment hazard):"
            )?;
            for i in &self.non_key_based_inds {
                writeln!(f, "    {i}")?;
            }
        }
        if self.fully_declarative() {
            writeln!(f, "  deployable on declarative-only systems (DB2 regime)")?;
        } else {
            writeln!(
                f,
                "  needs a trigger/rule mechanism (SYBASE 4.0 / INGRES 6.3 regime)"
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::Merge;
    use relmerge_relational::{
        Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema,
    };

    fn attr(name: &str) -> Attribute {
        Attribute::new(name, Domain::Int)
    }

    fn chain() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("COURSE", vec![attr("C.NR")], &["C.NR"]).unwrap())
            .unwrap();
        rs.add_scheme(
            RelationScheme::new("OFFER", vec![attr("O.C.NR"), attr("O.D")], &["O.C.NR"]).unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new("TEACH", vec![attr("T.C.NR"), attr("T.F")], &["T.C.NR"]).unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("COURSE", &["C.NR"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.C.NR", "O.D"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("TEACH", &["T.C.NR", "T.F"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new(
            "TEACH",
            &["T.C.NR"],
            "OFFER",
            &["O.C.NR"],
        ))
        .unwrap();
        rs
    }

    #[test]
    fn report_summarizes_pipeline() {
        let rs = chain();
        let mut m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH"], "CM").unwrap();
        m.remove_all_removable().unwrap();
        let report = MergeReport::new(&m);
        assert_eq!(report.merged_name, "CM");
        assert_eq!(report.replaced, ["COURSE", "OFFER", "TEACH"]);
        assert_eq!(report.scheme_count, (3, 1));
        assert_eq!(report.joins_eliminated, 2);
        assert!(report.bcnf);
        assert!(report.key_relation.contains("COURSE"));
        assert_eq!(report.removed_attrs.len(), 2);
        // The chain keeps one general constraint (T.F ⊑ O.D).
        assert_eq!(report.general_constraints.len(), 1);
        assert!(!report.fully_declarative());
        let text = report.to_string();
        assert!(text.contains("2 join(s) eliminated"));
        assert!(text.contains("trigger/rule"));
    }

    #[test]
    fn declarative_verdict_for_clean_merges() {
        // A star with single non-key attrs merges to NNA-only.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("R", vec![attr("R.K")], &["R.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("S", vec![attr("S.K"), attr("S.V")], &["S.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("R", &["R.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("S", &["S.K", "S.V"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("S", &["S.K"], "R", &["R.K"]))
            .unwrap();
        let mut m = Merge::plan(&rs, &["R", "S"], "M").unwrap();
        m.remove_all_removable().unwrap();
        let report = MergeReport::new(&m);
        assert!(report.fully_declarative());
        assert!(report.to_string().contains("declarative-only"));
    }
}
