//! The relation-merging technique of Markowitz (ICDE 1992).
//!
//! This crate implements the paper's contribution on top of the
//! `relmerge-relational` substrate:
//!
//! * **key-relations** — Definition 3.1, with Proposition 3.1's syntactic
//!   characterization via `Refkey*` ([`keyrel`]);
//! * the **`Merge(R̄)` procedure** — Definition 4.1, producing the merged
//!   schema `RS′ = (R′, F′ ∪ I′ ∪ N′)` and the state mappings η / η′
//!   ([`merge`]);
//! * the **`Remove(Yi)` procedure** — Definitions 4.2/4.3, dropping
//!   redundant attributes with the state mappings μ / μ′ ([`remove`]);
//! * **information-capacity** checking — Definition 2.1, machine-checking
//!   Propositions 4.1 and 4.2 on concrete states ([`capacity`]);
//! * **DBMS applicability conditions** — Propositions 5.1 and 5.2
//!   ([`conditions`]);
//! * a **merge advisor** — the SDT tool's automated merging option,
//!   constrained by DBMS capability profiles ([`advisor`]).
//!
//! The typical pipeline:
//!
//! ```text
//! RelationalSchema ──Merge::plan──▶ Merged ──remove_all_removable──▶ Merged
//!        │                            │  apply (η∘μ)                  │
//!        ▼                            ▼                               ▼
//!  DatabaseState ────────────▶ merged DatabaseState ◀──invert (μ′∘η′)─┘
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod capacity;
pub mod conditions;
pub mod keyrel;
pub mod merge;
pub mod pipeline;
pub mod remove;
pub mod report;

pub use advisor::{Advisor, AdvisorConfig, AppliedMerge, MergeProposal};
pub use capacity::{check_both, check_forward, check_proposition_4_1, CapacityReport};
pub use conditions::{
    maximal_merge_sets, prop51_inds_key_based, prop51_keys_non_null, prop52_nna_only, Prop52Failure,
};
pub use keyrel::{find_key_relation, is_key_relation_semantically, KeyRelationSpec};
pub use merge::{Merge, MergeGroup, MergeOptions, Merged};
pub use pipeline::MergePipeline;
pub use remove::NotRemovable;
pub use report::MergeReport;
