//! Syntactic applicability conditions for commercial DBMSs
//! (Propositions 5.1 and 5.2).
//!
//! These predicates are evaluated on the *input* schema and merge set,
//! before `Merge` runs — they predict properties of the output:
//!
//! * [`prop51_inds_key_based`]: whether `I′` will contain only key-based
//!   inclusion dependencies (required by DBMSs without trigger/rule
//!   mechanisms, e.g. DB2);
//! * [`prop51_keys_non_null`]: whether every key attribute of `Rm` will be
//!   nulls-not-allowed (required by DBMSs that treat all nulls as
//!   identical, e.g. SYBASE, INGRES);
//! * [`prop52_nna_only`]: whether, after removing all removable attributes,
//!   `N″` will consist only of declaratively-supported nulls-not-allowed
//!   constraints.

use relmerge_relational::ind::refkey_star;
use relmerge_relational::{RelationScheme, RelationalSchema, Result};

use crate::keyrel::find_key_relation;

fn member_schemes<'a>(
    schema: &'a RelationalSchema,
    members: &[&str],
) -> Result<Vec<&'a RelationScheme>> {
    members.iter().map(|m| schema.scheme_required(m)).collect()
}

/// Proposition 5.1(i): `I′` contains only key-based inclusion dependencies
/// iff every member that is not a key-relation is not the target of an
/// inclusion dependency from *outside* the merge set.
///
/// (An external `Rj[Z] ⊆ Ri[Ki]` survives merging as `Rj[Z] ⊆ Rm[Ki]`,
/// and `Ki ≠ Km` is not `Rm`'s primary key — the Figure 4 situation with
/// `ASSIST[A.C.NR] ⊆ COURSE′[O.C.NR]`.)
pub fn prop51_inds_key_based(schema: &RelationalSchema, members: &[&str]) -> Result<bool> {
    let schemes = member_schemes(schema, members)?;
    let key_rel = find_key_relation(schema, &schemes).map(|s| s.name().to_owned());
    Ok(schemes.iter().all(|ri| {
        if Some(ri.name()) == key_rel.as_deref() {
            return true;
        }
        !schema
            .inds()
            .iter()
            .any(|ind| ind.rhs_rel == ri.name() && !members.contains(&ind.lhs_rel.as_str()))
    }))
}

/// Proposition 5.1(ii): the key attributes of `Rm` are all nulls-not-allowed
/// iff every member that is not a key-relation has a *unique* (primary) key
/// — an alternative candidate key of a non-key-relation member becomes a
/// nullable candidate key of `Rm`.
pub fn prop51_keys_non_null(schema: &RelationalSchema, members: &[&str]) -> Result<bool> {
    let schemes = member_schemes(schema, members)?;
    let key_rel = find_key_relation(schema, &schemes).map(|s| s.name().to_owned());
    Ok(schemes
        .iter()
        .all(|ri| Some(ri.name()) == key_rel.as_deref() || ri.candidate_keys().len() == 1))
}

/// A single failed condition of Proposition 5.2, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prop52Failure {
    /// The member the condition failed for.
    pub member: String,
    /// Which of conditions (1)–(4) failed.
    pub condition: u8,
    /// Human-readable explanation.
    pub detail: String,
}

/// Proposition 5.2: after merging and removing every removable attribute,
/// `N″` contains only nulls-not-allowed constraints **if** `R̄` contains a
/// scheme `Rk` such that every other member `Ri` satisfies:
///
/// 1. `Ri[Ki] ⊆ Rk[Kk] ∈ I` (a *direct* key-to-key dependency on `Rk`);
/// 2. `|Xi − Ki| = 1` (exactly one non-key attribute);
/// 3. `Ri` is not the target of any inclusion dependency;
/// 4. beyond `Ri[Ki] ⊆ Rk[Kk]`, `Ri` appears only on the left of
///    dependencies into schemes outside `R̄`, and whenever `Ri[Ki] ⊆ Rj[Kj]`
///    then also `Rk[Kk] ⊆ Rj[Kj]`.
///
/// Returns the empty vector when the conditions hold (for *some* choice of
/// `Rk` — the key-relation found by Proposition 3.1); otherwise the list of
/// failures for the best candidate.
pub fn prop52_nna_only(schema: &RelationalSchema, members: &[&str]) -> Result<Vec<Prop52Failure>> {
    let schemes = member_schemes(schema, members)?;
    let Some(rk) = find_key_relation(schema, &schemes) else {
        return Ok(vec![Prop52Failure {
            member: members.join(","),
            condition: 1,
            detail: "merge set contains no key-relation Rk".to_owned(),
        }]);
    };
    let kk: Vec<&str> = rk.primary_key();
    let mut failures = Vec::new();
    for ri in schemes.iter().filter(|s| s.name() != rk.name()) {
        let ki: Vec<&str> = ri.primary_key();
        // (1) Direct Ri[Ki] ⊆ Rk[Kk].
        let direct = schema.inds().iter().any(|ind| {
            ind.lhs_rel == ri.name()
                && ind.rhs_rel == rk.name()
                && same_set_s(&ind.lhs_attrs, &ki)
                && same_set_s(&ind.rhs_attrs, &kk)
        });
        if !direct {
            failures.push(Prop52Failure {
                member: ri.name().to_owned(),
                condition: 1,
                detail: format!(
                    "no direct inclusion dependency {}[{}] ⊆ {}[{}]",
                    ri.name(),
                    ki.join(","),
                    rk.name(),
                    kk.join(",")
                ),
            });
        }
        // (2) Exactly one non-primary-key attribute.
        let non_key = ri.attrs().len() - ki.len();
        if non_key != 1 {
            failures.push(Prop52Failure {
                member: ri.name().to_owned(),
                condition: 2,
                detail: format!("{non_key} non-key attributes (need exactly 1)"),
            });
        }
        // (3) Ri is not the target of any inclusion dependency.
        if let Some(ind) = schema.inds().iter().find(|ind| ind.rhs_rel == ri.name()) {
            failures.push(Prop52Failure {
                member: ri.name().to_owned(),
                condition: 3,
                detail: format!("targeted by {ind}"),
            });
        }
        // (4) Other appearances of Ri: only LHS of dependencies into schemes
        // outside R̄; and if Ri[Ki] ⊆ Rj[Kj] then Rk[Kk] ⊆ Rj[Kj] too.
        for ind in schema.inds().iter().filter(|i| i.lhs_rel == ri.name()) {
            if ind.rhs_rel == rk.name() && same_set_s(&ind.rhs_attrs, &kk) {
                continue; // the condition-(1) dependency itself
            }
            if members.contains(&ind.rhs_rel.as_str()) {
                failures.push(Prop52Failure {
                    member: ri.name().to_owned(),
                    condition: 4,
                    detail: format!("{ind} stays inside the merge set"),
                });
                continue;
            }
            if same_set_s(&ind.lhs_attrs, &ki) {
                let shared = schema.inds().iter().any(|other| {
                    other.lhs_rel == rk.name()
                        && other.rhs_rel == ind.rhs_rel
                        && same_set_s(&other.lhs_attrs, &kk)
                        && other.rhs_attrs == ind.rhs_attrs
                });
                if !shared {
                    failures.push(Prop52Failure {
                        member: ri.name().to_owned(),
                        condition: 4,
                        detail: format!(
                            "{ind} has no matching dependency from {}[{}]",
                            rk.name(),
                            kk.join(",")
                        ),
                    });
                }
            }
        }
    }
    Ok(failures)
}

/// The key-relation reachability structure used by the merge advisor: all
/// maximal merge sets rooted at each scheme (the scheme plus its
/// `Refkey*` closure within the whole schema).
#[must_use]
pub fn maximal_merge_sets(schema: &RelationalSchema) -> Vec<Vec<String>> {
    let all: Vec<&RelationScheme> = schema.schemes().iter().collect();
    let mut out = Vec::new();
    for root in &all {
        let star = refkey_star(root, &all, schema.inds());
        if star.is_empty() {
            continue;
        }
        let mut set: Vec<String> = vec![root.name().to_owned()];
        set.extend(star.iter().map(|s| s.name().to_owned()));
        out.push(set);
    }
    out
}

fn same_set_s(a: &[String], b: &[&str]) -> bool {
    a.len() == b.len() && a.iter().all(|x| b.contains(&x.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::Merge;
    use relmerge_relational::{Attribute, Domain, InclusionDep, NullConstraint};

    fn attr(name: &str) -> Attribute {
        Attribute::new(name, Domain::Int)
    }

    fn scheme(name: &str, attrs: &[&str], key: &[&str]) -> RelationScheme {
        RelationScheme::new(name, attrs.iter().map(|a| attr(a)).collect(), key).unwrap()
    }

    fn nna_all(rs: &mut RelationalSchema) {
        let pairs: Vec<(String, Vec<String>)> = rs
            .schemes()
            .iter()
            .map(|s| {
                (
                    s.name().to_owned(),
                    s.attr_names().iter().map(|a| (*a).to_owned()).collect(),
                )
            })
            .collect();
        for (name, attrs) in pairs {
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            rs.add_null_constraint(NullConstraint::nna(&name, &refs))
                .unwrap();
        }
    }

    /// COURSE ← {OFFER, TEACH, ASSIST} star (the Figure 8(iv) shape): every
    /// relationship relation references COURSE directly.
    fn star_schema() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("COURSE", &["C.NR"], &["C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("OFFER", &["O.C.NR", "O.D"], &["O.C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("TEACH", &["T.C.NR", "T.F"], &["T.C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("DEPT", &["D.N"], &["D.N"])).unwrap();
        nna_all(&mut rs);
        rs.add_ind(InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("TEACH", &["T.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("OFFER", &["O.D"], "DEPT", &["D.N"]))
            .unwrap();
        rs
    }

    /// The Figure 3/4 chain: TEACH references OFFER, not COURSE.
    fn chain_schema() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("COURSE", &["C.NR"], &["C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("OFFER", &["O.C.NR", "O.D"], &["O.C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("TEACH", &["T.C.NR", "T.F"], &["T.C.NR"]))
            .unwrap();
        rs.add_scheme(scheme("ASSIST", &["A.C.NR", "A.S"], &["A.C.NR"]))
            .unwrap();
        nna_all(&mut rs);
        rs.add_ind(InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new(
            "TEACH",
            &["T.C.NR"],
            "OFFER",
            &["O.C.NR"],
        ))
        .unwrap();
        rs.add_ind(InclusionDep::new(
            "ASSIST",
            &["A.C.NR"],
            "OFFER",
            &["O.C.NR"],
        ))
        .unwrap();
        rs
    }

    #[test]
    fn prop51_i_detects_external_reference() {
        let rs = chain_schema();
        // Merging {COURSE, OFFER, TEACH} leaves ASSIST pointing at OFFER's
        // key: non-key-based IND in I′ (the Figure 4 situation).
        assert!(!prop51_inds_key_based(&rs, &["COURSE", "OFFER", "TEACH"]).unwrap());
        // Merging all four removes the external reference.
        assert!(prop51_inds_key_based(&rs, &["COURSE", "OFFER", "TEACH", "ASSIST"]).unwrap());
        // And the prediction matches Merge's actual output.
        let m3 = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH"], "M3").unwrap();
        assert!(!m3.schema().key_based_inds_only());
        let m4 = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH", "ASSIST"], "M4").unwrap();
        assert!(m4.schema().key_based_inds_only());
    }

    #[test]
    fn prop51_ii_unique_keys() {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("A", &["A.K"], &["A.K"])).unwrap();
        rs.add_scheme(
            RelationScheme::with_candidate_keys(
                "B",
                vec![attr("B.K"), attr("B.ALT")],
                &[&["B.K"], &["B.ALT"]],
            )
            .unwrap(),
        )
        .unwrap();
        nna_all(&mut rs);
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
            .unwrap();
        // B has an alternative candidate key → nullable key in Rm.
        assert!(!prop51_keys_non_null(&rs, &["A", "B"]).unwrap());
        // Matches the actual merge output: B.ALT is a declared candidate
        // key of Rm but is not NNA.
        let m = Merge::plan(&rs, &["A", "B"], "M").unwrap();
        let nullable_key_attr = m
            .merged_scheme()
            .candidate_keys()
            .iter()
            .flatten()
            .any(|k| !m.schema().attr_not_null("M", k));
        assert!(nullable_key_attr);
    }

    #[test]
    fn prop52_star_passes_chain_fails() {
        let star = star_schema();
        let failures = prop52_nna_only(&star, &["COURSE", "OFFER", "TEACH"]).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        // Verify against the actual pipeline: merge, remove everything,
        // check N″ is NNA-only.
        let mut m = Merge::plan(&star, &["COURSE", "OFFER", "TEACH"], "CM").unwrap();
        m.remove_all_removable().unwrap();
        assert!(m.generated_null_constraints().iter().all(|c| c.is_nna()));

        let chain = chain_schema();
        let failures = prop52_nna_only(&chain, &["COURSE", "OFFER", "TEACH", "ASSIST"]).unwrap();
        // TEACH and ASSIST reference OFFER, not COURSE (condition 1), and
        // OFFER is targeted (condition 3).
        assert!(!failures.is_empty());
        assert!(failures
            .iter()
            .any(|f| f.condition == 1 && f.member == "TEACH"));
        assert!(failures
            .iter()
            .any(|f| f.condition == 3 && f.member == "OFFER"));
        // Matches the pipeline: Figure 6 ends with null-existence
        // constraints that are not NNA.
        let mut m = Merge::plan(&chain, &["COURSE", "OFFER", "TEACH", "ASSIST"], "CM").unwrap();
        m.remove_all_removable().unwrap();
        assert!(!m.generated_null_constraints().iter().all(|c| c.is_nna()));
    }

    #[test]
    fn prop52_condition_2_needs_single_non_key_attr() {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("A", &["A.K"], &["A.K"])).unwrap();
        rs.add_scheme(scheme("B", &["B.K", "B.V1", "B.V2"], &["B.K"]))
            .unwrap();
        nna_all(&mut rs);
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
            .unwrap();
        let failures = prop52_nna_only(&rs, &["A", "B"]).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].condition, 2);
        // Indeed, after removal the NS({B.V1, B.V2}) constraint survives.
        let mut m = Merge::plan(&rs, &["A", "B"], "M").unwrap();
        m.remove_all_removable().unwrap();
        assert!(!m.generated_null_constraints().iter().all(|c| c.is_nna()));
    }

    #[test]
    fn prop52_condition_4_shared_external_reference() {
        // B[B.K] ⊆ EXT[E.K] without A[A.K] ⊆ EXT[E.K]: condition 4 fails.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("EXT", &["E.K"], &["E.K"])).unwrap();
        rs.add_scheme(scheme("A", &["A.K"], &["A.K"])).unwrap();
        rs.add_scheme(scheme("B", &["B.K", "B.V"], &["B.K"]))
            .unwrap();
        nna_all(&mut rs);
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("B", &["B.K"], "EXT", &["E.K"]))
            .unwrap();
        let failures = prop52_nna_only(&rs, &["A", "B"]).unwrap();
        assert!(failures.iter().any(|f| f.condition == 4));
        let mut rs2 = rs.clone();
        rs2.add_ind(InclusionDep::new("A", &["A.K"], "EXT", &["E.K"]))
            .unwrap();
        assert!(prop52_nna_only(&rs2, &["A", "B"]).unwrap().is_empty());
    }

    #[test]
    fn maximal_merge_sets_found() {
        let rs = chain_schema();
        let sets = maximal_merge_sets(&rs);
        // COURSE reaches everything; OFFER reaches TEACH and ASSIST.
        assert!(sets.iter().any(|s| s.len() == 4 && s[0] == "COURSE"));
        assert!(sets.iter().any(|s| s.len() == 3 && s[0] == "OFFER"));
    }
}
