//! Information-capacity equivalence checking (Definition 2.1).
//!
//! Information-capacity equivalence of two schemas under a pair of state
//! mappings (φ, φ′) demands: both mappings send consistent states to
//! consistent states, both compositions are the identity, and both mappings
//! preserve data values. Proving this for arbitrary schemas is out of reach;
//! what the paper's Propositions 4.1 and 4.2 claim is that the *specific*
//! mappings η/η′ and μ/μ′ witness it. This module machine-checks those
//! claims on concrete states: a [`CapacityReport`] records every condition
//! for one state, and property tests drive it with randomly generated
//! consistent states.

use relmerge_obs as obs;
use relmerge_relational::{DatabaseState, Result};

use crate::merge::Merged;

/// The outcome of checking Definition 2.1's conditions on one state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityReport {
    /// Condition 1 (forward): φ maps the consistent input state to a
    /// consistent state of the target schema.
    pub forward_consistent: bool,
    /// Condition 3 (forward): φ′(φ(r)) = r.
    pub forward_round_trip: bool,
    /// Condition 4 (forward): values of φ(r) are included in r.
    pub forward_values_preserved: bool,
    /// Condition 2 (backward): φ′ maps the consistent target state to a
    /// consistent source state. `None` when no target state was checked.
    pub backward_consistent: Option<bool>,
    /// Condition 3 (backward): φ(φ′(r′)) = r′.
    pub backward_round_trip: Option<bool>,
    /// Condition 4 (backward): values of φ′(r′) are included in r′.
    pub backward_values_preserved: Option<bool>,
}

impl CapacityReport {
    /// Whether every checked condition holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.forward_consistent
            && self.forward_round_trip
            && self.forward_values_preserved
            && self.backward_consistent.unwrap_or(true)
            && self.backward_round_trip.unwrap_or(true)
            && self.backward_values_preserved.unwrap_or(true)
    }
}

/// Checks the forward direction of Definition 2.1 for a `Merge`/`Remove`
/// pipeline on one consistent state `r` of the original schema:
/// η(r) consistent, η′(η(r)) = r, and values preserved.
pub fn check_forward(merged: &Merged, state: &DatabaseState) -> Result<CapacityReport> {
    let mut span = obs::span("core.capacity.check_forward").field("merged", merged.merged_name());
    let image = merged.apply(state)?;
    let forward_consistent = image.is_consistent(merged.schema())?;
    let back = merged.invert(&image)?;
    let forward_round_trip = back == *state;
    let forward_values_preserved = image.values_included_in(state);
    span.add_field(
        "holds",
        forward_consistent && forward_round_trip && forward_values_preserved,
    );
    obs::global().counter("core.capacity.checks").inc();
    Ok(CapacityReport {
        forward_consistent,
        forward_round_trip,
        forward_values_preserved,
        backward_consistent: None,
        backward_round_trip: None,
        backward_values_preserved: None,
    })
}

/// Checks both directions: the forward direction on `state` (a consistent
/// state of the original schema) and the backward direction on
/// `merged_state` (a consistent state of the merged schema):
/// η′(r′) consistent, η(η′(r′)) = r′, values preserved.
pub fn check_both(
    merged: &Merged,
    state: &DatabaseState,
    merged_state: &DatabaseState,
) -> Result<CapacityReport> {
    let mut report = check_forward(merged, state)?;
    let back = merged.invert(merged_state)?;
    report.backward_consistent = Some(back.is_consistent(merged.original_schema())?);
    let forward_again = merged.apply(&back)?;
    report.backward_round_trip = Some(&forward_again == merged_state);
    report.backward_values_preserved = Some(back.values_included_in(merged_state));
    Ok(report)
}

/// Convenience: forward equivalence check plus BCNF preservation — the full
/// statement of Proposition 4.1 on one state.
pub fn check_proposition_4_1(merged: &Merged, state: &DatabaseState) -> Result<bool> {
    let report = check_forward(merged, state)?;
    Ok(report.holds() && merged.schema().is_bcnf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::Merge;
    use relmerge_relational::{
        Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Tuple,
        Value,
    };

    fn schema() -> RelationalSchema {
        let a = |n: &str| Attribute::new(n, Domain::Int);
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new("EMP", vec![a("E.SSN"), a("E.GRADE")], &["E.SSN"]).unwrap(),
        )
        .unwrap();
        rs.add_scheme(RelationScheme::new("MGR", vec![a("M.SSN"), a("M.NR")], &["M.SSN"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("EMP", &["E.SSN", "E.GRADE"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("MGR", &["M.SSN", "M.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("MGR", &["M.SSN"], "EMP", &["E.SSN"]))
            .unwrap();
        rs
    }

    #[test]
    fn forward_check_passes_on_consistent_state() {
        let rs = schema();
        let m = Merge::plan(&rs, &["EMP", "MGR"], "EMP_M").unwrap();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("EMP", Tuple::new([Value::Int(1), Value::Int(5)]))
            .unwrap();
        st.insert("EMP", Tuple::new([Value::Int(2), Value::Int(6)]))
            .unwrap();
        st.insert("MGR", Tuple::new([Value::Int(1), Value::Int(99)]))
            .unwrap();
        let report = check_forward(&m, &st).unwrap();
        assert!(report.holds(), "{report:?}");
        assert!(check_proposition_4_1(&m, &st).unwrap());
    }

    #[test]
    fn backward_check_on_a_merged_state() {
        let rs = schema();
        let m = Merge::plan(&rs, &["EMP", "MGR"], "EMP_M").unwrap();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("EMP", Tuple::new([Value::Int(1), Value::Int(5)]))
            .unwrap();
        st.insert("MGR", Tuple::new([Value::Int(1), Value::Int(42)]))
            .unwrap();
        // Build a consistent merged state directly: one merged tuple plus an
        // employee with no manager row (nulls in the MGR part).
        let merged_state = {
            let mut s = m.apply(&st).unwrap();
            s.relation_mut("EMP_M")
                .unwrap()
                .insert(Tuple::new([
                    Value::Int(7),
                    Value::Int(3),
                    Value::Null,
                    Value::Null,
                ]))
                .unwrap();
            s
        };
        assert!(merged_state.is_consistent(m.schema()).unwrap());
        let report = check_both(&m, &st, &merged_state).unwrap();
        assert!(report.holds(), "{report:?}");
    }

    #[test]
    fn report_detects_a_broken_mapping() {
        // Feed check_both a merged state whose values round-trip fine but
        // whose claimed "source" state differs, to show the identity check
        // actually bites: use a *different* source state than the one the
        // merged state came from.
        let rs = schema();
        let m = Merge::plan(&rs, &["EMP", "MGR"], "EMP_M").unwrap();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("EMP", Tuple::new([Value::Int(1), Value::Int(5)]))
            .unwrap();
        let report = check_forward(&m, &st).unwrap();
        assert!(report.holds());
        // Tamper: a merged state violating a null constraint is simply not
        // consistent, and the backward check flags the (would-be) image.
        let mut bad = m.apply(&st).unwrap();
        bad.relation_mut("EMP_M")
            .unwrap()
            .insert(Tuple::new([
                Value::Int(2),
                Value::Int(5),
                Value::Int(2),
                Value::Null, // violates NS(M.SSN, M.NR)
            ]))
            .unwrap();
        assert!(!bad.is_consistent(m.schema()).unwrap());
        // η(η′(bad)) ≠ bad: the partly-null MGR part cannot be rebuilt.
        let report = check_both(&m, &st, &bad).unwrap();
        assert_eq!(report.backward_round_trip, Some(false));
    }
}
