//! The workload profiler: per-query-shape aggregation of execution cost.
//!
//! The engine describes each executed query as a [`QueryShape`] — a stable
//! fingerprint plus the join edges behind it — and submits the measured
//! [`QueryCost`] (and per-edge [`EdgeCost`] attribution) to a [`Profiler`].
//! The profiler folds every execution of the same fingerprint into one
//! [`FingerprintProfile`]: per-operator totals, peak intermediate bytes,
//! and a log2 wall-time histogram, all with the same snapshot/diff/merge
//! semantics as the metric [`Registry`](crate::Registry).
//!
//! [`report`] then flattens a [`ProfileSnapshot`] into the hot-join
//! ranking the merge advisor consumes: one record per distinct
//! `(left relation, right relation, probe attrs)` edge, ranked by the
//! cumulative probe + scan cost spent on that edge across the whole
//! workload. Everything is deterministic: fingerprints order the
//! snapshot, and the ranking breaks cost ties lexicographically.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::export::json_escape;
use crate::metrics::HistogramSnapshot;

/// One join edge of a query shape: the relation pair and the attributes
/// the right side is probed (or hash-built) on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinEdge {
    /// The relation the probe side's attributes come from.
    pub left: String,
    /// The relation being probed / built.
    pub right: String,
    /// The right-side attributes the join matches on.
    pub probe_attrs: Vec<String>,
}

impl JoinEdge {
    /// `LEFT->RIGHT[a,b]` — the edge's display form.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}->{}[{}]",
            self.left,
            self.right,
            self.probe_attrs.join(",")
        )
    }
}

/// The canonical identity of one query shape, as computed by the engine's
/// planner: the fingerprint plus enough structure for reports to stay
/// human-readable without re-planning anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryShape {
    /// The canonical shape hash (root, access, join edges, predicate
    /// structure, chosen strategies).
    pub fingerprint: u64,
    /// Human-readable shape label, e.g. `COURSE + 3 joins`.
    pub label: String,
    /// The root relation.
    pub root: String,
    /// The join edges, in plan order.
    pub edges: Vec<JoinEdge>,
}

/// The measured totals of one query execution (or, inside a
/// [`FingerprintProfile`], the fold of many executions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Rows read by scans (root, build-side, and scan-probe fallbacks).
    pub rows_scanned: u64,
    /// Index probes.
    pub index_probes: u64,
    /// Transient hash builds.
    pub hash_builds: u64,
    /// Rows in the final result.
    pub rows_out: u64,
    /// Morsels executed.
    pub morsels: u64,
    /// Total intermediate bytes materialized (slot rows, output rows,
    /// hash builds). Summed when folded.
    pub intermediate_bytes: u64,
    /// Peak per-operator intermediate bytes. Maxed, not summed, when
    /// folded — the high-water mark across executions.
    pub peak_intermediate_bytes: u64,
    /// Build-side cache hits.
    pub build_cache_hits: u64,
    /// Build-side cache misses.
    pub build_cache_misses: u64,
    /// Bytes evicted from the build cache by this query's inserts.
    pub build_cache_evicted_bytes: u64,
    /// Wall time (ns).
    pub wall_ns: u64,
}

impl QueryCost {
    /// Folds one execution's cost into this aggregate: every field sums
    /// except `peak_intermediate_bytes`, which takes the max.
    pub fn fold(&mut self, other: &QueryCost) {
        self.rows_scanned += other.rows_scanned;
        self.index_probes += other.index_probes;
        self.hash_builds += other.hash_builds;
        self.rows_out += other.rows_out;
        self.morsels += other.morsels;
        self.intermediate_bytes += other.intermediate_bytes;
        self.peak_intermediate_bytes = self
            .peak_intermediate_bytes
            .max(other.peak_intermediate_bytes);
        self.build_cache_hits += other.build_cache_hits;
        self.build_cache_misses += other.build_cache_misses;
        self.build_cache_evicted_bytes += other.build_cache_evicted_bytes;
        self.wall_ns += other.wall_ns;
    }
}

/// Per-join-edge cost attribution for one execution (or the fold of
/// many). Indexed parallel to [`QueryShape::edges`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeCost {
    /// Index probes charged to this edge.
    pub index_probes: u64,
    /// Rows scanned on this edge (build-side scans, scan-probe
    /// fallbacks).
    pub rows_scanned: u64,
    /// Transient hash builds on this edge.
    pub hash_builds: u64,
    /// Rows the edge emitted.
    pub rows_out: u64,
    /// Intermediate bytes the edge materialized (slot rows + builds).
    pub intermediate_bytes: u64,
}

impl EdgeCost {
    fn fold(&mut self, other: &EdgeCost) {
        self.index_probes += other.index_probes;
        self.rows_scanned += other.rows_scanned;
        self.hash_builds += other.hash_builds;
        self.rows_out += other.rows_out;
        self.intermediate_bytes += other.intermediate_bytes;
    }
}

/// Everything the profiler knows about one query fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintProfile {
    /// The shape this profile aggregates.
    pub shape: QueryShape,
    /// Executions folded in.
    pub executions: u64,
    /// Summed cost (peak bytes maxed).
    pub totals: QueryCost,
    /// Log2 histogram of per-execution wall time (ns).
    pub latency: HistogramSnapshot,
    /// Summed per-edge cost, parallel to `shape.edges`.
    pub edge_costs: Vec<EdgeCost>,
}

impl FingerprintProfile {
    fn new(shape: QueryShape) -> Self {
        let edges = shape.edges.len();
        FingerprintProfile {
            shape,
            executions: 0,
            totals: QueryCost::default(),
            latency: HistogramSnapshot::default(),
            edge_costs: vec![EdgeCost::default(); edges],
        }
    }

    fn fold_execution(&mut self, cost: &QueryCost, edges: &[EdgeCost]) {
        self.executions += 1;
        self.totals.fold(cost);
        self.latency.record(cost.wall_ns);
        for (slot, e) in self.edge_costs.iter_mut().zip(edges) {
            slot.fold(e);
        }
    }

    fn fold_profile(&mut self, other: &FingerprintProfile) {
        self.executions += other.executions;
        self.totals.fold(&other.totals);
        self.latency.merge(&other.latency);
        for (slot, e) in self.edge_costs.iter_mut().zip(&other.edge_costs) {
            slot.fold(e);
        }
    }
}

/// The per-workload aggregator: folds every executed query into its
/// fingerprint's [`FingerprintProfile`]. One lives on each
/// `engine::Database` (shared by clones); the hot path is one mutex
/// acquisition plus integer folds — shape strings are only built for a
/// fingerprint's first execution.
#[derive(Debug, Default)]
pub struct Profiler {
    profiles: Mutex<BTreeMap<u64, FingerprintProfile>>,
}

impl Profiler {
    /// An empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Whether any fingerprint has been seen. Cheap pre-check for
    /// callers that build `shape` lazily.
    pub fn is_empty(&self) -> bool {
        self.profiles.lock().unwrap().is_empty()
    }

    /// Distinct fingerprints seen.
    pub fn len(&self) -> usize {
        self.profiles.lock().unwrap().len()
    }

    /// Folds one execution into `shape`'s profile. `edges` attributes
    /// cost per join edge and must be parallel to `shape.edges`.
    pub fn record(&self, shape: &QueryShape, cost: &QueryCost, edges: &[EdgeCost]) {
        debug_assert_eq!(shape.edges.len(), edges.len(), "edge attribution shape");
        let mut profiles = self.profiles.lock().unwrap();
        profiles
            .entry(shape.fingerprint)
            .or_insert_with(|| FingerprintProfile::new(shape.clone()))
            .fold_execution(cost, edges);
    }

    /// A point-in-time copy of every fingerprint's profile, ordered by
    /// fingerprint (deterministic for equal workloads).
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            queries: self.profiles.lock().unwrap().clone(),
        }
    }

    /// Drains the profiler, returning the final snapshot.
    pub fn take(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            queries: std::mem::take(&mut *self.profiles.lock().unwrap()),
        }
    }
}

/// Point-in-time state of a [`Profiler`]: every fingerprint's profile,
/// keyed (and therefore deterministically ordered) by fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Fingerprint → aggregated profile.
    pub queries: BTreeMap<u64, FingerprintProfile>,
}

impl ProfileSnapshot {
    /// Folds `other` into `self` (matching fingerprints fold field-wise;
    /// new fingerprints are inserted) — the same semantics as
    /// [`Snapshot::merge`](crate::Snapshot::merge).
    pub fn merge(&mut self, other: &ProfileSnapshot) {
        for (fp, profile) in &other.queries {
            match self.queries.get_mut(fp) {
                Some(existing) => existing.fold_profile(profile),
                None => {
                    self.queries.insert(*fp, profile.clone());
                }
            }
        }
    }

    /// The activity recorded since `baseline` (saturating; fingerprints
    /// absent from the baseline pass through whole).
    #[must_use]
    pub fn diff(&self, baseline: &ProfileSnapshot) -> ProfileSnapshot {
        let mut queries = BTreeMap::new();
        for (fp, profile) in &self.queries {
            let Some(base) = baseline.queries.get(fp) else {
                queries.insert(*fp, profile.clone());
                continue;
            };
            let executions = profile.executions.saturating_sub(base.executions);
            if executions == 0 {
                continue;
            }
            let mut diffed = profile.clone();
            diffed.executions = executions;
            diffed.totals = diff_cost(&profile.totals, &base.totals);
            diffed.latency = profile.latency.diff(&base.latency);
            diffed.edge_costs = profile
                .edge_costs
                .iter()
                .zip(&base.edge_costs)
                .map(|(a, b)| EdgeCost {
                    index_probes: a.index_probes.saturating_sub(b.index_probes),
                    rows_scanned: a.rows_scanned.saturating_sub(b.rows_scanned),
                    hash_builds: a.hash_builds.saturating_sub(b.hash_builds),
                    rows_out: a.rows_out.saturating_sub(b.rows_out),
                    intermediate_bytes: a.intermediate_bytes.saturating_sub(b.intermediate_bytes),
                })
                .collect();
            queries.insert(*fp, diffed);
        }
        ProfileSnapshot { queries }
    }

    /// Total executions across every fingerprint.
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.queries.values().map(|p| p.executions).sum()
    }
}

fn diff_cost(a: &QueryCost, b: &QueryCost) -> QueryCost {
    QueryCost {
        rows_scanned: a.rows_scanned.saturating_sub(b.rows_scanned),
        index_probes: a.index_probes.saturating_sub(b.index_probes),
        hash_builds: a.hash_builds.saturating_sub(b.hash_builds),
        rows_out: a.rows_out.saturating_sub(b.rows_out),
        morsels: a.morsels.saturating_sub(b.morsels),
        intermediate_bytes: a.intermediate_bytes.saturating_sub(b.intermediate_bytes),
        // A high-water mark has no meaningful difference; keep the
        // current peak.
        peak_intermediate_bytes: a.peak_intermediate_bytes,
        build_cache_hits: a.build_cache_hits.saturating_sub(b.build_cache_hits),
        build_cache_misses: a.build_cache_misses.saturating_sub(b.build_cache_misses),
        build_cache_evicted_bytes: a
            .build_cache_evicted_bytes
            .saturating_sub(b.build_cache_evicted_bytes),
        wall_ns: a.wall_ns.saturating_sub(b.wall_ns),
    }
}

/// One record of the hot-join ranking: a distinct join edge and the
/// cumulative access cost the workload spent on it. This is exactly the
/// `(relation pair, probe attrs, cumulative cost)` input the merge
/// advisor consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotJoin {
    /// The join edge (relation pair + probe attrs).
    pub edge: JoinEdge,
    /// Executions that exercised this edge.
    pub executions: u64,
    /// Index probes spent on the edge.
    pub index_probes: u64,
    /// Rows scanned on the edge.
    pub rows_scanned: u64,
    /// Transient hash builds on the edge.
    pub hash_builds: u64,
    /// Rows the edge emitted.
    pub rows_out: u64,
    /// Intermediate bytes the edge materialized.
    pub intermediate_bytes: u64,
    /// The ranking key: `index_probes + rows_scanned` — the access work
    /// merging this edge away would eliminate.
    pub cumulative_cost: u64,
}

/// Ranks every distinct join edge in `snapshot` by cumulative access
/// cost (probes + scanned rows), descending; ties break lexicographically
/// on the edge, so equal workloads produce identical rankings.
#[must_use]
pub fn report(snapshot: &ProfileSnapshot) -> Vec<HotJoin> {
    let mut by_edge: BTreeMap<JoinEdge, HotJoin> = BTreeMap::new();
    for profile in snapshot.queries.values() {
        for (edge, cost) in profile.shape.edges.iter().zip(&profile.edge_costs) {
            let entry = by_edge.entry(edge.clone()).or_insert_with(|| HotJoin {
                edge: edge.clone(),
                executions: 0,
                index_probes: 0,
                rows_scanned: 0,
                hash_builds: 0,
                rows_out: 0,
                intermediate_bytes: 0,
                cumulative_cost: 0,
            });
            entry.executions += profile.executions;
            entry.index_probes += cost.index_probes;
            entry.rows_scanned += cost.rows_scanned;
            entry.hash_builds += cost.hash_builds;
            entry.rows_out += cost.rows_out;
            entry.intermediate_bytes += cost.intermediate_bytes;
        }
    }
    let mut out: Vec<HotJoin> = by_edge
        .into_values()
        .map(|mut h| {
            h.cumulative_cost = h.index_probes + h.rows_scanned;
            h
        })
        .collect();
    // BTreeMap iteration gave lexicographic edge order; the stable sort
    // keeps it as the tie-break under the cost ranking.
    out.sort_by_key(|h| std::cmp::Reverse(h.cumulative_cost));
    out
}

/// The report → advisor bridge: the hot-join ranking of a
/// [`ProfileSnapshot`], packaged with the aggregate queries a merge
/// advisor asks of it — which relations the workload joins at all, and
/// how much access cost it spent between any two of them. Deterministic
/// for a given snapshot (same ordering guarantees as [`report`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinEvidence {
    /// Every distinct join edge the workload exercised, hottest first
    /// (exactly [`report`]'s output).
    pub edges: Vec<HotJoin>,
}

impl JoinEvidence {
    /// Distills `snapshot` into ranked per-edge evidence.
    #[must_use]
    pub fn from_snapshot(snapshot: &ProfileSnapshot) -> Self {
        JoinEvidence {
            edges: report(snapshot),
        }
    }

    /// True when the workload exercised no join edge at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The summed cumulative cost (probes + scanned rows) of every edge.
    #[must_use]
    pub fn total_cost(&self) -> u64 {
        self.edges.iter().map(|h| h.cumulative_cost).sum()
    }

    /// The cumulative cost the workload spent joining `a` with `b`, in
    /// either direction, summed across all probe-attribute variants of
    /// the edge.
    #[must_use]
    pub fn cost_between(&self, a: &str, b: &str) -> u64 {
        self.edges
            .iter()
            .filter(|h| {
                (h.edge.left == a && h.edge.right == b) || (h.edge.left == b && h.edge.right == a)
            })
            .map(|h| h.cumulative_cost)
            .sum()
    }

    /// Every relation that appears on some join edge, sorted.
    #[must_use]
    pub fn relations(&self) -> std::collections::BTreeSet<&str> {
        self.edges
            .iter()
            .flat_map(|h| [h.edge.left.as_str(), h.edge.right.as_str()])
            .collect()
    }
}

/// Renders a [`ProfileSnapshot`] as aligned text, one block per
/// fingerprint, ordered by fingerprint.
#[must_use]
pub fn profile_to_text(snapshot: &ProfileSnapshot) -> String {
    let mut out = String::new();
    for profile in snapshot.queries.values() {
        let t = &profile.totals;
        let _ = writeln!(
            out,
            "fingerprint {:016x}  {}  executions={}",
            profile.shape.fingerprint, profile.shape.label, profile.executions
        );
        let _ = writeln!(
            out,
            "  probes={} scanned={} builds={} rows_out={} morsels={}",
            t.index_probes, t.rows_scanned, t.hash_builds, t.rows_out, t.morsels
        );
        let _ = writeln!(
            out,
            "  intermediate_bytes={} peak={} cache hit/miss={}/{} wall mean={}ns",
            t.intermediate_bytes,
            t.peak_intermediate_bytes,
            t.build_cache_hits,
            t.build_cache_misses,
            profile.latency.mean()
        );
        for (edge, cost) in profile.shape.edges.iter().zip(&profile.edge_costs) {
            let _ = writeln!(
                out,
                "  edge {}  probes={} scanned={} builds={} rows_out={} bytes={}",
                edge.label(),
                cost.index_probes,
                cost.rows_scanned,
                cost.hash_builds,
                cost.rows_out,
                cost.intermediate_bytes
            );
        }
    }
    out
}

/// Renders a [`ProfileSnapshot`] as stable JSON (fingerprint order), in
/// the same hand-rolled style as [`to_json`](crate::to_json).
#[must_use]
pub fn profile_to_json(snapshot: &ProfileSnapshot) -> String {
    let mut out = String::from("{\"queries\":[");
    for (i, profile) in snapshot.queries.values().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let t = &profile.totals;
        let _ = write!(
            out,
            "{{\"fingerprint\":\"{:016x}\",\"label\":\"{}\",\"root\":\"{}\",\
             \"executions\":{},\"rows_scanned\":{},\"index_probes\":{},\
             \"hash_builds\":{},\"rows_out\":{},\"morsels\":{},\
             \"intermediate_bytes\":{},\"peak_intermediate_bytes\":{},\
             \"build_cache_hits\":{},\"build_cache_misses\":{},\
             \"build_cache_evicted_bytes\":{},\"wall_ns\":{},\
             \"latency_mean_ns\":{},\"edges\":[",
            profile.shape.fingerprint,
            json_escape(&profile.shape.label),
            json_escape(&profile.shape.root),
            profile.executions,
            t.rows_scanned,
            t.index_probes,
            t.hash_builds,
            t.rows_out,
            t.morsels,
            t.intermediate_bytes,
            t.peak_intermediate_bytes,
            t.build_cache_hits,
            t.build_cache_misses,
            t.build_cache_evicted_bytes,
            t.wall_ns,
            profile.latency.mean(),
        );
        for (j, (edge, cost)) in profile
            .shape
            .edges
            .iter()
            .zip(&profile.edge_costs)
            .enumerate()
        {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"left\":\"{}\",\"right\":\"{}\",\"probe_attrs\":[{}],\
                 \"index_probes\":{},\"rows_scanned\":{},\"hash_builds\":{},\
                 \"rows_out\":{},\"intermediate_bytes\":{}}}",
                json_escape(&edge.left),
                json_escape(&edge.right),
                join_quoted(&edge.probe_attrs),
                cost.index_probes,
                cost.rows_scanned,
                cost.hash_builds,
                cost.rows_out,
                cost.intermediate_bytes
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders a hot-join ranking as aligned text, hottest first.
#[must_use]
pub fn report_to_text(report: &[HotJoin]) -> String {
    let mut out = String::new();
    for (rank, h) in report.iter().enumerate() {
        let _ = writeln!(
            out,
            "#{:<3} {}  cost={} (probes={} scanned={})  executions={} builds={} bytes={}",
            rank + 1,
            h.edge.label(),
            h.cumulative_cost,
            h.index_probes,
            h.rows_scanned,
            h.executions,
            h.hash_builds,
            h.intermediate_bytes
        );
    }
    out
}

/// Renders a hot-join ranking as stable JSON, hottest first — the
/// machine-readable contract with the merge advisor.
#[must_use]
pub fn report_to_json(report: &[HotJoin]) -> String {
    let mut out = String::from("{\"hot_joins\":[");
    for (i, h) in report.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"left\":\"{}\",\"right\":\"{}\",\"probe_attrs\":[{}],\
             \"cumulative_cost\":{},\"index_probes\":{},\"rows_scanned\":{},\
             \"hash_builds\":{},\"rows_out\":{},\"executions\":{},\
             \"intermediate_bytes\":{}}}",
            json_escape(&h.edge.left),
            json_escape(&h.edge.right),
            join_quoted(&h.edge.probe_attrs),
            h.cumulative_cost,
            h.index_probes,
            h.rows_scanned,
            h.hash_builds,
            h.rows_out,
            h.executions,
            h.intermediate_bytes
        );
    }
    out.push_str("]}");
    out
}

fn join_quoted(items: &[String]) -> String {
    items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(fp: u64) -> QueryShape {
        QueryShape {
            fingerprint: fp,
            label: format!("shape-{fp}"),
            root: "COURSE".to_owned(),
            edges: vec![
                JoinEdge {
                    left: "COURSE".to_owned(),
                    right: "OFFER".to_owned(),
                    probe_attrs: vec!["O.C.NR".to_owned()],
                },
                JoinEdge {
                    left: "OFFER".to_owned(),
                    right: "TEACH".to_owned(),
                    probe_attrs: vec!["T.C.NR".to_owned()],
                },
            ],
        }
    }

    fn cost(probes: u64, scanned: u64, bytes: u64, wall: u64) -> QueryCost {
        QueryCost {
            rows_scanned: scanned,
            index_probes: probes,
            hash_builds: 1,
            rows_out: 10,
            morsels: 2,
            intermediate_bytes: bytes,
            peak_intermediate_bytes: bytes / 2,
            build_cache_hits: 1,
            build_cache_misses: 0,
            build_cache_evicted_bytes: 0,
            wall_ns: wall,
        }
    }

    fn edges(probes: u64, scanned: u64) -> Vec<EdgeCost> {
        vec![
            EdgeCost {
                index_probes: probes,
                rows_scanned: 0,
                hash_builds: 0,
                rows_out: 10,
                intermediate_bytes: 160,
            },
            EdgeCost {
                index_probes: 0,
                rows_scanned: scanned,
                hash_builds: 1,
                rows_out: 10,
                intermediate_bytes: 320,
            },
        ]
    }

    #[test]
    fn profiler_folds_totals_and_peaks() {
        let p = Profiler::new();
        assert!(p.is_empty());
        p.record(&shape(7), &cost(4, 100, 1_000, 500), &edges(4, 100));
        p.record(&shape(7), &cost(6, 50, 400, 1_500), &edges(6, 50));
        assert_eq!(p.len(), 1);
        let snap = p.snapshot();
        let prof = &snap.queries[&7];
        assert_eq!(prof.executions, 2);
        assert_eq!(prof.totals.index_probes, 10);
        assert_eq!(prof.totals.rows_scanned, 150);
        assert_eq!(prof.totals.intermediate_bytes, 1_400);
        // Peak is maxed across executions, not summed.
        assert_eq!(prof.totals.peak_intermediate_bytes, 500);
        assert_eq!(prof.latency.count, 2);
        assert_eq!(prof.latency.sum, 2_000);
        assert_eq!(prof.edge_costs[0].index_probes, 10);
        assert_eq!(prof.edge_costs[1].rows_scanned, 150);
        assert_eq!(snap.executions(), 2);
    }

    #[test]
    fn snapshot_merge_and_diff_round_trip() {
        let p = Profiler::new();
        p.record(&shape(1), &cost(4, 0, 100, 10), &edges(4, 0));
        let base = p.snapshot();
        p.record(&shape(1), &cost(2, 8, 50, 20), &edges(2, 8));
        p.record(&shape(9), &cost(1, 1, 1, 1), &edges(1, 1));
        let now = p.snapshot();

        let delta = now.diff(&base);
        assert_eq!(delta.queries[&1].executions, 1);
        assert_eq!(delta.queries[&1].totals.index_probes, 2);
        assert_eq!(delta.queries[&9].executions, 1);

        let mut merged = base.clone();
        merged.merge(&delta);
        assert_eq!(merged.executions(), now.executions());
        assert_eq!(
            merged.queries[&1].totals.index_probes,
            now.queries[&1].totals.index_probes
        );
        assert_eq!(
            merged.queries[&1].latency.count,
            now.queries[&1].latency.count
        );
        // Unchanged fingerprints fall out of the diff entirely.
        let empty = now.diff(&now);
        assert!(empty.queries.is_empty());
    }

    #[test]
    fn report_ranks_edges_by_cumulative_cost() {
        let p = Profiler::new();
        // Two shapes sharing the COURSE->OFFER edge; TEACH edge is
        // scan-heavy and must rank first.
        p.record(&shape(1), &cost(4, 100, 100, 10), &edges(4, 100));
        p.record(&shape(2), &cost(4, 100, 100, 10), &edges(4, 100));
        let ranking = report(&p.snapshot());
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].edge.right, "TEACH");
        assert_eq!(ranking[0].cumulative_cost, 200);
        assert_eq!(ranking[0].hash_builds, 2);
        assert_eq!(ranking[1].edge.right, "OFFER");
        assert_eq!(ranking[1].cumulative_cost, 8);
        assert_eq!(ranking[1].executions, 2);
        // Totals across the ranking equal the per-fingerprint edge sums.
        let total_probes: u64 = ranking.iter().map(|h| h.index_probes).sum();
        assert_eq!(total_probes, 8);
    }

    #[test]
    fn exports_are_stable_and_carry_the_contract_fields() {
        let p = Profiler::new();
        p.record(&shape(3), &cost(4, 100, 1_000, 10), &edges(4, 100));
        let snap = p.snapshot();
        let ranking = report(&snap);

        let json = report_to_json(&ranking);
        assert!(json.starts_with("{\"hot_joins\":["));
        assert!(json.contains("\"left\":\"OFFER\""));
        assert!(json.contains("\"right\":\"TEACH\""));
        assert!(json.contains("\"probe_attrs\":[\"T.C.NR\"]"));
        assert!(json.contains("\"cumulative_cost\":100"));
        assert!(json.contains("\"intermediate_bytes\":320"));

        let pj = profile_to_json(&snap);
        assert!(pj.contains("\"fingerprint\":\"0000000000000003\""));
        assert!(pj.contains("\"peak_intermediate_bytes\":500"));
        assert!(pj.contains("\"edges\":["));

        let text = profile_to_text(&snap);
        assert!(text.contains("fingerprint 0000000000000003"), "{text}");
        assert!(text.contains("edge COURSE->OFFER[O.C.NR]"), "{text}");
        let rt = report_to_text(&ranking);
        assert!(rt.starts_with("#1"), "{rt}");

        // Determinism: identical workloads render identically.
        let q = Profiler::new();
        q.record(&shape(3), &cost(4, 100, 1_000, 10), &edges(4, 100));
        assert_eq!(report_to_json(&report(&q.snapshot())), json);
    }
}
