//! A span-based tracer: nestable timed spans with `key=value` fields.
//!
//! Tracing is off by default. When off, [`span`] returns an inert guard —
//! no clock read, no allocation, one relaxed atomic load — so instrumented
//! hot paths cost effectively nothing. When on, each span records its wall
//! time on drop and emits a [`SpanEvent`] to a bounded in-memory event log
//! and to the installed [`Sink`].
//!
//! Spans close child-before-parent, so the event log is in *close* order.
//! [`render_tree`] re-derives the call tree from each event's `(open_seq,
//! depth)` pair.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One closed span.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name, e.g. `"engine.query.execute"`.
    pub name: &'static str,
    /// `key=value` fields attached while the span was open.
    pub fields: Vec<(&'static str, String)>,
    /// Nesting depth at open time (0 = root).
    pub depth: usize,
    /// Global open-order sequence number.
    pub open_seq: u64,
    /// Open time as nanoseconds since the tracer's process epoch (the
    /// first span ever opened) — the timeline origin Chrome-trace export
    /// needs. Comparable across threads.
    pub start_ns: u64,
    /// Wall time from open to close.
    pub duration_ns: u64,
}

/// A consumer of closed spans.
pub trait Sink: Send + Sync {
    /// Called once per span, at close.
    fn record(&self, event: &SpanEvent);
}

/// Discards every event.
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &SpanEvent) {}
}

/// Maximum events retained in the in-memory log. Once the log is full,
/// overflowing spans are *tail-sampled* (see [`OVERFLOW_SAMPLE_EVERY`])
/// instead of silently evicting the oldest event on every close.
pub const EVENT_LOG_CAPACITY: usize = 8192;

/// Tail-sampling rate once the event log is full: every `N`th overflowing
/// span is admitted (evicting the oldest buffered event) and the rest are
/// discarded, so a trace much longer than [`EVENT_LOG_CAPACITY`] keeps a
/// thinned-out tail rather than only its last 8192 closes. Every span the
/// log sheds — evicted or discarded — counts toward [`dropped_spans`] and
/// the global `obs.trace.dropped_spans` counter.
pub const OVERFLOW_SAMPLE_EVERY: u64 = 64;

struct TracerState {
    sink: Mutex<Arc<dyn Sink>>,
    events: Mutex<VecDeque<SpanEvent>>,
    open_seq: AtomicU64,
    /// Overflow arrivals since the log last drained (drives sampling).
    overflow_seen: AtomicU64,
    /// Spans shed by the log since it last drained.
    dropped: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static TracerState {
    static STATE: OnceLock<TracerState> = OnceLock::new();
    STATE.get_or_init(|| TracerState {
        sink: Mutex::new(Arc::new(NullSink)),
        events: Mutex::new(VecDeque::new()),
        open_seq: AtomicU64::new(0),
        overflow_seen: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    })
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The tracer's process epoch: fixed at the first call, so every span's
/// `start_ns` shares one timeline origin.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turns tracing on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs the sink closed spans are forwarded to.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *state().sink.lock().unwrap() = sink;
}

/// Drains and returns the buffered event log, resetting the overflow
/// sampler and the [`dropped_spans`] count.
pub fn take_events() -> Vec<SpanEvent> {
    let drained = state().events.lock().unwrap().drain(..).collect();
    state().overflow_seen.store(0, Ordering::Relaxed);
    state().dropped.store(0, Ordering::Relaxed);
    drained
}

/// Discards the buffered event log, resetting the overflow sampler and
/// the [`dropped_spans`] count.
pub fn clear_events() {
    state().events.lock().unwrap().clear();
    state().overflow_seen.store(0, Ordering::Relaxed);
    state().dropped.store(0, Ordering::Relaxed);
}

/// Spans the event log has shed since it last drained — overflow
/// evictions plus overflow discards. The process-lifetime total is also
/// kept on the global `obs.trace.dropped_spans` counter, so it shows up
/// in metric snapshots.
pub fn dropped_spans() -> u64 {
    state().dropped.load(Ordering::Relaxed)
}

/// Opens a span. Returns an inert guard when tracing is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    let open_seq = state().open_seq.fetch_add(1, Ordering::Relaxed);
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let start_ns = crate::metrics::elapsed_ns(epoch());
    Span {
        active: Some(ActiveSpan {
            name,
            fields: Vec::new(),
            depth,
            open_seq,
            start_ns,
            start: Instant::now(),
        }),
    }
}

struct ActiveSpan {
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    depth: usize,
    open_seq: u64,
    start_ns: u64,
    start: Instant,
}

/// An open span; closes (and records) on drop.
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// Attaches a `key=value` field (builder form).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Display) -> Self {
        self.add_field(key, value);
        self
    }

    /// Attaches a `key=value` field in place.
    pub fn add_field(&mut self, key: &'static str, value: impl Display) {
        if let Some(active) = self.active.as_mut() {
            active.fields.push((key, value.to_string()));
        }
    }

    /// Whether this span is live (tracing was on when it opened).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let duration_ns = crate::metrics::elapsed_ns(active.start);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let event = SpanEvent {
            name: active.name,
            fields: active.fields,
            depth: active.depth,
            open_seq: active.open_seq,
            start_ns: active.start_ns,
            duration_ns,
        };
        let sink = Arc::clone(&state().sink.lock().unwrap());
        sink.record(&event);
        let st = state();
        let mut events = st.events.lock().unwrap();
        if events.len() == EVENT_LOG_CAPACITY {
            // Tail-sample the overflow: admit every Nth arrival (evicting
            // the oldest buffered event), discard the rest. Either way one
            // span is shed, so the dropped count advances per arrival.
            let arrival = st.overflow_seen.fetch_add(1, Ordering::Relaxed);
            st.dropped.fetch_add(1, Ordering::Relaxed);
            crate::metrics::global()
                .counter("obs.trace.dropped_spans")
                .inc();
            if !arrival.is_multiple_of(OVERFLOW_SAMPLE_EVERY) {
                return;
            }
            events.pop_front();
        }
        events.push_back(event);
    }
}

/// Starts a [`Timer`]: a stopwatch paired with a span of the same name.
pub fn timer(name: &'static str) -> Timer {
    Timer {
        start: Instant::now(),
        span: span(name),
    }
}

/// A wall-clock stopwatch paired with a span. Unlike a bare [`span`], the
/// clock runs even when tracing is off, so callers can use the measured
/// time in their own reports; the span itself still costs nothing when
/// tracing is disabled.
pub struct Timer {
    start: Instant,
    span: Span,
}

impl Timer {
    /// Attaches a `key=value` field to the underlying span (builder form).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Display) -> Self {
        self.span.add_field(key, value);
        self
    }

    /// Attaches a `key=value` field in place.
    pub fn add_field(&mut self, key: &'static str, value: impl Display) {
        self.span.add_field(key, value);
    }

    /// Stops the clock, closes the span, and returns the elapsed
    /// nanoseconds.
    pub fn stop(self) -> u64 {
        let ns = crate::metrics::elapsed_ns(self.start);
        drop(self.span);
        ns
    }
}

fn format_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders `events` as an indented tree in open order, one span per line:
/// `name key=value ... (duration)`.
pub fn render_tree(events: &[SpanEvent]) -> String {
    let mut ordered: Vec<&SpanEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.open_seq);
    let mut out = String::new();
    for event in ordered {
        let _ = write!(out, "{}{}", "  ".repeat(event.depth), event.name);
        for (k, v) in &event.fields {
            let _ = write!(out, " {k}={v}");
        }
        let _ = writeln!(out, " ({})", format_duration(event.duration_ns));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracer state is process-global, so the unit tests for it live in one
    // #[test] fn to avoid cross-test interference under parallel execution.
    #[test]
    fn spans_nest_fields_attach_and_tree_renders() {
        clear_events();
        set_enabled(false);
        {
            let s = span("off");
            assert!(!s.is_active());
        }
        assert!(take_events().is_empty(), "disabled spans emit nothing");

        set_enabled(true);
        {
            let mut outer = span("outer").field("k", 1);
            outer.add_field("extra", "v");
            {
                let _inner = span("inner");
            }
            {
                let _inner2 = span("inner2").field("rows", 42);
            }
        }
        set_enabled(false);

        let events = take_events();
        assert_eq!(events.len(), 3);
        // Close order: inner, inner2, outer.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "inner2");
        assert_eq!(events[2].name, "outer");
        assert_eq!(events[2].depth, 0);
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].depth, 1);
        assert_eq!(
            events[2].fields,
            vec![("k", "1".to_owned()), ("extra", "v".to_owned())]
        );

        let tree = render_tree(&events);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("outer k=1 extra=v ("));
        assert!(lines[1].starts_with("  inner ("));
        assert!(lines[2].starts_with("  inner2 rows=42 ("));

        // Timers measure with tracing off (no event) and on (one event).
        let t = timer("timed.off");
        let _ = t.stop();
        assert!(take_events().is_empty());
        set_enabled(true);
        let t = timer("timed.on").field("k", 7);
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(t.stop() >= 1_000_000);
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "timed.on");
        assert_eq!(events[0].fields, vec![("k", "7".to_owned())]);

        // Overflow tail-sampling: fill the log past capacity and check
        // that only every Nth overflowing span is admitted, the log never
        // grows past capacity, and every shed span is counted.
        set_enabled(true);
        let overflow = 10 * OVERFLOW_SAMPLE_EVERY;
        for _ in 0..EVENT_LOG_CAPACITY as u64 + overflow {
            let _s = span("flood");
        }
        set_enabled(false);
        assert_eq!(dropped_spans(), overflow);
        let events = take_events();
        assert_eq!(events.len(), EVENT_LOG_CAPACITY);
        assert_eq!(dropped_spans(), 0, "take_events resets the count");
        // Admitted overflow spans replaced the oldest events, so the log
        // is no longer a contiguous window: exactly overflow/N survivors
        // from the overflow region are interleaved at the tail.
        let max_seq = events.iter().map(|e| e.open_seq).max().unwrap();
        let min_seq = events.iter().map(|e| e.open_seq).min().unwrap();
        assert!(
            max_seq - min_seq >= EVENT_LOG_CAPACITY as u64,
            "sampled tail spans span a wider sequence range than the buffer"
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(15), "15ns");
        assert_eq!(format_duration(1_500), "1.5us");
        assert_eq!(format_duration(2_500_000), "2.50ms");
        assert_eq!(format_duration(3_000_000_000), "3.00s");
    }
}
