//! Counters, gauges, and log2-bucketed histograms behind a name registry.
//!
//! Handles (`Arc<Counter>` etc.) are cheap to clone and lock-free to update;
//! the registry lock is only taken on first lookup and on snapshot. A
//! [`Registry`] can be process-global (see [`global()`]) or a *shard* owned
//! by one component (e.g. one `Database` instance) and registered with
//! [`register_shard`] so [`snapshot_all`] still sees it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Returns the current count and resets it to zero.
    #[inline]
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }

    /// Overwrites the count (used when cloning a shard's state).
    #[inline]
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i - 1]`, and the last bucket absorbs everything
/// above its lower bound.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The `[lo, hi]` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    if index == 0 {
        (0, 0)
    } else if index == HISTOGRAM_BUCKETS - 1 {
        (1u64 << (index - 1), u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Runs `f`, recording its wall time in nanoseconds.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(elapsed_ns(start));
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i, n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Folds a snapshot's samples into this histogram (adds counts, sums,
    /// and per-bucket tallies). Used when flushing a shard registry into
    /// the global one.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        for &(i, n) in &snap.buckets {
            if i < HISTOGRAM_BUCKETS {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// Saturating nanoseconds since `start`.
#[inline]
pub fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Point-in-time state of one histogram (sparse buckets).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(bucket_index, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Records one sample directly into the snapshot (the owned-value
    /// counterpart of [`Histogram::record`], for aggregators that keep
    /// per-key snapshots instead of live atomics).
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        let idx = bucket_index(value);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
    }

    /// Folds `other`'s samples into this snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for &(i, n) in &other.buckets {
            *merged.entry(i).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// The samples recorded since `baseline` (saturating per field).
    pub fn diff(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let base: BTreeMap<usize, u64> = baseline.buckets.iter().copied().collect();
        let buckets = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n.saturating_sub(base.get(&i).copied().unwrap_or(0));
                (d > 0).then_some((i, d))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            buckets,
        }
    }
}

/// A named collection of metrics.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap()
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .unwrap()
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap()
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every metric, keeping handles valid.
    pub fn reset(&self) {
        for c in self.counters.read().unwrap().values() {
            c.set(0);
        }
        for g in self.gauges.read().unwrap().values() {
            g.set(0);
        }
        for h in self.histograms.read().unwrap().values() {
            h.reset();
        }
    }
}

/// Point-in-time state of a registry (or several, merged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Folds `other` into `self` (counters/histograms add, gauges take the
    /// later value).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// What changed since `baseline`: counters/histograms subtract
    /// (saturating), gauges keep their current value.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (k, v) in &self.counters {
            let d = v.saturating_sub(baseline.counters.get(k).copied().unwrap_or(0));
            if d > 0 {
                out.counters.insert(k.clone(), d);
            }
        }
        out.gauges = self.gauges.clone();
        for (k, v) in &self.histograms {
            let d = match baseline.histograms.get(k) {
                Some(b) => v.diff(b),
                None => v.clone(),
            };
            if d.count > 0 {
                out.histograms.insert(k.clone(), d);
            }
        }
        out
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

struct GlobalState {
    registry: Registry,
    shards: Mutex<Vec<Weak<Registry>>>,
}

fn global_state() -> &'static GlobalState {
    static STATE: OnceLock<GlobalState> = OnceLock::new();
    STATE.get_or_init(|| GlobalState {
        registry: Registry::new(),
        shards: Mutex::new(Vec::new()),
    })
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    &global_state().registry
}

/// Registers `shard` so [`snapshot_all`] includes it. Holds only a weak
/// reference; dropped shards are pruned lazily.
pub fn register_shard(shard: &Arc<Registry>) {
    let mut shards = global_state().shards.lock().unwrap();
    shards.retain(|w| w.strong_count() > 0);
    shards.push(Arc::downgrade(shard));
}

/// Folds every metric of `shard` into the process-global registry:
/// counters add, gauges take the shard's value, histograms merge their
/// bucket tallies. Call this when a shard owner is dropped so its counts
/// survive in [`snapshot_all`] instead of vanishing with the weak
/// reference. Flushing a *live* shard double-counts it in `snapshot_all`
/// (once merged, once live) — only flush at end of life.
pub fn flush_shard(shard: &Registry) {
    flush_shard_into(shard, global());
}

/// [`flush_shard`] with an explicit destination: folds every metric of
/// `shard` into `target` instead of the process-global registry. A store
/// folding its sessions' metric shards into its own registry uses this so
/// per-session counts survive session drop exactly once — in the store —
/// rather than escaping to the global registry.
pub fn flush_shard_into(shard: &Registry, target: &Registry) {
    let snap = shard.snapshot();
    for (name, v) in &snap.counters {
        if *v > 0 {
            target.counter(name).add(*v);
        }
    }
    for (name, v) in &snap.gauges {
        target.gauge(name).set(*v);
    }
    for (name, h) in &snap.histograms {
        if h.count > 0 {
            target.histogram(name).merge_snapshot(h);
        }
    }
}

/// The global registry's snapshot merged with every live shard's.
pub fn snapshot_all() -> Snapshot {
    let mut snap = global().snapshot();
    let shards: Vec<Arc<Registry>> = {
        let guard = global_state().shards.lock().unwrap();
        guard.iter().filter_map(Weak::upgrade).collect()
    };
    for shard in shards {
        snap.merge(&shard.snapshot());
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0, 1, 1, 5, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(
            snap.sum,
            0u64.wrapping_add(1 + 1 + 5 + 1000).wrapping_add(u64::MAX)
        );
        let by_bucket: BTreeMap<usize, u64> = snap.buckets.iter().copied().collect();
        assert_eq!(by_bucket[&0], 1);
        assert_eq!(by_bucket[&1], 2);
        assert_eq!(by_bucket[&3], 1);
        assert_eq!(by_bucket[&10], 1);
        assert_eq!(by_bucket[&(HISTOGRAM_BUCKETS - 1)], 1);
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("x").get(), 4);
        assert_eq!(a.take(), 4);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn snapshot_diff_and_merge() {
        let reg = Registry::new();
        reg.counter("c").add(10);
        reg.histogram("h").record(7);
        let base = reg.snapshot();
        reg.counter("c").add(5);
        reg.counter("new").inc();
        reg.histogram("h").record(7);
        reg.histogram("h").record(100);
        let now = reg.snapshot();

        let d = now.diff(&base);
        assert_eq!(d.counters["c"], 5);
        assert_eq!(d.counters["new"], 1);
        let h = &d.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 107);

        let mut merged = base.clone();
        merged.merge(&d);
        assert_eq!(merged.counters["c"], now.counters["c"]);
        assert_eq!(merged.histograms["h"].count, now.histograms["h"].count);
        assert_eq!(merged.histograms["h"].sum, now.histograms["h"].sum);
    }

    #[test]
    fn flush_shard_preserves_counts_past_drop() {
        let shard = Arc::new(Registry::new());
        register_shard(&shard);
        shard.counter("flush.test.events").add(7);
        shard.gauge("flush.test.level").set(-3);
        shard.histogram("flush.test.ns").record(5);
        shard.histogram("flush.test.ns").record(1000);
        let before = global().snapshot();
        flush_shard(&shard);
        drop(shard);
        let after = snapshot_all().diff(&before);
        assert_eq!(after.counters["flush.test.events"], 7);
        assert_eq!(after.gauges["flush.test.level"], -3);
        let h = &after.histograms["flush.test.ns"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1005);
        let by_bucket: BTreeMap<usize, u64> = h.buckets.iter().copied().collect();
        assert_eq!(by_bucket[&bucket_index(5)], 1);
        assert_eq!(by_bucket[&bucket_index(1000)], 1);
    }

    #[test]
    fn shards_feed_snapshot_all() {
        let shard = Arc::new(Registry::new());
        register_shard(&shard);
        shard.counter("shard.test.events").add(2);
        global().counter("shard.test.events").inc();
        let snap = snapshot_all();
        assert_eq!(snap.counters["shard.test.events"], 3);
        drop(shard);
        // A dropped shard no longer contributes.
        let snap = snapshot_all();
        assert_eq!(snap.counters["shard.test.events"], 1);
    }
}
