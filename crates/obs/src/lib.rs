//! Observability for the relmerge workspace: a metrics registry and a
//! span-based tracer, std-only by design.
//!
//! # Metrics
//!
//! [`Registry`] hands out lock-free [`Counter`], [`Gauge`], and log2-bucketed
//! [`Histogram`] handles by name. Components that need isolated counts (e.g.
//! one `Database` instance) own a shard registry and register it with
//! [`register_shard`]; [`snapshot_all`] merges the global registry with every
//! live shard. A [`Snapshot`] supports [`diff`](Snapshot::diff) /
//! [`merge`](Snapshot::merge) and renders via [`to_text`] or [`to_json`].
//!
//! # Tracing
//!
//! [`span`] opens a nestable timed span; fields attach as `key=value`; the
//! guard records on drop. Tracing is globally off by default and the
//! disabled path allocates nothing. Closed spans go to a bounded event log
//! ([`take_events`]) and a pluggable [`Sink`]; [`render_tree`] pretty-prints
//! a collected trace and [`chrome_trace`] exports it for `chrome://tracing`.
//!
//! # Workload profiling
//!
//! [`Profiler`] aggregates executed queries by shape fingerprint into
//! per-operator totals, intermediate-byte accounting, and log2 latency
//! histograms; [`report`] flattens a [`ProfileSnapshot`] into the
//! hot-join ranking (`(relation pair, probe attrs, cumulative cost)`)
//! that drives relation-merging decisions. See [`profile`].
//!
//! ```
//! use relmerge_obs as obs;
//!
//! let reg = obs::Registry::new();
//! reg.counter("demo.events").add(2);
//! reg.histogram("demo.latency_ns").record(1_250);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["demo.events"], 2);
//! assert!(obs::to_json(&snap).contains("\"demo.events\":2"));
//! ```

pub mod export;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use export::{chrome_trace, json_escape, to_json, to_text};
pub use metrics::{
    bucket_bounds, bucket_index, elapsed_ns, flush_shard, flush_shard_into, global, register_shard,
    snapshot_all, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot,
    HISTOGRAM_BUCKETS,
};
pub use profile::{
    profile_to_json, profile_to_text, report, report_to_json, report_to_text, EdgeCost,
    FingerprintProfile, HotJoin, JoinEdge, JoinEvidence, ProfileSnapshot, Profiler, QueryCost,
    QueryShape,
};
pub use trace::{
    clear_events, dropped_spans, enabled, render_tree, set_enabled, set_sink, span, take_events,
    timer, NullSink, Sink, Span, SpanEvent, Timer, EVENT_LOG_CAPACITY, OVERFLOW_SAMPLE_EVERY,
};
