//! Text and JSON renderings of a metrics [`Snapshot`].
//!
//! Both encoders are hand-rolled on `std::fmt::Write` — the workspace has no
//! serde. The JSON form is deliberately flat and stable so downstream
//! scripts can parse it with anything.

use std::fmt::Write as _;

use crate::metrics::{bucket_bounds, HistogramSnapshot, Snapshot};

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"buckets\":{{",
        h.count, h.sum
    );
    for (i, (bucket, n)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (lo, hi) = bucket_bounds(*bucket);
        let _ = write!(out, "\"{lo}..{hi}\":{n}");
    }
    out.push_str("}}");
}

/// Renders `snap` as a single JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,buckets}}}`.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", json_escape(k));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", json_escape(k));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", json_escape(k));
        json_histogram(&mut out, h);
    }
    out.push_str("}}");
    out
}

/// Renders `snap` as aligned human-readable text, one metric per line.
pub fn to_text(snap: &Snapshot) -> String {
    let width = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
        .map(|k| k.len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (k, v) in &snap.counters {
        let _ = writeln!(out, "{k:<width$}  {v}");
    }
    for (k, v) in &snap.gauges {
        let _ = writeln!(out, "{k:<width$}  {v}");
    }
    for (k, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{k:<width$}  count={} sum={} mean={}",
            h.count,
            h.sum,
            h.mean()
        );
        for (bucket, n) in &h.buckets {
            let (lo, hi) = bucket_bounds(*bucket);
            let _ = writeln!(out, "{:<width$}    [{lo}..{hi}] {n}", "");
        }
    }
    out
}

/// Renders collected span events as a Chrome-trace (`chrome://tracing` /
/// Perfetto) JSON array of complete (`"ph":"X"`) events. Timestamps are
/// microseconds from the tracer's process epoch; nesting depth is mapped
/// to the thread lane so parent/child spans stack visually; span fields
/// become `args`.
pub fn chrome_trace(events: &[crate::trace::SpanEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"open_seq\":\"{}\"",
            json_escape(e.name),
            e.start_ns / 1_000,
            e.duration_ns / 1_000,
            e.depth + 1,
            e.open_seq,
        );
        for (k, v) in &e.fields {
            let _ = write!(out, ",\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_shape_is_stable() {
        let reg = Registry::new();
        reg.counter("a.b").add(2);
        reg.gauge("g").set(-3);
        reg.histogram("h").record(0);
        reg.histogram("h").record(3);
        let json = to_json(&reg.snapshot());
        assert_eq!(
            json,
            "{\"counters\":{\"a.b\":2},\"gauges\":{\"g\":-3},\
             \"histograms\":{\"h\":{\"count\":2,\"sum\":3,\
             \"buckets\":{\"0..0\":1,\"2..3\":1}}}}"
        );
    }

    #[test]
    fn json_of_empty_snapshot() {
        let json = to_json(&Snapshot::default());
        assert_eq!(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
    }

    #[test]
    fn chrome_trace_is_a_complete_event_array() {
        let events = vec![
            crate::trace::SpanEvent {
                name: "outer",
                fields: vec![("rel", "COURSE \"M\"".to_owned())],
                depth: 0,
                open_seq: 0,
                start_ns: 1_000,
                duration_ns: 9_000,
            },
            crate::trace::SpanEvent {
                name: "inner",
                fields: Vec::new(),
                depth: 1,
                open_seq: 1,
                start_ns: 2_000,
                duration_ns: 3_000,
            },
        ];
        let json = chrome_trace(&events);
        assert_eq!(
            json,
            "[{\"name\":\"outer\",\"ph\":\"X\",\"ts\":1,\"dur\":9,\
             \"pid\":1,\"tid\":1,\"args\":{\"open_seq\":\"0\",\
             \"rel\":\"COURSE \\\"M\\\"\"}},\
             {\"name\":\"inner\",\"ph\":\"X\",\"ts\":2,\"dur\":3,\
             \"pid\":1,\"tid\":2,\"args\":{\"open_seq\":\"1\"}}]"
        );
        assert_eq!(chrome_trace(&[]), "[]");
    }

    #[test]
    fn text_lists_every_metric() {
        let reg = Registry::new();
        reg.counter("hits").add(7);
        reg.histogram("lat").record(5);
        let text = to_text(&reg.snapshot());
        assert!(text.contains("hits"));
        assert!(text.contains('7'));
        assert!(text.contains("count=1"));
        assert!(text.contains("[4..7] 1"));
    }
}
