//! Partitioned transient hash builds and the versioned build-side cache.
//!
//! When [`crate::planner::choose_join_strategy`] picks a hash join and no
//! index covers the probe attributes, the executor scans the build side
//! once into an [`OwnedBuild`]: a set of `hash(key) % P` partitions of a
//! key → row-slot multimap. Past
//! [`Database::build_parallel_threshold`](crate::Database::build_parallel_threshold)
//! the scan fans out — each worker reads a contiguous chunk of the row
//! slots into per-partition partial maps, and a second lock-free pass
//! merges each partition on its own worker (the partitioned-build playbook
//! of Balkesen et al., ICDE 2013). Because chunks are contiguous and are
//! merged in chunk order, every key's slot list comes out in ascending
//! slot order **regardless of the worker count**, so probe results — and
//! therefore query results — are byte-identical at every parallelism
//! level.
//!
//! Finished builds land in a per-database [`BuildCache`] keyed by
//! [`BuildKey`] — `(relation, probe attrs, relation version)`. The version
//! is a monotone counter bumped by every statement that touches the
//! relation, so a hit is *proof* the cached build describes the current
//! rows; invalidation needs no bookkeeping beyond the bump. Entries are
//! evicted least-recently-used once the byte cap is exceeded.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use relmerge_relational::{Error, Result, Tuple, Value};

use crate::fault::panic_message;
use crate::query::{CompiledPredicate, Predicate};

/// One parallel build worker's output: per-partition partial maps plus
/// the number of rows its pushed filter pruned.
type ChunkBuild = (Vec<HashMap<Tuple, Vec<usize>>>, u64);

/// The partition a key belongs to: a stable hash of the value slice,
/// reduced mod the partition count. Build and probe sides must agree, so
/// both hash the *slice* form of the key (a [`Tuple`] hashes identically
/// to its slice — see `Borrow<[Value]> for Tuple`).
fn partition_of(key: &[Value], partitions: usize) -> usize {
    let mut h = std::hash::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// A transient hash table over one relation's probe attributes: `P`
/// partitions of key → live-row-slot lists, with the cost figures the
/// executor charges per use (identically on cache hits, keeping
/// [`QueryStats`](crate::QueryStats) independent of cache state).
#[derive(Debug)]
pub(crate) struct OwnedBuild {
    partitions: Vec<HashMap<Tuple, Vec<usize>>>,
    /// Row slots scanned to build (the whole slot array, tombstones
    /// included — the figure the serial build always charged).
    rows_scanned: u64,
    /// Approximate resident size, for the cache cap and the query budget.
    bytes: u64,
    /// Workers the build fanned out over (1 = serial).
    workers: usize,
    /// Distinct keys, for output-cardinality estimation.
    keys: usize,
    /// Total slot references, for output-cardinality estimation.
    slots: usize,
    /// Rows a pushed predicate excluded from the build (rows that were
    /// live and key-total but failed the filter).
    pruned: u64,
}

impl OwnedBuild {
    /// The live row slots carrying `key`, in ascending slot order.
    pub(crate) fn probe(&self, key: &[Value]) -> Option<&[usize]> {
        let p = if self.partitions.len() == 1 {
            0
        } else {
            partition_of(key, self.partitions.len())
        };
        self.partitions[p].get(key).map(Vec::as_slice)
    }

    /// Row slots scanned to produce this build.
    pub(crate) fn rows_scanned(&self) -> u64 {
        self.rows_scanned
    }

    /// Approximate bytes this build occupies.
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Workers the build fanned out over (1 = serial).
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Distinct keys in the build.
    pub(crate) fn keys(&self) -> usize {
        self.keys
    }

    /// Total slot references across all keys.
    pub(crate) fn slots(&self) -> usize {
        self.slots
    }

    /// Rows a pushed predicate excluded from the build.
    pub(crate) fn pruned(&self) -> u64 {
        self.pruned
    }
}

/// Scans `rows` once into an [`OwnedBuild`] over the attribute positions
/// `pos`, fanning out over `workers` contiguous chunks when `workers > 1`.
/// A pushed `filter` (compiled against the relation's header) keeps
/// failing rows out of the build entirely, shrinking its byte footprint;
/// the exclusions are counted in [`OwnedBuild::pruned`].
/// `fault` runs once per chunk (the `engine.query.hash_build` site) —
/// possibly on a worker thread — and any panic it raises, like any genuine
/// build panic, is contained into a typed [`Error::ExecutionPanic`].
pub(crate) fn build_owned<F>(
    rows: &[Option<Tuple>],
    pos: &[usize],
    workers: usize,
    filter: Option<&CompiledPredicate>,
    fault: F,
) -> Result<OwnedBuild>
where
    F: Fn() -> Result<()> + Sync,
{
    let workers = workers.max(1).min(rows.len().max(1));
    let mut pruned: u64 = 0;
    let merged: Vec<HashMap<Tuple, Vec<usize>>> = if workers <= 1 {
        let (map, chunk_pruned) = catch_unwind(AssertUnwindSafe(
            || -> Result<(HashMap<Tuple, Vec<usize>>, u64)> {
                fault()?;
                let mut map: HashMap<Tuple, Vec<usize>> = HashMap::new();
                let mut pruned = 0u64;
                for (slot, t) in rows.iter().enumerate() {
                    if let Some(t) = t {
                        if t.is_total_at(pos) {
                            if let Some(f) = filter {
                                if !f.matches(t.values()) {
                                    pruned += 1;
                                    continue;
                                }
                            }
                            map.entry(t.project(pos)).or_default().push(slot);
                        }
                    }
                }
                Ok((map, pruned))
            },
        ))
        .unwrap_or_else(|payload| {
            Err(Error::ExecutionPanic {
                context: panic_message(payload),
            })
        })?;
        pruned = chunk_pruned;
        vec![map]
    } else {
        // Pass 1: each worker scans one contiguous chunk of the slot array
        // into per-partition partial maps. Chunks are joined in spawn
        // order, so `partials` stays chunk-ordered.
        let chunk_rows = rows.len().div_ceil(workers);
        let mut partials: Vec<Vec<HashMap<Tuple, Vec<usize>>>> = Vec::with_capacity(workers);
        let mut failure: Option<Error> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(chunk_rows)
                .enumerate()
                .map(|(ci, chunk)| {
                    let fault = &fault;
                    scope.spawn(move || -> Result<ChunkBuild> {
                        catch_unwind(AssertUnwindSafe(|| -> Result<_> {
                            fault()?;
                            let mut parts: Vec<HashMap<Tuple, Vec<usize>>> =
                                (0..workers).map(|_| HashMap::new()).collect();
                            let mut pruned = 0u64;
                            let base = ci * chunk_rows;
                            for (off, t) in chunk.iter().enumerate() {
                                if let Some(t) = t {
                                    if t.is_total_at(pos) {
                                        if let Some(f) = filter {
                                            if !f.matches(t.values()) {
                                                pruned += 1;
                                                continue;
                                            }
                                        }
                                        let key = t.project(pos);
                                        let p = partition_of(key.values(), workers);
                                        parts[p].entry(key).or_default().push(base + off);
                                    }
                                }
                            }
                            Ok((parts, pruned))
                        }))
                        .unwrap_or_else(|payload| {
                            Err(Error::ExecutionPanic {
                                context: panic_message(payload),
                            })
                        })
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(Ok((parts, chunk_pruned))) => {
                        partials.push(parts);
                        pruned += chunk_pruned;
                    }
                    Ok(Err(e)) => {
                        if failure.is_none() {
                            failure = Some(e);
                        }
                    }
                    Err(payload) => {
                        if failure.is_none() {
                            failure = Some(Error::ExecutionPanic {
                                context: panic_message(payload),
                            });
                        }
                    }
                }
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        // Transpose chunk-major partials into partition-major columns;
        // pass 2 then merges each partition on its own worker with no
        // locking (disjoint ownership). Appending chunk-ordered slot lists
        // keeps every key's list in ascending slot order.
        let mut columns: Vec<Vec<HashMap<Tuple, Vec<usize>>>> =
            (0..workers).map(|_| Vec::with_capacity(workers)).collect();
        for parts in partials {
            for (p, map) in parts.into_iter().enumerate() {
                columns[p].push(map);
            }
        }
        let mut merged: Vec<HashMap<Tuple, Vec<usize>>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = columns
                .into_iter()
                .map(|column| {
                    scope.spawn(move || {
                        let mut out: HashMap<Tuple, Vec<usize>> = HashMap::new();
                        for map in column {
                            for (k, mut slots) in map {
                                out.entry(k).or_default().append(&mut slots);
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(map) => merged.push(map),
                    Err(payload) => {
                        if failure.is_none() {
                            failure = Some(Error::ExecutionPanic {
                                context: panic_message(payload),
                            });
                        }
                    }
                }
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        merged
    };
    let keys: usize = merged.iter().map(HashMap::len).sum();
    let slots: usize = merged.iter().flat_map(|m| m.values()).map(Vec::len).sum();
    let key_values: usize = merged.iter().flat_map(|m| m.keys()).map(Tuple::arity).sum();
    // Approximate bytes: map-entry overhead per key, plus the key's boxed
    // values, plus one usize per slot reference.
    let bytes = (keys as u64) * (std::mem::size_of::<(Tuple, Vec<usize>)>() as u64 + 16)
        + (key_values as u64) * std::mem::size_of::<Value>() as u64
        + (slots as u64) * std::mem::size_of::<usize>() as u64;
    Ok(OwnedBuild {
        partitions: merged,
        rows_scanned: rows.len() as u64,
        bytes,
        workers,
        keys,
        slots,
        pruned,
    })
}

/// The identity of one cached build: the relation, the probe attributes
/// the build is keyed on, the relation's modification version at build
/// time, and the exact predicate pushed into the build (if any). A
/// mutation bumps the version, so stale entries can never be hit — they
/// just age out of the LRU. The filter is part of the key *by value*, not
/// by its literal-free fingerprint: a build filtered on `Eq(a, 1)` must
/// never be served to a probe filtered on `Eq(a, 2)` or to an unfiltered
/// one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct BuildKey {
    pub(crate) rel: String,
    pub(crate) attrs: Vec<String>,
    pub(crate) version: u64,
    pub(crate) filter: Option<Predicate>,
}

#[derive(Clone)]
struct CacheEntry {
    build: Arc<OwnedBuild>,
    last_used: u64,
}

/// A per-database LRU cache of transient builds, capped in approximate
/// bytes. A capacity of `0` disables caching entirely. Entries are
/// [`Arc`]-shared, so a clone of the cache (for [`Database::clone`]) costs
/// one refcount per entry and evictions on either side are independent.
///
/// [`Database::clone`]: crate::Database
#[derive(Clone)]
pub(crate) struct BuildCache {
    cap_bytes: u64,
    bytes: u64,
    tick: u64,
    entries: HashMap<BuildKey, CacheEntry>,
}

impl BuildCache {
    /// An empty cache holding at most `cap_bytes` of builds.
    pub(crate) fn new(cap_bytes: u64) -> Self {
        BuildCache {
            cap_bytes,
            bytes: 0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// The byte capacity.
    pub(crate) fn capacity(&self) -> u64 {
        self.cap_bytes
    }

    /// Approximate bytes currently cached.
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Entries currently cached.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Drops every entry.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// The highest relation version any cached build of `rel` was taken
    /// at, if any build is cached. Bulk loads bump the relation version
    /// strictly past this so a pre-load build can never be mistaken for
    /// fresh.
    pub(crate) fn max_version(&self, rel: &str) -> Option<u64> {
        self.entries
            .keys()
            .filter(|k| k.rel == rel)
            .map(|k| k.version)
            .max()
    }

    /// Looks `key` up, marking the entry most-recently-used on a hit.
    pub(crate) fn get(&mut self, key: &BuildKey) -> Option<Arc<OwnedBuild>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.build)
        })
    }

    /// Inserts a finished build, evicting least-recently-used entries
    /// while over capacity; returns `(entries evicted, bytes evicted)`.
    /// A build larger than the whole capacity (or any build when the
    /// capacity is 0) is not cached at all.
    pub(crate) fn insert(&mut self, key: BuildKey, build: Arc<OwnedBuild>) -> (u64, u64) {
        if self.cap_bytes == 0 || build.bytes() > self.cap_bytes {
            return (0, 0);
        }
        self.tick += 1;
        self.bytes += build.bytes();
        if let Some(old) = self.entries.insert(
            key,
            CacheEntry {
                build,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.build.bytes();
        }
        self.evict_to_cap()
    }

    /// Changes the capacity, evicting down to it; returns
    /// `(entries evicted, bytes evicted)`.
    pub(crate) fn set_capacity(&mut self, cap_bytes: u64) -> (u64, u64) {
        self.cap_bytes = cap_bytes;
        self.evict_to_cap()
    }

    /// Evicts strictly least-recently-used first (ticks are unique, so
    /// the victim order is deterministic); returns `(entries, bytes)`.
    fn evict_to_cap(&mut self) -> (u64, u64) {
        let mut evicted = 0;
        let mut evicted_bytes = 0;
        while self.bytes > self.cap_bytes {
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = self.entries.remove(&victim) {
                self.bytes -= e.build.bytes();
                evicted_bytes += e.build.bytes();
            }
            evicted += 1;
        }
        (evicted, evicted_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> Vec<Option<Tuple>> {
        (0..n)
            .map(|i| {
                if i % 7 == 3 {
                    None // tombstone
                } else if i % 5 == 0 {
                    Some(Tuple::new([Value::Int(i as i64), Value::Null]))
                } else {
                    Some(Tuple::new([
                        Value::Int(i as i64),
                        Value::Int((i % 9) as i64),
                    ]))
                }
            })
            .collect()
    }

    #[test]
    fn parallel_build_is_slot_identical_to_serial() {
        let rows = rows(500);
        let pos = vec![1usize];
        let serial = build_owned(&rows, &pos, 1, None, || Ok(())).unwrap();
        for workers in [2, 3, 4, 7] {
            let par = build_owned(&rows, &pos, workers, None, || Ok(())).unwrap();
            assert_eq!(par.workers(), workers);
            assert_eq!(par.keys(), serial.keys());
            assert_eq!(par.slots(), serial.slots());
            assert_eq!(par.bytes(), serial.bytes());
            assert_eq!(par.rows_scanned(), 500);
            for k in 0..9i64 {
                let key = [Value::Int(k)];
                assert_eq!(par.probe(&key), serial.probe(&key), "key {k}");
            }
            // Slot lists are ascending (the determinism invariant).
            let key = [Value::Int(1)];
            let slots = par.probe(&key).unwrap();
            assert!(slots.windows(2).all(|w| w[0] < w[1]), "{slots:?}");
        }
        // Null and tombstoned rows never enter the build.
        assert!(serial.probe(&[Value::Null]).is_none());
    }

    #[test]
    fn build_faults_surface_typed_from_any_chunk() {
        let rows = rows(100);
        let pos = vec![0usize];
        let calls = std::sync::atomic::AtomicU64::new(0);
        let err = build_owned(&rows, &pos, 4, None, || {
            if calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed) == 2 {
                Err(Error::Injected {
                    site: "test".to_owned(),
                })
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(matches!(err, Error::Injected { .. }), "{err}");
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 4);
        // A panicking chunk is contained into a typed error.
        let err = build_owned(&rows, &pos, 4, None, || -> Result<()> {
            panic!("boom in a build worker")
        })
        .unwrap_err();
        assert!(
            matches!(err, Error::ExecutionPanic { ref context } if context.contains("boom")),
            "{err}"
        );
        // Serial builds contain panics too (no thread scaffolding).
        let err = build_owned(&rows, &pos, 1, None, || -> Result<()> {
            panic!("serial boom")
        })
        .unwrap_err();
        assert!(matches!(err, Error::ExecutionPanic { .. }), "{err}");
    }

    #[test]
    fn cache_is_lru_with_byte_cap() {
        let rows = rows(64);
        let pos = vec![0usize];
        let build = || Arc::new(build_owned(&rows, &pos, 1, None, || Ok(())).unwrap());
        let one = build().bytes();
        let key = |v: u64| BuildKey {
            rel: "R".to_owned(),
            attrs: vec!["R.K".to_owned()],
            version: v,
            filter: None,
        };
        // Room for exactly two entries.
        let mut cache = BuildCache::new(2 * one);
        assert_eq!(cache.insert(key(0), build()), (0, 0));
        assert_eq!(cache.insert(key(1), build()), (0, 0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 2 * one);
        // Touch version 0 so version 1 becomes the LRU victim.
        assert!(cache.get(&key(0)).is_some());
        assert_eq!(cache.insert(key(2), build()), (1, one));
        assert!(cache.get(&key(1)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        // Shrinking the capacity evicts down.
        assert_eq!(cache.set_capacity(one), (1, one));
        assert_eq!(cache.len(), 1);
        // A build larger than the whole cache is skipped, not inserted.
        assert_eq!(cache.set_capacity(1), (1, one));
        assert_eq!(cache.insert(key(9), build()), (0, 0));
        assert_eq!(cache.len(), 0);
        // Capacity 0 disables caching outright.
        let mut off = BuildCache::new(0);
        assert_eq!(off.insert(key(0), build()), (0, 0));
        assert!(off.get(&key(0)).is_none());
        assert_eq!(off.bytes(), 0);
        // clear() empties and resets accounting.
        let mut cache = BuildCache::new(u64::MAX);
        cache.insert(key(0), build());
        cache.clear();
        assert_eq!((cache.len(), cache.bytes()), (0, 0));
        assert_eq!(cache.capacity(), u64::MAX);
    }
}
