//! Deterministic fault injection, query budgets, and integrity reports.
//!
//! The paper's preservation claims (Propositions 4.1/4.2/5.1/5.2) are
//! claims about *states*: whatever the maintenance machinery does, every
//! key, inclusion dependency, and null constraint must still hold. This
//! module makes failure a first-class, testable input to the engine:
//!
//! * a [`FaultPlan`] arms named injection **sites** threaded through
//!   statement execution, group validation, index maintenance, batch
//!   commit, and the morsel executor — each site can fire a typed
//!   [`Error::Injected`] or a panic, deterministically on its n-th
//!   arrival;
//! * a [`QueryBudget`] caps a query's intermediate rows and wall time,
//!   checked cooperatively at morsel boundaries and surfaced as
//!   [`Error::BudgetExceeded`];
//! * an [`IntegrityReport`] is the structured output of
//!   [`Database::verify_integrity`](crate::Database::verify_integrity),
//!   the deep checker the torture harness runs after every induced abort.
//!
//! Faults are *injected*, never spontaneous: a database with no plan
//! installed pays one branch per site.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use relmerge_obs as obs;
use relmerge_relational::{Error, Result};

/// The named injection sites a [`FaultPlan`] can arm.
///
/// Site names double as metric labels: every fire bumps the process-global
/// counter `engine.fault.fired.<site>`.
pub mod site {
    /// Entry of one statement inside [`Database::apply_batch`]
    /// (fires once per statement, before the statement mutates anything).
    ///
    /// [`Database::apply_batch`]: crate::Database::apply_batch
    pub const STATEMENT_APPLY: &str = "engine.batch.statement_apply";
    /// Commit-time group validation (fires once per touched relation,
    /// possibly on a validation worker thread).
    pub const GROUP_VALIDATE: &str = "engine.batch.group_validate";
    /// Index maintenance: just before a row (and its index entries) lands
    /// or is removed on the forward DML path. Never fires during rollback.
    pub const INDEX_MAINTENANCE: &str = "engine.db.index_maintenance";
    /// The batch commit tail, after every deferred validation succeeded.
    pub const COMMIT: &str = "engine.batch.commit";
    /// A morsel worker in the query executor (fires once per morsel,
    /// possibly on a worker thread).
    pub const MORSEL_WORKER: &str = "engine.query.morsel_worker";
    /// A transient hash build in the query executor (fires once per build
    /// chunk, possibly on a build worker thread).
    pub const HASH_BUILD: &str = "engine.query.hash_build";
    /// Insertion of a finished transient build into the build-side cache
    /// (fires once per insert, before the cache is mutated).
    pub const BUILD_CACHE_INSERT: &str = "engine.query.build_cache_insert";
    /// Predicate optimization + pushdown planning (fires once per filtered
    /// query, before the root access path is chosen). A fire — error or
    /// panic — is *contained*: the executor abandons pushdown for that
    /// query and falls back to the legacy root-filter path, returning a
    /// byte-identical result (counted by
    /// `engine.query.pushdown.fallbacks`).
    pub const PUSHDOWN: &str = "engine.query.pushdown";
    /// The catalog-rewrite phase of an online migration
    /// ([`Database::migrate`]): fires once, after the pre-migration
    /// snapshot is taken but before the live catalog is swapped.
    ///
    /// [`Database::migrate`]: crate::Database::migrate
    pub const MIGRATION_REWRITE: &str = "engine.migrate.rewrite";
    /// The data-apply phase of an online migration: fires once per
    /// statement chunk, before that chunk's `apply_batch` runs.
    pub const MIGRATION_APPLY: &str = "engine.migrate.apply";
    /// A write-ahead-log append, on a durable database (fires once per
    /// committed batch / migration record, *before* any bytes are
    /// written). A fire fails the commit, which rolls back through the
    /// ordinary undo path — nothing un-logged ever becomes visible.
    pub const WAL_APPEND: &str = "engine.wal.append";
    /// A periodic snapshot install (fires once per due snapshot, before
    /// the snapshot file is written). A fire — error or panic — is
    /// *contained*: the triggering batch stays committed and durable in
    /// the log; only the log truncation is forgone (counted by
    /// `engine.wal.snapshot_failures`).
    pub const SNAPSHOT_WRITE: &str = "engine.snapshot.write";
    /// Record replay inside [`Database::recover`] (fires once per valid
    /// WAL record, before that record is applied). A fire aborts the
    /// recovery attempt before anything on disk has been modified, so a
    /// retry starts from the same bytes and succeeds.
    ///
    /// [`Database::recover`]: crate::Database::recover
    pub const RECOVERY_REPLAY: &str = "engine.recovery.replay";
    /// Snapshot pin inside [`Session::pin`] (fires once per pin, before
    /// the version vector is captured). A fire — error or panic — is
    /// *contained* to that pin attempt: the session returns a typed error,
    /// the store is untouched, and the next pin succeeds.
    ///
    /// [`Session::pin`]: crate::session::Session::pin
    pub const SESSION_SNAPSHOT: &str = "engine.session.snapshot";
    /// Entry of the serialized writer section (fires once per write
    /// attempt routed through a [`Store`], while the writer lock is held
    /// but before the mutation closure runs). A fire fails that commit
    /// with a typed error; the master state is untouched, the commit
    /// sequence does not advance, and concurrently-pinned readers are
    /// unaffected.
    ///
    /// [`Store`]: crate::session::Store
    pub const WRITER_COMMIT: &str = "engine.writer.commit";

    /// The sites on the multi-session path (snapshot pin, serialized
    /// writer commit), in firing order.
    pub const SESSION: &[&str] = &[SESSION_SNAPSHOT, WRITER_COMMIT];
    /// The sites on the batched-DML path, in firing order.
    pub const BATCH: &[&str] = &[STATEMENT_APPLY, INDEX_MAINTENANCE, GROUP_VALIDATE, COMMIT];
    /// The sites on the query-execution path, in firing order.
    pub const QUERY: &[&str] = &[PUSHDOWN, HASH_BUILD, BUILD_CACHE_INSERT, MORSEL_WORKER];
    /// The sites on the online-migration path, in firing order.
    pub const MIGRATION: &[&str] = &[MIGRATION_REWRITE, MIGRATION_APPLY];
    /// The sites on the durability path (WAL append, snapshot install,
    /// recovery replay), in firing order over a crash-recover cycle.
    pub const DURABILITY: &[&str] = &[WAL_APPEND, SNAPSHOT_WRITE, RECOVERY_REPLAY];
    /// Every site.
    pub const ALL: &[&str] = &[
        STATEMENT_APPLY,
        INDEX_MAINTENANCE,
        GROUP_VALIDATE,
        COMMIT,
        PUSHDOWN,
        MORSEL_WORKER,
        HASH_BUILD,
        BUILD_CACHE_INSERT,
        MIGRATION_REWRITE,
        MIGRATION_APPLY,
        WAL_APPEND,
        SNAPSHOT_WRITE,
        RECOVERY_REPLAY,
        SESSION_SNAPSHOT,
        WRITER_COMMIT,
    ];
}

/// How an armed site fails when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Return [`Error::Injected`] from the site.
    Error,
    /// Panic at the site (exercising the engine's `catch_unwind` armor).
    Panic,
}

impl FaultMode {
    /// Short label (`"error"` / `"panic"`), used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultMode::Error => "error",
            FaultMode::Panic => "panic",
        }
    }
}

/// One armed site: fires on its `nth` (0-based) arrival, exactly once.
#[derive(Debug)]
struct Arm {
    site: String,
    nth: u64,
    mode: FaultMode,
    hits: AtomicU64,
    fired: AtomicU64,
}

/// A deterministic fault plan: a set of armed sites, each of which fires
/// on a specific arrival count. Counters are atomic so sites can fire from
/// `&self` contexts (validation and morsel worker threads included), and
/// the plan is installed behind an [`Arc`](std::sync::Arc) so the caller
/// keeps a handle to inspect [`hits`](FaultPlan::hits) and
/// [`fired`](FaultPlan::fired) after the run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    arms: Vec<Arm>,
}

/// One step of the splitmix64 sequence — the plan's own seed expander, so
/// the engine needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no site armed).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms `site` to fire `mode` on its `nth` (0-based) arrival.
    #[must_use]
    pub fn fail_at(mut self, site: &str, nth: u64, mode: FaultMode) -> Self {
        self.arms.push(Arm {
            site: site.to_owned(),
            nth,
            mode,
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
        self
    }

    /// A single-arm plan derived deterministically from `seed`: picks one
    /// of `sites`, an arrival count below `max_nth`, and a mode. The same
    /// seed always yields the same plan — the property-test entry point.
    #[must_use]
    pub fn seeded(seed: u64, sites: &[&str], max_nth: u64) -> Self {
        let mut s = seed;
        let site = if sites.is_empty() {
            site::STATEMENT_APPLY
        } else {
            sites[(splitmix64(&mut s) % sites.len() as u64) as usize]
        };
        let nth = splitmix64(&mut s) % max_nth.max(1);
        let mode = if splitmix64(&mut s).is_multiple_of(2) {
            FaultMode::Error
        } else {
            FaultMode::Panic
        };
        FaultPlan::new().fail_at(site, nth, mode)
    }

    /// The armed `(site, nth, mode)` triples, for reporting.
    #[must_use]
    pub fn arms(&self) -> Vec<(&str, u64, FaultMode)> {
        self.arms
            .iter()
            .map(|a| (a.site.as_str(), a.nth, a.mode))
            .collect()
    }

    /// Called by the engine each time execution reaches `site`. Counts the
    /// arrival and, when an arm's trigger count is reached, fires it:
    /// returns [`Error::Injected`] or panics, per the arm's mode.
    pub(crate) fn check(&self, site: &str) -> Result<()> {
        for arm in self.arms.iter().filter(|a| a.site == site) {
            let arrival = arm.hits.fetch_add(1, Ordering::Relaxed);
            if arrival == arm.nth {
                arm.fired.fetch_add(1, Ordering::Relaxed);
                obs::global()
                    .counter(&format!("engine.fault.fired.{site}"))
                    .inc();
                match arm.mode {
                    FaultMode::Error => {
                        return Err(Error::Injected {
                            site: site.to_owned(),
                        })
                    }
                    FaultMode::Panic => panic!("injected panic at site `{site}`"),
                }
            }
        }
        Ok(())
    }

    /// Times execution reached `site` (across all arms on it).
    #[must_use]
    pub fn hits(&self, site: &str) -> u64 {
        self.arms
            .iter()
            .filter(|a| a.site == site)
            .map(|a| a.hits.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Times an arm on `site` actually fired.
    #[must_use]
    pub fn fired(&self, site: &str) -> u64 {
        self.arms
            .iter()
            .filter(|a| a.site == site)
            .map(|a| a.fired.load(Ordering::Relaxed))
            .sum()
    }

    /// Total fires across every arm.
    #[must_use]
    pub fn total_fired(&self) -> u64 {
        self.arms
            .iter()
            .map(|a| a.fired.load(Ordering::Relaxed))
            .sum()
    }
}

/// Best-effort extraction of a panic payload's message (the engine's own
/// injected panics carry a `String`).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Resource limits for one query execution, checked cooperatively at
/// morsel boundaries (so enforcement granularity is
/// [`Database::morsel_rows`](crate::Database::morsel_rows)). The default
/// is unlimited; a tripped limit surfaces as [`Error::BudgetExceeded`]
/// carrying the partial progress (rows produced, morsels completed) in
/// its detail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    max_rows: Option<u64>,
    max_wall: Option<Duration>,
    max_build_bytes: Option<u64>,
    max_intermediate_bytes: Option<u64>,
}

impl QueryBudget {
    /// No limits — the default for every new database.
    #[must_use]
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Caps the rows a query may produce (root rows plus rows
    /// materialized per morsel) before it is cancelled.
    #[must_use]
    pub fn with_max_rows(mut self, rows: u64) -> Self {
        self.max_rows = Some(rows);
        self
    }

    /// Caps the query's wall time; the deadline starts when execution
    /// does and is checked before each morsel is claimed.
    #[must_use]
    pub fn with_max_wall(mut self, limit: Duration) -> Self {
        self.max_wall = Some(limit);
        self
    }

    /// Caps the approximate bytes of transient hash-build state a query
    /// may materialize (charged when a build finishes, including builds
    /// answered from the build-side cache — a cached build still occupies
    /// memory on the query's behalf).
    #[must_use]
    pub fn with_max_build_bytes(mut self, bytes: u64) -> Self {
        self.max_build_bytes = Some(bytes);
        self
    }

    /// Caps the approximate bytes of *all* intermediate state a query may
    /// materialize: slot rows flowing between joins, rows materialized
    /// out of morsels, and transient hash builds. A superset of
    /// [`with_max_build_bytes`](QueryBudget::with_max_build_bytes) —
    /// the full memory budget over intermediate rows. Charged when each
    /// build finishes and as each morsel completes.
    #[must_use]
    pub fn with_max_intermediate_bytes(mut self, bytes: u64) -> Self {
        self.max_intermediate_bytes = Some(bytes);
        self
    }

    /// Whether all limits are absent.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_rows.is_none()
            && self.max_wall.is_none()
            && self.max_build_bytes.is_none()
            && self.max_intermediate_bytes.is_none()
    }

    /// The row cap, if any.
    #[must_use]
    pub fn max_rows(&self) -> Option<u64> {
        self.max_rows
    }

    /// The wall-time cap, if any.
    #[must_use]
    pub fn max_wall(&self) -> Option<Duration> {
        self.max_wall
    }

    /// The approximate hash-build memory cap, if any.
    #[must_use]
    pub fn max_build_bytes(&self) -> Option<u64> {
        self.max_build_bytes
    }

    /// The approximate total-intermediate-memory cap, if any.
    #[must_use]
    pub fn max_intermediate_bytes(&self) -> Option<u64> {
        self.max_intermediate_bytes
    }

    /// Starts tracking one execution against this budget.
    pub(crate) fn start(&self) -> BudgetTracker {
        BudgetTracker {
            max_rows: self.max_rows,
            deadline: self.max_wall.map(|d| Instant::now() + d),
            max_build_bytes: self.max_build_bytes,
            max_intermediate_bytes: self.max_intermediate_bytes,
            rows: AtomicU64::new(0),
            morsels: AtomicU64::new(0),
            build_bytes: AtomicU64::new(0),
            intermediate_bytes: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }
}

/// Shared per-execution budget state: workers charge rows as morsels
/// complete and poll [`checkpoint`](BudgetTracker::checkpoint) before
/// claiming the next one, so one tripped worker cancels the rest
/// cooperatively.
pub(crate) struct BudgetTracker {
    max_rows: Option<u64>,
    deadline: Option<Instant>,
    max_build_bytes: Option<u64>,
    max_intermediate_bytes: Option<u64>,
    rows: AtomicU64,
    morsels: AtomicU64,
    build_bytes: AtomicU64,
    intermediate_bytes: AtomicU64,
    tripped: AtomicBool,
}

impl BudgetTracker {
    fn exceeded(&self, why: String) -> Error {
        self.tripped.store(true, Ordering::Relaxed);
        Error::BudgetExceeded {
            detail: format!(
                "{why} ({} rows produced across {} completed morsels)",
                self.rows.load(Ordering::Relaxed),
                self.morsels.load(Ordering::Relaxed)
            ),
        }
    }

    /// Cheap poll: fails once another worker tripped the budget or the
    /// deadline passed.
    pub(crate) fn checkpoint(&self) -> Result<()> {
        if self.tripped.load(Ordering::Relaxed) {
            return Err(self.exceeded("budget tripped by another worker".to_owned()));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.exceeded("wall-time deadline passed".to_owned()));
            }
        }
        Ok(())
    }

    /// Charges `rows` produced outside any morsel (the root access).
    pub(crate) fn charge_rows(&self, rows: u64) -> Result<()> {
        let total = self.rows.fetch_add(rows, Ordering::Relaxed) + rows;
        match self.max_rows {
            Some(cap) if total > cap => Err(self.exceeded(format!("row cap {cap} exceeded"))),
            _ => Ok(()),
        }
    }

    /// Charges one completed morsel that materialized `rows` rows.
    pub(crate) fn charge_morsel(&self, rows: u64) -> Result<()> {
        self.morsels.fetch_add(1, Ordering::Relaxed);
        self.charge_rows(rows)
    }

    /// Charges `bytes` of approximate transient hash-build memory. Build
    /// bytes are intermediate bytes too, so both caps see the charge.
    pub(crate) fn charge_build_bytes(&self, bytes: u64) -> Result<()> {
        let total = self.build_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(cap) = self.max_build_bytes {
            if total > cap {
                return Err(self.exceeded(format!(
                    "build-memory cap {cap} exceeded ({total} approximate bytes built)"
                )));
            }
        }
        self.charge_intermediate_bytes(bytes)
    }

    /// Charges `bytes` of approximate intermediate-row memory (slot rows,
    /// materialized rows, hash builds).
    pub(crate) fn charge_intermediate_bytes(&self, bytes: u64) -> Result<()> {
        let total = self.intermediate_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        match self.max_intermediate_bytes {
            Some(cap) if total > cap => Err(self.exceeded(format!(
                "intermediate-memory cap {cap} exceeded ({total} approximate bytes materialized)"
            ))),
            _ => Ok(()),
        }
    }
}

/// Which invariant class an [`IntegrityViolation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityKind {
    /// A table's live-row count disagrees with its stored rows.
    RowAccounting,
    /// A unique (candidate-key) index disagrees with the base rows, or a
    /// key value occurs twice.
    UniqueIndex,
    /// A secondary lookup index disagrees with the base rows.
    LookupIndex,
    /// A null constraint (NNA/NS/NE/TE) does not hold on the stored rows.
    NullConstraint,
    /// An inclusion dependency does not hold between the stored relations.
    InclusionDependency,
}

impl std::fmt::Display for IntegrityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IntegrityKind::RowAccounting => "row-accounting",
            IntegrityKind::UniqueIndex => "unique-index",
            IntegrityKind::LookupIndex => "lookup-index",
            IntegrityKind::NullConstraint => "null-constraint",
            IntegrityKind::InclusionDependency => "inclusion-dependency",
        })
    }
}

/// One invariant the deep checker found broken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityViolation {
    /// The relation the violation was detected in.
    pub relation: String,
    /// The invariant class broken.
    pub kind: IntegrityKind,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] `{}`: {}", self.kind, self.relation, self.detail)
    }
}

/// The structured output of
/// [`Database::verify_integrity`](crate::Database::verify_integrity): every
/// violation found, plus how much checking was done (so "clean" is
/// distinguishable from "checked nothing").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Every broken invariant found.
    pub violations: Vec<IntegrityViolation>,
    /// Relations examined.
    pub relations_checked: usize,
    /// Null-constraint and inclusion-dependency group checks performed.
    pub constraints_checked: usize,
    /// Index entries cross-checked against base rows.
    pub index_entries_checked: u64,
}

impl IntegrityReport {
    /// Whether no violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for IntegrityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "integrity: {} violation(s); {} relations, {} constraint checks, {} index entries",
            self.violations.len(),
            self.relations_checked,
            self.constraints_checked,
            self.index_entries_checked
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_on_nth_arrival_exactly_once() {
        let plan = FaultPlan::new().fail_at(site::COMMIT, 2, FaultMode::Error);
        assert!(plan.check(site::COMMIT).is_ok());
        assert!(plan.check(site::COMMIT).is_ok());
        let err = plan.check(site::COMMIT).unwrap_err();
        assert!(matches!(err, Error::Injected { ref site } if site == site::COMMIT));
        assert!(plan.check(site::COMMIT).is_ok(), "fires exactly once");
        assert_eq!(plan.hits(site::COMMIT), 4);
        assert_eq!(plan.fired(site::COMMIT), 1);
        assert_eq!(plan.total_fired(), 1);
        // Other sites are unaffected.
        assert!(plan.check(site::STATEMENT_APPLY).is_ok());
        assert_eq!(plan.fired(site::STATEMENT_APPLY), 0);
    }

    #[test]
    fn panic_mode_panics_with_site_message() {
        let plan = FaultPlan::new().fail_at(site::GROUP_VALIDATE, 0, FaultMode::Panic);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.check(site::GROUP_VALIDATE)
        }));
        let msg = panic_message(caught.unwrap_err());
        assert!(msg.contains(site::GROUP_VALIDATE), "{msg}");
        assert_eq!(plan.fired(site::GROUP_VALIDATE), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_inputs() {
        let plan_a = FaultPlan::seeded(42, site::ALL, 10);
        let plan_b = FaultPlan::seeded(42, site::ALL, 10);
        let a = plan_a.arms();
        assert_eq!(a, plan_b.arms());
        let (s, nth, _) = a[0];
        assert!(site::ALL.contains(&s));
        assert!(nth < 10);
        // Different seeds eventually pick different sites and modes.
        let distinct: std::collections::BTreeSet<String> = (0..64)
            .map(|seed| {
                let plan = FaultPlan::seeded(seed, site::ALL, 10);
                let (s, _, m) = plan.arms()[0];
                format!("{s}/{}", m.label())
            })
            .collect();
        assert!(distinct.len() > 4, "{distinct:?}");
        // Degenerate inputs stay total.
        let plan = FaultPlan::seeded(7, &[], 0);
        assert_eq!(plan.arms()[0].1, 0);
    }

    #[test]
    fn budget_tracker_trips_row_cap_and_cancels_peers() {
        let budget = QueryBudget::unlimited().with_max_rows(10);
        assert!(!budget.is_unlimited());
        assert_eq!(budget.max_rows(), Some(10));
        let tracker = budget.start();
        assert!(tracker.checkpoint().is_ok());
        assert!(tracker.charge_morsel(6).is_ok());
        let err = tracker.charge_morsel(5).unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { ref detail } if detail.contains("row cap")));
        // Peers see the trip at their next checkpoint.
        assert!(tracker.checkpoint().is_err());
    }

    #[test]
    fn budget_tracker_trips_build_byte_cap() {
        let budget = QueryBudget::unlimited().with_max_build_bytes(1_000);
        assert!(!budget.is_unlimited());
        assert_eq!(budget.max_build_bytes(), Some(1_000));
        let tracker = budget.start();
        assert!(tracker.charge_build_bytes(900).is_ok());
        let err = tracker.charge_build_bytes(200).unwrap_err();
        assert!(
            matches!(err, Error::BudgetExceeded { ref detail } if detail.contains("build-memory")),
            "{err}"
        );
        assert!(tracker.checkpoint().is_err(), "peers see the trip");
    }

    #[test]
    fn budget_tracker_trips_intermediate_byte_cap() {
        let budget = QueryBudget::unlimited().with_max_intermediate_bytes(1_000);
        assert!(!budget.is_unlimited());
        assert_eq!(budget.max_intermediate_bytes(), Some(1_000));
        let tracker = budget.start();
        assert!(tracker.charge_intermediate_bytes(600).is_ok());
        // Build bytes count toward the intermediate cap as well.
        let err = tracker.charge_build_bytes(500).unwrap_err();
        assert!(
            matches!(err, Error::BudgetExceeded { ref detail } if detail.contains("intermediate-memory")),
            "{err}"
        );
        assert!(tracker.checkpoint().is_err(), "peers see the trip");
        // The build cap alone does not charge the intermediate pool past
        // its own limit check order: a pure intermediate charge can trip
        // while the build cap stays untouched.
        let tracker = QueryBudget::unlimited()
            .with_max_intermediate_bytes(100)
            .start();
        assert!(tracker.charge_intermediate_bytes(101).is_err());
    }

    #[test]
    fn budget_tracker_enforces_deadline() {
        let tracker = QueryBudget::unlimited()
            .with_max_wall(Duration::ZERO)
            .start();
        let err = tracker.checkpoint().unwrap_err();
        assert!(
            matches!(err, Error::BudgetExceeded { ref detail } if detail.contains("deadline")),
            "{err}"
        );
        // Unlimited budgets never trip.
        let free = QueryBudget::unlimited().start();
        assert!(free.charge_morsel(u64::MAX / 2).is_ok());
        assert!(free.checkpoint().is_ok());
    }

    #[test]
    fn integrity_report_renders() {
        let mut report = IntegrityReport {
            relations_checked: 3,
            constraints_checked: 5,
            index_entries_checked: 9,
            ..IntegrityReport::default()
        };
        assert!(report.is_clean());
        report.violations.push(IntegrityViolation {
            relation: "COURSE_M".to_owned(),
            kind: IntegrityKind::UniqueIndex,
            detail: "slot 3 missing from key index".to_owned(),
        });
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("1 violation"), "{text}");
        assert!(text.contains("unique-index"), "{text}");
        assert!(text.contains("COURSE_M"), "{text}");
    }
}
