//! A small query executor with cost counters.
//!
//! The point (paper §1): *"decreasing the number of relations in a database
//! by merging relations reduces the need for joining relations, and usually
//! results in a better access performance."* The executor runs the same
//! logical retrieval against merged and unmerged schemas — a point lookup
//! or scan over a single merged relation versus an N-way join — and counts
//! the rows and index probes each needs, so the benches can report the
//! speedup *shape* the paper asserts.
//!
//! [`Database::execute_traced`] additionally returns a [`QueryTrace`]: an
//! EXPLAIN-ANALYZE-style operator breakdown (rows in/out, index probes,
//! rows scanned, wall time per access/join/filter/project step) whose
//! per-operator counters sum exactly to the [`QueryStats`] totals.

use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::Instant;

use relmerge_obs::{self as obs};
use relmerge_relational::{Attribute, Error, Relation, Result, Tuple, Value};

use crate::database::Database;

/// A selection predicate over the attributes visible at its evaluation
/// point (the joined row, before projection). Three-valued logic is not
/// modelled: `Eq` on a null operand is simply false (`IsNull` exists for
/// null tests), matching the engine's identical-nulls regime.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `attr = value` (false when the attribute is null, unless the value
    /// itself is the null literal).
    Eq(String, Value),
    /// `attr IS NULL`.
    IsNull(String),
    /// `attr IS NOT NULL`.
    NotNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr = value`.
    pub fn eq(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Eq(attr.into(), value.into())
    }

    /// `attr IS NULL`.
    pub fn is_null(attr: impl Into<String>) -> Self {
        Predicate::IsNull(attr.into())
    }

    /// `attr IS NOT NULL`.
    pub fn not_null(attr: impl Into<String>) -> Self {
        Predicate::NotNull(attr.into())
    }

    /// `self AND other`.
    #[must_use]
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    #[must_use]
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates against a tuple under `header`.
    pub fn eval(&self, header: &[Attribute], t: &Tuple) -> Result<bool> {
        let pos = |attr: &str| -> Result<usize> {
            header
                .iter()
                .position(|a| a.name() == attr)
                .ok_or_else(|| Error::UnknownAttribute {
                    attribute: attr.to_owned(),
                    context: "predicate".to_owned(),
                })
        };
        Ok(match self {
            Predicate::Eq(attr, value) => t.get(pos(attr)?) == value,
            Predicate::IsNull(attr) => t.get(pos(attr)?).is_null(),
            Predicate::NotNull(attr) => !t.get(pos(attr)?).is_null(),
            Predicate::And(a, b) => a.eval(header, t)? && b.eval(header, t)?,
            Predicate::Or(a, b) => a.eval(header, t)? || b.eval(header, t)?,
            Predicate::Not(a) => !a.eval(header, t)?,
        })
    }
}

/// Counters accumulated by one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Rows read by scans.
    pub rows_scanned: u64,
    /// Hash-index probes.
    pub index_probes: u64,
    /// Join steps performed.
    pub joins: u64,
    /// Rows in the result.
    pub rows_output: u64,
}

impl QueryStats {
    /// Folds `other` into `self` field-wise (`rows_output` adds too, which
    /// is the useful reading when aggregating a batch of queries).
    pub fn merge(&mut self, other: &QueryStats) {
        *self += *other;
    }
}

impl AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.rows_scanned += rhs.rows_scanned;
        self.index_probes += rhs.index_probes;
        self.joins += rhs.joins;
        self.rows_output += rhs.rows_output;
    }
}

impl Add for QueryStats {
    type Output = QueryStats;

    fn add(mut self, rhs: QueryStats) -> QueryStats {
        self += rhs;
        self
    }
}

/// How the root relation of a plan is accessed.
#[derive(Debug, Clone)]
pub enum Access {
    /// Read every row.
    FullScan,
    /// Fetch the rows matching `key` over `attrs` (index probe where an
    /// index exists).
    Lookup {
        /// Attribute names of the lookup key.
        attrs: Vec<String>,
        /// The key value.
        key: Tuple,
    },
}

/// One join step: probe `rel` with the values of `left_attrs` from the
/// running result, matching `right_attrs` in `rel`.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// The relation to join in.
    pub rel: String,
    /// Join attributes in the running result.
    pub left_attrs: Vec<String>,
    /// Join attributes in `rel`.
    pub right_attrs: Vec<String>,
    /// `true` keeps unmatched left rows padded with nulls (the outer join
    /// a merged relation encodes implicitly).
    pub outer: bool,
    /// The inclusion dependency that justified deriving this join, when the
    /// planner produced it (notation form, e.g. `OFFER[O.K] ⊆ COURSE[C.K]`).
    pub via_ind: Option<String>,
}

impl JoinStep {
    /// An inner-join step.
    pub fn inner(rel: impl Into<String>, left: &[&str], right: &[&str]) -> Self {
        JoinStep {
            rel: rel.into(),
            left_attrs: left.iter().map(|s| (*s).to_owned()).collect(),
            right_attrs: right.iter().map(|s| (*s).to_owned()).collect(),
            outer: false,
            via_ind: None,
        }
    }

    /// A left-outer-join step.
    pub fn outer(rel: impl Into<String>, left: &[&str], right: &[&str]) -> Self {
        let mut step = Self::inner(rel, left, right);
        step.outer = true;
        step
    }

    /// Records the inclusion dependency that justified this join.
    #[must_use]
    pub fn via(mut self, ind: impl Into<String>) -> Self {
        self.via_ind = Some(ind.into());
        self
    }
}

/// A left-deep query plan: access the root, then fold join steps, then
/// optionally project.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The root relation.
    pub root: String,
    /// Root access path.
    pub access: Access,
    /// Join steps, applied left to right.
    pub joins: Vec<JoinStep>,
    /// Selection applied to the joined rows, before projection.
    pub filter: Option<Predicate>,
    /// Output attributes (empty = all).
    pub project: Vec<String>,
}

impl QueryPlan {
    /// A full-scan plan over one relation.
    pub fn scan(root: impl Into<String>) -> Self {
        QueryPlan {
            root: root.into(),
            access: Access::FullScan,
            joins: Vec::new(),
            filter: None,
            project: Vec::new(),
        }
    }

    /// A key-lookup plan over one relation.
    pub fn lookup(root: impl Into<String>, attrs: &[&str], key: Tuple) -> Self {
        QueryPlan {
            root: root.into(),
            access: Access::Lookup {
                attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
                key,
            },
            joins: Vec::new(),
            filter: None,
            project: Vec::new(),
        }
    }

    /// Appends a join step.
    #[must_use]
    pub fn join(mut self, step: JoinStep) -> Self {
        self.joins.push(step);
        self
    }

    /// Sets the output projection.
    #[must_use]
    pub fn select(mut self, attrs: &[&str]) -> Self {
        self.project = attrs.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Sets the selection predicate (applied after joins, before
    /// projection).
    #[must_use]
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filter = Some(predicate);
        self
    }
}

/// What one operator in a [`QueryTrace`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Root full scan.
    Scan,
    /// Root index lookup.
    Lookup,
    /// One index-nested-loop join step.
    Join,
    /// Selection predicate.
    Filter,
    /// Output projection.
    Project,
}

/// Per-operator counters in an EXPLAIN-ANALYZE trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Rows flowing into the operator.
    pub rows_in: u64,
    /// Rows flowing out of the operator.
    pub rows_out: u64,
    /// Rows this operator read by scanning.
    pub rows_scanned: u64,
    /// Hash-index probes this operator issued.
    pub index_probes: u64,
    /// Wall time spent in this operator.
    pub wall_ns: u64,
}

/// One operator of an executed plan, with its measured cost.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// The operator kind.
    pub kind: OpKind,
    /// Human-readable label, e.g. `Lookup COURSE [C.K]`.
    pub label: String,
    /// Measured counters.
    pub stats: OpStats,
}

/// An EXPLAIN-ANALYZE-style breakdown of one query execution: the
/// operators in execution order (root access first), each with rows
/// in/out, probes, scanned rows, and wall time. [`QueryTrace::totals`]
/// reconstructs the [`QueryStats`] the run reported — the per-operator
/// counters sum exactly to them.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Operators in execution order.
    pub ops: Vec<OpTrace>,
}

impl QueryTrace {
    /// Total wall time across operators.
    #[must_use]
    pub fn wall_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.stats.wall_ns).sum()
    }

    /// The [`QueryStats`] equivalent of this trace: scanned rows and index
    /// probes sum over operators, `joins` counts the join operators, and
    /// `rows_output` is the last operator's output cardinality.
    #[must_use]
    pub fn totals(&self) -> QueryStats {
        QueryStats {
            rows_scanned: self.ops.iter().map(|o| o.stats.rows_scanned).sum(),
            index_probes: self.ops.iter().map(|o| o.stats.index_probes).sum(),
            joins: self.ops.iter().filter(|o| o.kind == OpKind::Join).count() as u64,
            rows_output: self.ops.last().map_or(0, |o| o.stats.rows_out),
        }
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for QueryTrace {
    /// EXPLAIN-ANALYZE layout: the outermost (last-executed) operator
    /// first, each input indented below it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (indent, op) in self.ops.iter().rev().enumerate() {
            let s = &op.stats;
            write!(
                f,
                "{}{}  (rows_in={} rows_out={}",
                "  ".repeat(indent),
                op.label,
                s.rows_in,
                s.rows_out
            )?;
            if s.index_probes > 0 {
                write!(f, " probes={}", s.index_probes)?;
            }
            if s.rows_scanned > 0 {
                write!(f, " scanned={}", s.rows_scanned)?;
            }
            writeln!(f, " time={})", format_ns(s.wall_ns))?;
        }
        Ok(())
    }
}

/// Collects per-operator measurements by diffing the running stats around
/// each operator, so the operator counters sum exactly to the totals.
struct OpRecorder {
    trace: QueryTrace,
    before: QueryStats,
    started: Instant,
}

impl OpRecorder {
    fn start(stats: &QueryStats) -> OpRecorder {
        OpRecorder {
            trace: QueryTrace::default(),
            before: *stats,
            started: Instant::now(),
        }
    }

    /// Closes the current operator and opens the next.
    fn finish_op(
        &mut self,
        kind: OpKind,
        label: String,
        rows_in: u64,
        rows_out: u64,
        stats: &QueryStats,
    ) {
        let wall_ns = obs::elapsed_ns(self.started);
        self.trace.ops.push(OpTrace {
            kind,
            label,
            stats: OpStats {
                rows_in,
                rows_out,
                rows_scanned: stats.rows_scanned - self.before.rows_scanned,
                index_probes: stats.index_probes - self.before.index_probes,
                wall_ns,
            },
        });
        self.before = *stats;
        self.started = Instant::now();
    }
}

impl Database {
    /// Executes `plan`, returning the result relation and the cost
    /// counters.
    pub fn execute(&self, plan: &QueryPlan) -> Result<(Relation, QueryStats)> {
        let (relation, stats, _) = execute_impl(self, plan, false)?;
        Ok((relation, stats))
    }

    /// Executes `plan` like [`Database::execute`], additionally returning
    /// an EXPLAIN-ANALYZE-style [`QueryTrace`] whose per-operator counters
    /// sum to the returned [`QueryStats`].
    pub fn execute_traced(&self, plan: &QueryPlan) -> Result<(Relation, QueryStats, QueryTrace)> {
        let (relation, stats, trace) = execute_impl(self, plan, true)?;
        Ok((relation, stats, trace.expect("tracing requested")))
    }
}

/// Free-function form of [`Database::execute`], kept for source
/// compatibility.
#[deprecated(
    since = "0.1.0",
    note = "call the inherent `Database::execute` instead"
)]
pub fn execute(db: &Database, plan: &QueryPlan) -> Result<(Relation, QueryStats)> {
    db.execute(plan)
}

/// Free-function form of [`Database::execute_traced`], kept for source
/// compatibility.
#[deprecated(
    since = "0.1.0",
    note = "call the inherent `Database::execute_traced` instead"
)]
pub fn execute_traced(
    db: &Database,
    plan: &QueryPlan,
) -> Result<(Relation, QueryStats, QueryTrace)> {
    db.execute_traced(plan)
}

fn execute_impl(
    db: &Database,
    plan: &QueryPlan,
    traced: bool,
) -> Result<(Relation, QueryStats, Option<QueryTrace>)> {
    let mut span = obs::span("engine.query.execute");
    span.add_field("root", &plan.root);
    span.add_field("joins", plan.joins.len());
    let mut stats = QueryStats::default();
    let mut recorder = traced.then(|| OpRecorder::start(&stats));
    // Root access.
    let mut header: Vec<Attribute> = db.header(&plan.root)?.to_vec();
    let mut rows: Vec<Tuple> = match &plan.access {
        Access::FullScan => {
            let (_, scanned) = db.scan(&plan.root)?;
            stats.rows_scanned += scanned.len() as u64;
            scanned.into_iter().cloned().collect()
        }
        Access::Lookup { attrs, key } => db.probe(&plan.root, attrs, key, &mut stats)?,
    };
    if let Some(rec) = recorder.as_mut() {
        let (kind, label) = match &plan.access {
            Access::FullScan => (OpKind::Scan, format!("Scan {}", plan.root)),
            Access::Lookup { attrs, .. } => (
                OpKind::Lookup,
                format!("Lookup {} [{}]", plan.root, attrs.join(",")),
            ),
        };
        rec.finish_op(kind, label, 0, rows.len() as u64, &stats);
    }
    // Join steps: index-nested-loop through the database's indexes.
    for step in &plan.joins {
        let rows_in = rows.len() as u64;
        stats.joins += 1;
        let right_header = db.header(&step.rel)?;
        let mut next: Vec<Tuple> = Vec::new();
        let left_pos: Vec<usize> = step
            .left_attrs
            .iter()
            .map(|n| {
                header
                    .iter()
                    .position(|a| a.name() == n.as_str())
                    .ok_or_else(|| Error::UnknownAttribute {
                        attribute: n.clone(),
                        context: format!("join input of `{}`", step.rel),
                    })
            })
            .collect::<Result<_>>()?;
        let pad = Tuple::nulls(right_header.len());
        for left in &rows {
            if !left.is_total_at(&left_pos) {
                if step.outer {
                    next.push(left.concat(&pad));
                }
                continue;
            }
            let key = left.project(&left_pos);
            let matches = db.probe(&step.rel, &step.right_attrs, &key, &mut stats)?;
            if matches.is_empty() {
                if step.outer {
                    next.push(left.concat(&pad));
                }
            } else {
                for m in &matches {
                    next.push(left.concat(m));
                }
            }
        }
        header.extend(right_header.iter().cloned());
        rows = next;
        if let Some(rec) = recorder.as_mut() {
            let mut label = format!(
                "{} {} ON {}={}",
                if step.outer { "OuterJoin" } else { "Join" },
                step.rel,
                step.left_attrs.join(","),
                step.right_attrs.join(",")
            );
            if let Some(ind) = &step.via_ind {
                label.push_str(" via ");
                label.push_str(ind);
            }
            rec.finish_op(OpKind::Join, label, rows_in, rows.len() as u64, &stats);
        }
    }
    // Selection.
    if let Some(predicate) = &plan.filter {
        let rows_in = rows.len() as u64;
        let mut kept = Vec::with_capacity(rows.len());
        for t in rows {
            if predicate.eval(&header, &t)? {
                kept.push(t);
            }
        }
        rows = kept;
        if let Some(rec) = recorder.as_mut() {
            rec.finish_op(
                OpKind::Filter,
                "Filter".to_owned(),
                rows_in,
                rows.len() as u64,
                &stats,
            );
        }
    }
    // Projection.
    let rows_in = rows.len() as u64;
    let result = if plan.project.is_empty() {
        Relation::with_rows(header, rows)?
    } else {
        let wanted: Vec<&str> = plan.project.iter().map(String::as_str).collect();
        let full = Relation::with_rows(header, rows)?;
        relmerge_relational::algebra::project(&full, &wanted)?
    };
    stats.rows_output = result.len() as u64;
    if let Some(rec) = recorder.as_mut() {
        let label = if plan.project.is_empty() {
            "Project *".to_owned()
        } else {
            format!("Project [{}]", plan.project.join(","))
        };
        rec.finish_op(OpKind::Project, label, rows_in, result.len() as u64, &stats);
    }
    span.add_field("rows_out", stats.rows_output);
    Ok((result, stats, recorder.map(|r| r.trace)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::DbmsProfile;
    use relmerge_relational::{
        Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Value,
    };

    fn a(n: &str) -> Attribute {
        Attribute::new(n, Domain::Int)
    }

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
    }

    /// COURSE(C.K) ← OFFER(O.K → C.K, O.D).
    fn db() -> Database {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("COURSE", vec![a("C.K")], &["C.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("OFFER", vec![a("O.K"), a("O.D")], &["O.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("COURSE", &["C.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.K", "O.D"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("OFFER", &["O.K"], "COURSE", &["C.K"]))
            .unwrap();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        for k in 0..10 {
            db.insert("COURSE", tup(&[k])).unwrap();
            if k % 2 == 0 {
                db.insert("OFFER", tup(&[k, k * 100])).unwrap();
            }
        }
        db
    }

    #[test]
    fn full_scan_counts_rows() {
        let db = db();
        let (result, stats) = db.execute(&QueryPlan::scan("COURSE")).unwrap();
        assert_eq!(result.len(), 10);
        assert_eq!(stats.rows_scanned, 10);
        assert_eq!(stats.index_probes, 0);
    }

    #[test]
    fn key_lookup_uses_unique_index() {
        let db = db();
        let plan = QueryPlan::lookup("OFFER", &["O.K"], tup(&[4]));
        let (result, stats) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 1);
        assert!(result.contains(&tup(&[4, 400])));
        assert_eq!(stats.index_probes, 1);
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::inner("OFFER", &["C.K"], &["O.K"]));
        let (result, stats) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 5); // even courses only
        assert_eq!(stats.joins, 1);
        assert!(stats.index_probes >= 10); // one probe per outer row
    }

    #[test]
    fn outer_join_pads_with_nulls() {
        let db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]));
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 10);
        assert!(result.contains(&Tuple::new([Value::Int(1), Value::Null, Value::Null])));
    }

    #[test]
    fn projection_applies() {
        let db = db();
        let plan = QueryPlan::scan("OFFER").select(&["O.D"]);
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.attr_names(), ["O.D"]);
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn lookup_then_join_point_query() {
        // The canonical unmerged point query: course 4 with its offer.
        let db = db();
        let plan = QueryPlan::lookup("COURSE", &["C.K"], tup(&[4])).join(JoinStep::inner(
            "OFFER",
            &["C.K"],
            &["O.K"],
        ));
        let (result, stats) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(stats.index_probes, 2); // root lookup + join probe
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn predicate_filtering() {
        let db = db();
        // Offered courses with O.D = 400.
        let plan = QueryPlan::scan("OFFER").filter(Predicate::eq("O.D", 400i64));
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 1);
        assert!(result.contains(&tup(&[4, 400])));
        // Courses with no offer: outer join + IS NULL.
        let plan = QueryPlan::scan("COURSE")
            .join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]))
            .filter(Predicate::is_null("O.K"))
            .select(&["C.K"]);
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 5); // odd courses
        assert!(result.contains(&tup(&[3])));
        // Compound predicates.
        let plan = QueryPlan::scan("OFFER")
            .filter(Predicate::eq("O.K", 2i64).or(Predicate::eq("O.K", 4i64)));
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 2);
        let plan = QueryPlan::scan("OFFER")
            .filter(Predicate::not_null("O.K").and(Predicate::eq("O.K", 2i64).negate()));
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 4);
        // Unknown attribute errors.
        let plan = QueryPlan::scan("OFFER").filter(Predicate::eq("NOPE", 1i64));
        assert!(db.execute(&plan).is_err());
    }

    #[test]
    fn secondary_index_probe_avoids_scan() {
        // OFFER[O.K] appears on both sides of the IND, so a lookup index
        // exists on COURSE[C.K] (rhs) and OFFER[O.K] (lhs, also unique).
        // Probe COURSE by C.K via its unique index, and probe OFFER by a
        // non-key attribute set that only has a lookup index: use the IND
        // lhs attrs of a fresh schema with a non-key FK.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("P", vec![a("P.K")], &["P.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("C", vec![a("C.K"), a("C.FK")], &["C.K"]).unwrap())
            .unwrap();
        rs.add_ind(InclusionDep::new("C", &["C.FK"], "P", &["P.K"]))
            .unwrap();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        db.insert("P", tup(&[2])).unwrap();
        for k in 0..20 {
            db.insert("C", tup(&[k, 1 + (k % 2)])).unwrap();
        }
        // Probing C by its non-key FK column hits the secondary index —
        // no scan.
        let plan = QueryPlan::lookup("C", &["C.FK"], tup(&[1]));
        let (result, stats) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 10);
        assert_eq!(stats.rows_scanned, 0, "secondary index must be used");
        assert_eq!(stats.index_probes, 1);
        // Deleting a row keeps the index correct.
        db.delete_by_key("C", &tup(&[0])).unwrap();
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 9);
    }

    #[test]
    fn traced_execution_sums_to_stats() {
        let db = db();
        // Lookup → outer join → filter → project: every operator kind.
        let plan = QueryPlan::lookup("COURSE", &["C.K"], tup(&[4]))
            .join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]).via("OFFER[O.K] ⊆ COURSE[C.K]"))
            .filter(Predicate::not_null("O.D"))
            .select(&["O.D"]);
        let (result, stats, trace) = db.execute_traced(&plan).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(trace.totals(), stats, "operator counters sum to totals");
        assert_eq!(trace.ops.len(), 4);
        assert_eq!(trace.ops[0].kind, OpKind::Lookup);
        assert_eq!(trace.ops[1].kind, OpKind::Join);
        assert_eq!(trace.ops[2].kind, OpKind::Filter);
        assert_eq!(trace.ops[3].kind, OpKind::Project);
        assert!(trace.ops[1].label.contains("via OFFER[O.K] ⊆ COURSE[C.K]"));
        // The rendered form leads with the outermost operator.
        let text = trace.to_string();
        assert!(text.starts_with("Project [O.D]"), "{text}");
        assert!(text.contains("OuterJoin OFFER"), "{text}");
        // Traced and untraced runs agree.
        let (plain_result, plain_stats) = db.execute(&plan).unwrap();
        assert_eq!(plain_stats, stats);
        assert!(plain_result.set_eq_unordered(&result));
    }

    #[test]
    fn traced_scan_sums_to_stats() {
        let db = db();
        let (_, stats, trace) = db.execute_traced(&QueryPlan::scan("COURSE")).unwrap();
        assert_eq!(trace.totals(), stats);
        assert_eq!(trace.ops.len(), 2); // Scan + Project *
        assert_eq!(trace.ops[0].stats.rows_scanned, 10);
    }

    #[test]
    fn query_stats_add_and_merge() {
        let a = QueryStats {
            rows_scanned: 1,
            index_probes: 2,
            joins: 3,
            rows_output: 4,
        };
        let b = QueryStats {
            rows_scanned: 10,
            index_probes: 20,
            joins: 30,
            rows_output: 40,
        };
        let sum = a + b;
        assert_eq!(sum.rows_scanned, 11);
        assert_eq!(sum.rows_output, 44);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m, sum);
        let mut aa = a;
        aa += b;
        assert_eq!(aa, sum);
    }

    #[test]
    fn unknown_join_attr_errors() {
        let db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::inner("OFFER", &["NOPE"], &["O.K"]));
        assert!(db.execute(&plan).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_free_functions_still_work() {
        let db = db();
        let plan = QueryPlan::scan("COURSE");
        let (via_fn, fn_stats) = execute(&db, &plan).unwrap();
        let (via_method, method_stats) = db.execute(&plan).unwrap();
        assert!(via_fn.set_eq_unordered(&via_method));
        assert_eq!(fn_stats, method_stats);
        let (_, traced_stats, trace) = execute_traced(&db, &plan).unwrap();
        assert_eq!(traced_stats, method_stats);
        assert_eq!(trace.totals(), traced_stats);
    }
}
