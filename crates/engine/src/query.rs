//! A morsel-parallel query executor with cost counters.
//!
//! The point (paper §1): *"decreasing the number of relations in a database
//! by merging relations reduces the need for joining relations, and usually
//! results in a better access performance."* The executor runs the same
//! logical retrieval against merged and unmerged schemas — a point lookup
//! or scan over a single merged relation versus an N-way join — and counts
//! the rows and index probes each needs, so the benches can report the
//! speedup *shape* the paper asserts.
//!
//! # Execution model
//!
//! The root access produces *borrowed* row slots (no tuple is cloned on
//! the scan path). A predicate over root attributes alone is pushed down:
//! it runs before the join pipeline, morsel-parallel on the worker pool,
//! with survivors reassembled in chunk order. The join pipeline is then
//! compiled once: each step picks a strategy via
//! [`crate::planner::choose_join_strategy`] — index-nested-loop for small
//! left inputs with a covering index, hash join (borrowing an index, or
//! building a transient table via the partitioned parallel builder in
//! the crate-private `build` module, reused through the versioned
//! build-side cache)
//! otherwise — and any hash builds happen before fan-out so cost counters
//! are identical at every parallelism level, cache on or off. The root
//! rows are partitioned
//! into fixed-size morsels ([`Database::morsel_rows`]) claimed by up to
//! [`Database::parallelism`] scoped worker threads; intermediate rows are
//! arrays of borrowed slots, materialized exactly once per surviving row.
//! Morsel outputs are reassembled in morsel order, so the result is
//! deterministic and byte-identical to serial execution.
//!
//! [`Database::execute_traced`] additionally returns a [`QueryTrace`]: an
//! EXPLAIN-ANALYZE-style operator breakdown (rows in/out, index probes,
//! rows scanned, hash builds, wall time per access/join/filter/project
//! step) whose per-operator counters sum exactly to the [`QueryStats`]
//! totals — per-worker counters merge back into their operator.

use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, AddAssign};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use relmerge_obs::{self as obs};
use relmerge_relational::{Attribute, Error, Relation, Result, Tuple, Value};

use crate::build::{build_owned, BuildKey, OwnedBuild};
use crate::database::Database;
use crate::fault::{panic_message, site, BudgetTracker};
use crate::planner::{choose_build_parallelism, choose_join_strategy, JoinStrategy};

/// A selection predicate over the attributes visible at its evaluation
/// point (the joined row, before projection). Three-valued logic is not
/// modelled: `Eq` on a null operand is simply false (`IsNull` exists for
/// null tests), matching the engine's identical-nulls regime.
///
/// `Eq + Hash` are derived because the exact predicate pushed into a hash
/// build is part of the build-cache key (see `crate::build`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `attr = value` (false when the attribute is null, unless the value
    /// itself is the null literal).
    Eq(String, Value),
    /// `attr IS NULL`.
    IsNull(String),
    /// `attr IS NOT NULL`.
    NotNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr = value`.
    pub fn eq(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Eq(attr.into(), value.into())
    }

    /// `attr IS NULL`.
    pub fn is_null(attr: impl Into<String>) -> Self {
        Predicate::IsNull(attr.into())
    }

    /// `attr IS NOT NULL`.
    pub fn not_null(attr: impl Into<String>) -> Self {
        Predicate::NotNull(attr.into())
    }

    /// `self AND other`.
    #[must_use]
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    #[must_use]
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Compiles `self` once against `header` for repeated row evaluation.
    /// Convenience for [`CompiledPredicate::compile`].
    pub fn compile(&self, header: &[Attribute]) -> Result<CompiledPredicate> {
        CompiledPredicate::compile(self, header)
    }

    /// Evaluates against a tuple under `header`.
    #[deprecated(
        note = "compiles the predicate afresh on every call; compile once with \
                `Predicate::compile` and reuse `CompiledPredicate::matches` per row"
    )]
    pub fn eval(&self, header: &[Attribute], t: &Tuple) -> Result<bool> {
        Ok(self.compile(header)?.matches(t.values()))
    }
}

/// A [`Predicate`] with attribute positions resolved against a header,
/// so workers evaluate it on materialized value rows infallibly. Compile
/// once, evaluate per row — the per-tuple entry point
/// ([`Predicate::eval`]) re-resolved every attribute on every tuple and
/// is deprecated in its favor (`benches/pushdown.rs` measures the saved
/// work).
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    node: CompiledNode,
}

/// The resolved tree behind a [`CompiledPredicate`].
#[derive(Debug, Clone)]
enum CompiledNode {
    Eq(usize, Value),
    IsNull(usize),
    NotNull(usize),
    And(Box<CompiledNode>, Box<CompiledNode>),
    Or(Box<CompiledNode>, Box<CompiledNode>),
    Not(Box<CompiledNode>),
}

impl CompiledPredicate {
    /// Resolves every attribute of `p` against `header` (first match
    /// wins), failing with [`Error::UnknownAttribute`] on any miss.
    pub fn compile(p: &Predicate, header: &[Attribute]) -> Result<CompiledPredicate> {
        Ok(CompiledPredicate {
            node: CompiledNode::compile(p, header)?,
        })
    }

    /// Whether `row` (laid out per the compile-time header) satisfies the
    /// predicate.
    #[must_use]
    pub fn matches(&self, row: &[Value]) -> bool {
        self.node.matches(row)
    }
}

impl CompiledNode {
    fn compile(p: &Predicate, header: &[Attribute]) -> Result<CompiledNode> {
        let pos = |attr: &str| -> Result<usize> {
            header
                .iter()
                .position(|a| a.name() == attr)
                .ok_or_else(|| Error::UnknownAttribute {
                    attribute: attr.to_owned(),
                    context: "predicate".to_owned(),
                })
        };
        Ok(match p {
            Predicate::Eq(attr, value) => CompiledNode::Eq(pos(attr)?, value.clone()),
            Predicate::IsNull(attr) => CompiledNode::IsNull(pos(attr)?),
            Predicate::NotNull(attr) => CompiledNode::NotNull(pos(attr)?),
            Predicate::And(a, b) => CompiledNode::And(
                Box::new(Self::compile(a, header)?),
                Box::new(Self::compile(b, header)?),
            ),
            Predicate::Or(a, b) => CompiledNode::Or(
                Box::new(Self::compile(a, header)?),
                Box::new(Self::compile(b, header)?),
            ),
            Predicate::Not(a) => CompiledNode::Not(Box::new(Self::compile(a, header)?)),
        })
    }

    fn matches(&self, row: &[Value]) -> bool {
        match self {
            CompiledNode::Eq(pos, value) => row[*pos] == *value,
            CompiledNode::IsNull(pos) => row[*pos].is_null(),
            CompiledNode::NotNull(pos) => !row[*pos].is_null(),
            CompiledNode::And(a, b) => a.matches(row) && b.matches(row),
            CompiledNode::Or(a, b) => a.matches(row) || b.matches(row),
            CompiledNode::Not(a) => !a.matches(row),
        }
    }
}

/// Counters accumulated by one query execution. Identical at every
/// [`Database::parallelism`] level: join strategies and hash builds are
/// decided before fan-out, and per-morsel counters merge commutatively.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Rows read by scans (root scans, per-row scan fallbacks, and hash
    /// build-side scans).
    pub rows_scanned: u64,
    /// Hash-index probes issued by index-nested-loop steps and root
    /// lookups.
    pub index_probes: u64,
    /// Join steps performed.
    pub joins: u64,
    /// Rows in the result.
    pub rows_output: u64,
    /// Hash tables built (or borrowed from an index) as join build sides.
    pub hash_builds: u64,
    /// Morsels the root rows were partitioned into.
    pub morsels: u64,
    /// Approximate bytes of intermediate state this query materialized:
    /// borrowed slot rows emitted by join steps, transient hash builds,
    /// and the materialized output rows. Deterministic at every
    /// parallelism level and identical whether a build ran cold or came
    /// from the cache.
    pub intermediate_bytes: u64,
    /// The largest single-operator contribution to `intermediate_bytes` —
    /// the high-water mark a memory budget should reason about. Maxed,
    /// not summed, when stats are merged.
    pub peak_intermediate_bytes: u64,
}

impl QueryStats {
    /// Folds `other` into `self` field-wise (`rows_output` adds too, which
    /// is the useful reading when aggregating a batch of queries).
    pub fn merge(&mut self, other: &QueryStats) {
        *self += *other;
    }
}

impl AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.rows_scanned += rhs.rows_scanned;
        self.index_probes += rhs.index_probes;
        self.joins += rhs.joins;
        self.rows_output += rhs.rows_output;
        self.hash_builds += rhs.hash_builds;
        self.morsels += rhs.morsels;
        self.intermediate_bytes += rhs.intermediate_bytes;
        self.peak_intermediate_bytes = self
            .peak_intermediate_bytes
            .max(rhs.peak_intermediate_bytes);
    }
}

impl Add for QueryStats {
    type Output = QueryStats;

    fn add(mut self, rhs: QueryStats) -> QueryStats {
        self += rhs;
        self
    }
}

/// How the root relation of a plan is accessed.
#[derive(Debug, Clone)]
pub enum Access {
    /// Read every row.
    FullScan,
    /// Fetch the rows matching `key` over `attrs` (index probe where an
    /// index exists).
    Lookup {
        /// Attribute names of the lookup key.
        attrs: Vec<String>,
        /// The key value.
        key: Tuple,
    },
}

/// One join step: probe `rel` with the values of `left_attrs` from the
/// running result, matching `right_attrs` in `rel`.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// The relation to join in.
    pub rel: String,
    /// Join attributes in the running result.
    pub left_attrs: Vec<String>,
    /// Join attributes in `rel`.
    pub right_attrs: Vec<String>,
    /// `true` keeps unmatched left rows padded with nulls (the outer join
    /// a merged relation encodes implicitly).
    pub outer: bool,
    /// The inclusion dependency that justified deriving this join, when the
    /// planner produced it (notation form, e.g. `OFFER[O.K] ⊆ COURSE[C.K]`).
    pub via_ind: Option<String>,
}

impl JoinStep {
    /// An inner-join step.
    pub fn inner(rel: impl Into<String>, left: &[&str], right: &[&str]) -> Self {
        JoinStep {
            rel: rel.into(),
            left_attrs: left.iter().map(|s| (*s).to_owned()).collect(),
            right_attrs: right.iter().map(|s| (*s).to_owned()).collect(),
            outer: false,
            via_ind: None,
        }
    }

    /// A left-outer-join step.
    pub fn outer(rel: impl Into<String>, left: &[&str], right: &[&str]) -> Self {
        let mut step = Self::inner(rel, left, right);
        step.outer = true;
        step
    }

    /// Records the inclusion dependency that justified this join.
    #[must_use]
    pub fn via(mut self, ind: impl Into<String>) -> Self {
        self.via_ind = Some(ind.into());
        self
    }
}

/// A left-deep query plan: access the root, then fold join steps, then
/// optionally project.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The root relation.
    pub root: String,
    /// Root access path.
    pub access: Access,
    /// Join steps, applied left to right.
    pub joins: Vec<JoinStep>,
    /// Selection applied to the joined rows, before projection.
    pub filter: Option<Predicate>,
    /// Output attributes (empty = all).
    pub project: Vec<String>,
}

impl QueryPlan {
    /// A full-scan plan over one relation.
    pub fn scan(root: impl Into<String>) -> Self {
        QueryPlan {
            root: root.into(),
            access: Access::FullScan,
            joins: Vec::new(),
            filter: None,
            project: Vec::new(),
        }
    }

    /// A key-lookup plan over one relation.
    pub fn lookup(root: impl Into<String>, attrs: &[&str], key: Tuple) -> Self {
        QueryPlan {
            root: root.into(),
            access: Access::Lookup {
                attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
                key,
            },
            joins: Vec::new(),
            filter: None,
            project: Vec::new(),
        }
    }

    /// Appends a join step.
    #[must_use]
    pub fn join(mut self, step: JoinStep) -> Self {
        self.joins.push(step);
        self
    }

    /// Sets the output projection.
    #[must_use]
    pub fn select(mut self, attrs: &[&str]) -> Self {
        self.project = attrs.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Sets the selection predicate (applied after joins, before
    /// projection).
    #[must_use]
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filter = Some(predicate);
        self
    }
}

/// What one operator in a [`QueryTrace`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Root full scan.
    Scan,
    /// Root index lookup.
    Lookup,
    /// One join step (index-nested-loop or hash, see the label).
    Join,
    /// Selection predicate.
    Filter,
    /// Output projection.
    Project,
}

/// Per-operator counters in an EXPLAIN-ANALYZE trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Rows flowing into the operator.
    pub rows_in: u64,
    /// Rows flowing out of the operator.
    pub rows_out: u64,
    /// Rows this operator read by scanning.
    pub rows_scanned: u64,
    /// Hash-index probes this operator issued.
    pub index_probes: u64,
    /// Hash tables this operator built (or borrowed) as a build side.
    pub hash_builds: u64,
    /// Approximate intermediate bytes this operator materialized (slot
    /// rows for joins, transient build tables, output tuples for the
    /// materialize/filter step).
    pub intermediate_bytes: u64,
    /// Wall time spent in this operator (summed across workers).
    pub wall_ns: u64,
}

/// One operator of an executed plan, with its measured cost.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// The operator kind.
    pub kind: OpKind,
    /// Human-readable label, e.g. `Lookup COURSE [C.K]`.
    pub label: String,
    /// Measured counters.
    pub stats: OpStats,
}

/// An EXPLAIN-ANALYZE-style breakdown of one query execution: the
/// operators in execution order (root access first), each with rows
/// in/out, probes, scanned rows, and wall time. [`QueryTrace::totals`]
/// reconstructs the [`QueryStats`] the run reported — the per-operator
/// counters sum exactly to them, with per-worker (morsel) contributions
/// merged back into their operator.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Operators in execution order.
    pub ops: Vec<OpTrace>,
    /// Morsels the root rows were partitioned into.
    pub morsels: u64,
}

impl QueryTrace {
    /// Total wall time across operators.
    #[must_use]
    pub fn wall_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.stats.wall_ns).sum()
    }

    /// The [`QueryStats`] equivalent of this trace: scanned rows, index
    /// probes, and hash builds sum over operators, `joins` counts the join
    /// operators, and `rows_output` is the last operator's output
    /// cardinality.
    #[must_use]
    pub fn totals(&self) -> QueryStats {
        QueryStats {
            rows_scanned: self.ops.iter().map(|o| o.stats.rows_scanned).sum(),
            index_probes: self.ops.iter().map(|o| o.stats.index_probes).sum(),
            joins: self.ops.iter().filter(|o| o.kind == OpKind::Join).count() as u64,
            rows_output: self.ops.last().map_or(0, |o| o.stats.rows_out),
            hash_builds: self.ops.iter().map(|o| o.stats.hash_builds).sum(),
            morsels: self.morsels,
            intermediate_bytes: self.ops.iter().map(|o| o.stats.intermediate_bytes).sum(),
            peak_intermediate_bytes: self
                .ops
                .iter()
                .map(|o| o.stats.intermediate_bytes)
                .max()
                .unwrap_or(0),
        }
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for QueryTrace {
    /// EXPLAIN-ANALYZE layout: the outermost (last-executed) operator
    /// first, each input indented below it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (indent, op) in self.ops.iter().rev().enumerate() {
            let s = &op.stats;
            write!(
                f,
                "{}{}  (rows_in={} rows_out={}",
                "  ".repeat(indent),
                op.label,
                s.rows_in,
                s.rows_out
            )?;
            if s.index_probes > 0 {
                write!(f, " probes={}", s.index_probes)?;
            }
            if s.rows_scanned > 0 {
                write!(f, " scanned={}", s.rows_scanned)?;
            }
            if s.hash_builds > 0 {
                write!(f, " hash_builds={}", s.hash_builds)?;
            }
            if s.intermediate_bytes > 0 {
                write!(f, " bytes={}", s.intermediate_bytes)?;
            }
            writeln!(f, " time={})", format_ns(s.wall_ns))?;
        }
        Ok(())
    }
}

impl Database {
    /// Executes `plan`, returning the result relation and the cost
    /// counters.
    pub fn execute(&self, plan: &QueryPlan) -> Result<(Relation, QueryStats)> {
        let (relation, stats, _) = execute_impl(self, plan, false)?;
        Ok((relation, stats))
    }

    /// Executes `plan` like [`Database::execute`], additionally returning
    /// an EXPLAIN-ANALYZE-style [`QueryTrace`] whose per-operator counters
    /// sum to the returned [`QueryStats`].
    pub fn execute_traced(&self, plan: &QueryPlan) -> Result<(Relation, QueryStats, QueryTrace)> {
        let (relation, stats, trace) = execute_impl(self, plan, true)?;
        Ok((relation, stats, trace.expect("tracing requested")))
    }
}

/// Free-function form of [`Database::execute`], kept for source
/// compatibility.
#[deprecated(
    since = "0.1.0",
    note = "call the inherent `Database::execute` instead"
)]
pub fn execute(db: &Database, plan: &QueryPlan) -> Result<(Relation, QueryStats)> {
    db.execute(plan)
}

/// Free-function form of [`Database::execute_traced`], kept for source
/// compatibility.
#[deprecated(
    since = "0.1.0",
    note = "call the inherent `Database::execute_traced` instead"
)]
pub fn execute_traced(
    db: &Database,
    plan: &QueryPlan,
) -> Result<(Relation, QueryStats, QueryTrace)> {
    db.execute_traced(plan)
}

/// How one compiled join step reaches its right-hand rows. Borrowed
/// variants point straight into the database's storage; `HashOwned` shares
/// a transient table built by scanning the right relation once (possibly
/// partition-parallel, possibly reused through the build-side cache).
enum RightAccess<'a> {
    /// Index-nested-loop through a unique index: one counted probe per
    /// total left row.
    Unique {
        map: &'a HashMap<Tuple, usize>,
        rows: &'a [Option<Tuple>],
    },
    /// Index-nested-loop through a secondary lookup index.
    Lookup {
        map: &'a HashMap<Tuple, Vec<usize>>,
        rows: &'a [Option<Tuple>],
    },
    /// Index-nested-loop fallback with no covering index: scan the whole
    /// right table for every left row (the pre-morsel executor's silent
    /// worst case, reachable only when hash joins are disabled or the left
    /// side is empty).
    ScanProbe {
        pos: Vec<usize>,
        rows: &'a [Option<Tuple>],
    },
    /// Hash join borrowing a unique index as the prebuilt build side:
    /// probes are amortized by the build and not counted.
    HashUnique {
        map: &'a HashMap<Tuple, usize>,
        rows: &'a [Option<Tuple>],
    },
    /// Hash join borrowing a secondary lookup index as the build side.
    HashLookup {
        map: &'a HashMap<Tuple, Vec<usize>>,
        rows: &'a [Option<Tuple>],
    },
    /// Hash join over a transient table built by scanning the right
    /// relation once (counted as that one scan, whether the build ran cold
    /// or came from the versioned cache). The build maps keys to row
    /// *slots*, resolved against the borrowed storage rows at probe time.
    HashOwned {
        build: Arc<OwnedBuild>,
        rows: &'a [Option<Tuple>],
    },
}

/// One join step compiled against the database: strategy chosen, build
/// side ready, left attribute positions resolved to (source, column)
/// slots. Compilation happens before fan-out, so workers share it
/// immutably.
struct CompiledJoin<'a> {
    access: RightAccess<'a>,
    /// (source, column) of each left join attribute in the slot row.
    left_locs: Vec<(usize, usize)>,
    outer: bool,
    /// Build-side costs (hash builds, build scans, build wall time),
    /// attributed to this join's operator in the trace.
    build: OpStats,
    label: String,
    /// The strategy the planner chose — part of the query fingerprint.
    strategy: JoinStrategy,
    /// Build-cache interactions of this step (0/1 hit, 0/1 miss, bytes
    /// evicted by its insert), folded into the query's profile record.
    cache_hits: u64,
    cache_misses: u64,
    cache_evicted_bytes: u64,
    /// A conjunct pushed to this step's *probe side*: applied to every
    /// matched right row before it joins. `None` when the pushed conjunct
    /// was instead folded into the build (`HashOwned` filters while
    /// building) or when nothing was pushed here.
    pushed: Option<CompiledPredicate>,
    /// Post-pushdown selectivity evidence `(kept, live)` from one pass
    /// over the right table, fed to [`estimate_join_output`] so pushdown
    /// can flip the *next* step's strategy. `None` when nothing was
    /// pushed to this step.
    sel: Option<(usize, usize)>,
    /// Rows the pushed conjunct removed while building the hash side
    /// (charged per use, hit or cold, so the counter is cache-independent).
    build_pruned: u64,
}

/// An intermediate row: one borrowed slot per plan source (root, then one
/// per join step); `None` is an outer-join null pad.
type Row<'a> = Vec<Option<&'a Tuple>>;

/// What one morsel produced: materialized (and filtered) rows plus the
/// per-operator counters accumulated while producing them.
struct MorselOut {
    rows: Vec<Tuple>,
    /// Probe-side counters per join step (build costs live in
    /// [`CompiledJoin::build`]).
    per_join: Vec<OpStats>,
    /// Materialize + filter counters (`rows_in`/`rows_out`/`wall_ns`).
    filter: OpStats,
    /// Probe-key `Tuple` allocations avoided by probing with the borrowed
    /// value slice (one per total-key probe; the B10 summary reports the
    /// sum).
    saved_allocs: u64,
    /// Right rows removed by probe-side pushed conjuncts in this morsel.
    pruned: u64,
}

impl MorselOut {
    /// Intermediate bytes this morsel materialized (slot rows emitted by
    /// its join steps plus its materialized output rows) — what the
    /// intermediate-memory budget charges at the morsel boundary.
    fn intermediate_bytes(&self) -> u64 {
        self.per_join
            .iter()
            .map(|o| o.intermediate_bytes)
            .sum::<u64>()
            + self.filter.intermediate_bytes
    }
}

/// Runs the compiled join → materialize → filter pipeline over one morsel
/// of root rows. Infallible: every name was resolved at compile time.
fn run_morsel<'a>(
    morsel: &[&'a Tuple],
    joins: &[CompiledJoin<'a>],
    filter: Option<&CompiledPredicate>,
    widths: &[usize],
) -> MorselOut {
    let mut cur: Vec<Row<'a>> = morsel
        .iter()
        .map(|t| {
            let mut parts: Row<'a> = Vec::with_capacity(widths.len());
            parts.push(Some(*t));
            parts
        })
        .collect();
    let mut per_join = Vec::with_capacity(joins.len());
    let mut key_vals: Vec<Value> = Vec::new();
    let mut matches: Vec<&'a Tuple> = Vec::new();
    let mut saved_allocs: u64 = 0;
    let mut pruned: u64 = 0;
    for (ji, join) in joins.iter().enumerate() {
        let t0 = Instant::now();
        let mut op = OpStats {
            rows_in: cur.len() as u64,
            ..OpStats::default()
        };
        let mut next: Vec<Row<'a>> = Vec::with_capacity(cur.len());
        for mut row in cur {
            // Extract the left key; an outer-join pad or a null component
            // makes it non-total (no probe, old behavior).
            key_vals.clear();
            let mut total = true;
            for &(src, col) in &join.left_locs {
                match row[src] {
                    Some(t) if !t.get(col).is_null() => key_vals.push(t.get(col).clone()),
                    _ => {
                        total = false;
                        break;
                    }
                }
            }
            if !total {
                if join.outer {
                    row.push(None);
                    next.push(row);
                }
                continue;
            }
            // Probe with the borrowed value slice — `Tuple` hashes and
            // compares like its slice (`Borrow<[Value]>`), so no key tuple
            // is allocated; `key_vals` keeps its capacity across rows.
            saved_allocs += 1;
            let key = key_vals.as_slice();
            matches.clear();
            match &join.access {
                RightAccess::Unique { map, rows } => {
                    op.index_probes += 1;
                    matches.extend(map.get(key).and_then(|&s| rows[s].as_ref()));
                }
                RightAccess::HashUnique { map, rows } => {
                    matches.extend(map.get(key).and_then(|&s| rows[s].as_ref()));
                }
                RightAccess::Lookup { map, rows } => {
                    op.index_probes += 1;
                    if let Some(slots) = map.get(key) {
                        matches.extend(slots.iter().filter_map(|&s| rows[s].as_ref()));
                    }
                }
                RightAccess::HashLookup { map, rows } => {
                    if let Some(slots) = map.get(key) {
                        matches.extend(slots.iter().filter_map(|&s| rows[s].as_ref()));
                    }
                }
                RightAccess::ScanProbe { pos, rows } => {
                    op.rows_scanned += rows.len() as u64;
                    // Element-wise compare against a total key: a null or
                    // differing stored value fails the zip, so this matches
                    // exactly what `project == key` matched.
                    matches.extend(rows.iter().flatten().filter(|t| {
                        pos.len() == key.len() && pos.iter().zip(key).all(|(&p, k)| t.get(p) == k)
                    }));
                }
                RightAccess::HashOwned { build, rows } => {
                    if let Some(slots) = build.probe(key) {
                        matches.extend(slots.iter().filter_map(|&s| rows[s].as_ref()));
                    }
                }
            }
            // Apply the pushed conjunct at the probe site: a match that
            // fails it behaves exactly as if the index had never returned
            // it (an outer join null-pads instead). Soundness of placing a
            // conjunct here — including below an outer join — is decided
            // at plan time in `plan_pushdown`.
            if let Some(cp) = &join.pushed {
                let before = matches.len();
                matches.retain(|t| cp.matches(t.values()));
                pruned += (before - matches.len()) as u64;
            }
            if matches.is_empty() {
                if join.outer {
                    row.push(None);
                    next.push(row);
                }
            } else {
                let (last, rest) = matches.split_last().expect("non-empty");
                for &m in rest {
                    let mut r = row.clone();
                    r.push(Some(m));
                    next.push(r);
                }
                row.push(Some(*last));
                next.push(row);
            }
        }
        op.rows_out = next.len() as u64;
        // Slot-row footprint of this step's output: one borrowed slot per
        // source seen so far (root + ji + 1 joins). Depends only on
        // `rows_out`, so the sum across morsels is identical at every
        // worker count.
        op.intermediate_bytes =
            op.rows_out * ((ji + 2) * std::mem::size_of::<Option<&Tuple>>()) as u64;
        op.wall_ns = obs::elapsed_ns(t0);
        per_join.push(op);
        cur = next;
    }
    // Materialize each surviving row exactly once, applying the filter on
    // the freshly built values.
    let t0 = Instant::now();
    let mut fop = OpStats {
        rows_in: cur.len() as u64,
        ..OpStats::default()
    };
    let total_width: usize = widths.iter().sum();
    let mut out = Vec::with_capacity(cur.len());
    for parts in cur {
        let mut vals: Vec<Value> = Vec::with_capacity(total_width);
        for (si, w) in widths.iter().enumerate() {
            match parts[si] {
                Some(t) => vals.extend_from_slice(t.values()),
                None => vals.extend(std::iter::repeat_with(|| Value::Null).take(*w)),
            }
        }
        if let Some(p) = filter {
            if !p.matches(&vals) {
                continue;
            }
        }
        out.push(Tuple::new(vals));
    }
    fop.rows_out = out.len() as u64;
    // Materialized-output footprint: each surviving row owns a `Tuple`
    // holding `total_width` values.
    fop.intermediate_bytes = fop.rows_out
        * (std::mem::size_of::<Tuple>() + total_width * std::mem::size_of::<Value>()) as u64;
    fop.wall_ns = obs::elapsed_ns(t0);
    MorselOut {
        rows: out,
        per_join,
        filter: fop,
        saved_allocs,
        pruned,
    }
}

/// The evolving layout of the flattened join output: the combined
/// header, each attribute's (source slot, column) location, and the
/// width of every source relation. Seeded from the root scan and
/// extended by [`compile_join`] once per step.
struct FlatLayout {
    header: Vec<Attribute>,
    locs: Vec<(usize, usize)>,
    widths: Vec<usize>,
}

/// Compiles one join step: resolves the left attributes against the
/// evolving header, picks the strategy, and prepares (or borrows) the
/// build side. A transient build goes through the versioned cache — a hit
/// reuses the stored build and charges its stored costs, so `QueryStats`
/// are identical cold and warm; a miss builds (fanning out past
/// [`Database::build_parallel_threshold`]) and inserts. Extends
/// `layout` with the right relation's attributes.
///
/// `pushed` is the conjunction of filter conjuncts the pushdown planner
/// assigned to this step's right relation. A transient hash build folds
/// it into the build itself (fewer keys, fewer bytes, and a cache key
/// that records the predicate so a filtered build is never served to an
/// unfiltered probe); every other access path keeps it as a probe-side
/// check in [`CompiledJoin::pushed`].
fn compile_join<'a>(
    db: &'a Database,
    step: &JoinStep,
    layout: &mut FlatLayout,
    left_estimate: usize,
    pushed: Option<&Predicate>,
    budget: &BudgetTracker,
) -> Result<CompiledJoin<'a>> {
    let left_locs: Vec<(usize, usize)> = step
        .left_attrs
        .iter()
        .map(|n| {
            layout
                .header
                .iter()
                .position(|a| a.name() == n.as_str())
                .map(|p| layout.locs[p])
                .ok_or_else(|| Error::UnknownAttribute {
                    attribute: n.clone(),
                    context: format!("join input of `{}`", step.rel),
                })
        })
        .collect::<Result<_>>()?;
    let table = db
        .tables
        .get(&step.rel)
        .ok_or_else(|| Error::UnknownScheme(step.rel.clone()))?;
    let pos = table.positions(&step.right_attrs)?;
    let strategy = choose_join_strategy(db, &step.rel, &step.right_attrs, left_estimate)?;
    let cp = pushed
        .map(|p| CompiledPredicate::compile(p, &table.header))
        .transpose()?;
    // One pass over the stored rows measures the pushed conjunct's
    // selectivity, so the next step's strategy choice sees the shrunken
    // stream. Pre-fan-out and data-dependent only — deterministic across
    // morsel sizes and worker counts.
    let sel = cp.as_ref().map(|c| {
        let kept = table
            .rows
            .iter()
            .flatten()
            .filter(|t| c.matches(t.values()))
            .count();
        (kept, table.live)
    });
    let t0 = Instant::now();
    let mut build = OpStats::default();
    let mut build_note: Option<String> = None;
    let (mut cache_hits, mut cache_misses, mut cache_evicted_bytes) = (0u64, 0u64, 0u64);
    let access = match strategy {
        JoinStrategy::IndexNestedLoop => {
            if let Some((_, map)) = table.unique.iter().find(|(p, _)| *p == pos) {
                RightAccess::Unique {
                    map,
                    rows: &table.rows,
                }
            } else if let Some((_, map)) = table.lookups.get(&step.right_attrs) {
                RightAccess::Lookup {
                    map,
                    rows: &table.rows,
                }
            } else {
                RightAccess::ScanProbe {
                    pos,
                    rows: &table.rows,
                }
            }
        }
        JoinStrategy::Hash => {
            build.hash_builds = 1;
            if let Some((_, map)) = table.unique.iter().find(|(p, _)| *p == pos) {
                RightAccess::HashUnique {
                    map,
                    rows: &table.rows,
                }
            } else if let Some((_, map)) = table.lookups.get(&step.right_attrs) {
                RightAccess::HashLookup {
                    map,
                    rows: &table.rows,
                }
            } else {
                // Transient build, through the versioned cache: a version
                // match proves the cached build still describes the stored
                // rows, so hits skip the scan entirely. The cache lock is
                // never held across the build or a fault site.
                let key = BuildKey {
                    rel: step.rel.clone(),
                    attrs: step.right_attrs.clone(),
                    version: table.version,
                    filter: pushed.cloned(),
                };
                let cached = db.build_cache_lock().get(&key);
                let owned = match cached {
                    Some(owned) => {
                        db.metrics.build_cache_hits.inc();
                        db.metrics.cache_hit.inc();
                        cache_hits = 1;
                        build_note = Some("build: cached".to_owned());
                        owned
                    }
                    None => {
                        db.metrics.build_cache_misses.inc();
                        db.metrics.cache_miss.inc();
                        cache_misses = 1;
                        let workers = choose_build_parallelism(db, table.live);
                        let owned = Arc::new(build_owned(
                            &table.rows,
                            &pos,
                            workers,
                            cp.as_ref(),
                            || db.fault_check(site::HASH_BUILD),
                        )?);
                        if owned.workers() > 1 {
                            db.metrics.parallel_builds.inc();
                            build_note = Some(format!("build: {} workers", owned.workers()));
                        } else {
                            build_note = Some("build: serial".to_owned());
                        }
                        // The insert-side fault site fires *before* the
                        // cache is touched: an injected error or panic
                        // fails this query and leaves the cache unmodified
                        // — never a poisoned entry.
                        catch_unwind(AssertUnwindSafe(|| {
                            db.fault_check(site::BUILD_CACHE_INSERT)
                        }))
                        .unwrap_or_else(|payload| {
                            Err(Error::ExecutionPanic {
                                context: panic_message(payload),
                            })
                        })?;
                        let (evicted, evicted_bytes) =
                            db.build_cache_lock().insert(key, Arc::clone(&owned));
                        db.metrics.build_cache_evictions.add(evicted);
                        db.metrics.cache_insert.inc();
                        db.metrics.cache_evict.add(evicted);
                        db.metrics.cache_evicted_bytes.add(evicted_bytes as i64);
                        cache_evicted_bytes = evicted_bytes;
                        owned
                    }
                };
                // Hits charge the same scan count and bytes the cold build
                // did, keeping stats and budgets independent of cache state.
                budget.charge_build_bytes(owned.bytes())?;
                build.rows_scanned = owned.rows_scanned();
                build.intermediate_bytes = owned.bytes();
                RightAccess::HashOwned {
                    build: owned,
                    rows: &table.rows,
                }
            }
        }
    };
    build.wall_ns = obs::elapsed_ns(t0);
    let verb = match (step.outer, strategy) {
        (false, JoinStrategy::IndexNestedLoop) => "Join",
        (true, JoinStrategy::IndexNestedLoop) => "OuterJoin",
        (false, JoinStrategy::Hash) => "HashJoin",
        (true, JoinStrategy::Hash) => "OuterHashJoin",
    };
    let mut label = format!(
        "{verb} {} ON {}={}",
        step.rel,
        step.left_attrs.join(","),
        step.right_attrs.join(",")
    );
    if let Some(ind) = &step.via_ind {
        label.push_str(" via ");
        label.push_str(ind);
    }
    if let Some(note) = build_note {
        label.push_str(" [");
        label.push_str(&note);
        label.push(']');
    }
    if pushed.is_some() {
        label.push_str(" [pushed]");
    }
    let source = layout.widths.len();
    for (i, a) in table.header.iter().enumerate() {
        layout.header.push(a.clone());
        layout.locs.push((source, i));
    }
    layout.widths.push(table.header.len());
    // A transient hash build already filtered while building, so the
    // probe side re-checks nothing; every other access path carries the
    // compiled conjunct to the probe site.
    let (pushed_probe, build_pruned) = match &access {
        RightAccess::HashOwned { build, .. } => (None, build.pruned()),
        _ => (cp, 0),
    };
    Ok(CompiledJoin {
        access,
        left_locs,
        outer: step.outer,
        build,
        label,
        strategy,
        cache_hits,
        cache_misses,
        cache_evicted_bytes,
        pushed: pushed_probe,
        sel,
        build_pruned,
    })
}

/// Estimates a compiled join's output cardinality from its left estimate
/// and the access path's fan-out, so the *next* step's strategy choice
/// sees this step's output rather than the root cardinality. Unique
/// accesses match at most one row per left row; lookup and built hash
/// accesses multiply by the index's average bucket size; a bare scan probe
/// gives no fan-out information and carries the left estimate through.
/// Outer joins never shrink the left side. Everything here reads
/// pre-fan-out state only, keeping strategy choice deterministic across
/// morsel sizes and worker counts.
fn estimate_join_output(join: &CompiledJoin<'_>, left: usize) -> usize {
    let avg_bucket = |keys: usize, slots: usize| {
        if keys == 0 {
            1
        } else {
            slots.div_ceil(keys).max(1)
        }
    };
    let fanout = match &join.access {
        RightAccess::Unique { .. } | RightAccess::HashUnique { .. } => 1,
        RightAccess::Lookup { map, .. } | RightAccess::HashLookup { map, .. } => {
            avg_bucket(map.len(), map.values().map(Vec::len).sum())
        }
        RightAccess::HashOwned { build, .. } => avg_bucket(build.keys(), build.slots()),
        RightAccess::ScanProbe { .. } => 1,
    };
    let mut estimate = left.saturating_mul(fanout);
    // A pushed conjunct shrinks the matched stream by its measured
    // selectivity, so downstream strategy choices see the post-pushdown
    // cardinality — a selective pushed filter can flip the next step from
    // a hash build to index nested loops.
    if let Some((kept, live)) = join.sel {
        if let Some(scaled) = estimate.saturating_mul(kept).checked_div(live) {
            estimate = scaled;
        }
    }
    if join.outer {
        estimate.max(left)
    } else {
        estimate
    }
}

/// Evaluates a root-only predicate over the scanned rows *before* the
/// join pipeline. Past one worker the rows are split into
/// [`Database::morsel_rows`]-sized contiguous chunks claimed by scoped
/// workers, and survivors are reassembled in chunk order — so the
/// surviving slots, and everything downstream, are identical at every
/// worker count. A panicking worker fails only this query, as a typed
/// error.
fn prefilter_root<'a>(
    db: &Database,
    rows: Vec<&'a Tuple>,
    cp: &CompiledPredicate,
) -> Result<Vec<&'a Tuple>> {
    let chunk_rows = db.morsel_rows().max(1);
    let workers = db
        .parallelism()
        .clamp(1, rows.len().div_ceil(chunk_rows).max(1));
    if workers <= 1 {
        return Ok(rows
            .into_iter()
            .filter(|t| cp.matches(t.values()))
            .collect());
    }
    let chunks: Vec<&[&Tuple]> = rows.chunks(chunk_rows).collect();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<&'a Tuple>>> = Vec::new();
    slots.resize_with(chunks.len(), || None);
    let mut failure: Option<Error> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, chunks) = (&next, &chunks);
                scope.spawn(move || {
                    let mut done: Vec<(usize, Vec<&'a Tuple>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(i) else { break };
                        let kept = chunk
                            .iter()
                            .copied()
                            .filter(|t| cp.matches(t.values()))
                            .collect();
                        done.push((i, kept));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(done) => {
                    for (i, kept) in done {
                        slots[i] = Some(kept);
                    }
                }
                Err(payload) => {
                    if failure.is_none() {
                        failure = Some(Error::ExecutionPanic {
                            context: panic_message(payload),
                        });
                    }
                }
            }
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .flat_map(|s| s.expect("every chunk claimed exactly once"))
        .collect())
}

/// Where each conjunct of the query filter will run, decided once per
/// query before any data is touched. Produced by [`plan_pushdown`] from
/// the [`crate::predopt`] optimizer's canonical conjunct partition.
struct PushdownPlan {
    /// Conjunction of the root-only conjuncts, compiled against the root
    /// header; evaluated by [`prefilter_root`] right after root access.
    root: Option<CompiledPredicate>,
    /// A root `Eq` conjunct upgraded to an index point-lookup: root
    /// access becomes one counted probe instead of a full scan.
    root_lookup: Option<(String, Value)>,
    /// Per join step (parallel to `plan.joins`), the conjunction pushed
    /// to that step's right relation.
    per_join: Vec<Option<Predicate>>,
    /// What must still run on the joined row: multi-relation conjuncts,
    /// plus copies of conjuncts pushed below an outer join.
    residual: Option<Predicate>,
    /// The optimizer proved the filter constant: `Some(false)` empties
    /// the result before the pipeline, `Some(true)` drops the filter.
    verdict: Option<bool>,
    /// How many conjuncts were placed somewhere cheaper than the
    /// post-join filter (the `engine.query.pushed_conjuncts` increment).
    pushed: u64,
}

/// Partitions the optimized filter's conjuncts across the plan's
/// relations. Returns `None` on *any* internal inconsistency — an
/// attribute that resolves to no relation, a compile failure — so the
/// caller falls back to the legacy root-filter path and surfaces exactly
/// the errors it always did. Placement rules:
///
/// - root-only conjunct → root prefilter (or an index point-lookup for
///   one `Eq` on an indexed attribute under a full scan), dropped from
///   the residual — root rows are never null-padded;
/// - single-relation conjunct under an **inner** join → that step's
///   build or probe side, dropped from the residual;
/// - single-relation conjunct under an **outer** join → pushed only if
///   null-rejecting (false on an all-null right row, so a pruned match
///   and a never-matched row null-pad identically), and *kept* in the
///   residual: a left row whose matches were all pruned resurfaces
///   null-padded, and only the residual copy can reject that pad;
/// - multi-relation conjunct → residual.
fn plan_pushdown(
    db: &Database,
    plan: &QueryPlan,
    filter: &Predicate,
    root_header: &[Attribute],
) -> Option<PushdownPlan> {
    // headers[0] is the root; headers[k] is join step k-1's relation.
    let mut headers: Vec<&[Attribute]> = Vec::with_capacity(plan.joins.len() + 1);
    headers.push(root_header);
    for step in &plan.joins {
        headers.push(db.header(&step.rel).ok()?);
    }
    let source_of = |attr: &str| -> Option<usize> {
        headers
            .iter()
            .position(|h| h.iter().any(|a| a.name() == attr))
    };
    // Every attribute of the *original* predicate must resolve, otherwise
    // the legacy path must surface its unknown-attribute error.
    for attr in crate::predopt::attrs(filter) {
        source_of(&attr)?;
    }
    let mut out = PushdownPlan {
        root: None,
        root_lookup: None,
        per_join: vec![None; plan.joins.len()],
        residual: None,
        verdict: None,
        pushed: 0,
    };
    let canonical = match crate::predopt::optimize(filter) {
        crate::predopt::Optimized::Always(b) => {
            out.verdict = Some(b);
            out.pushed = 1;
            return Some(out);
        }
        crate::predopt::Optimized::Pred(q) => q,
    };
    let mut root_conjuncts: Vec<Predicate> = Vec::new();
    let mut per_join: Vec<Vec<Predicate>> = vec![Vec::new(); plan.joins.len()];
    let mut residual: Vec<Predicate> = Vec::new();
    for c in crate::predopt::conjuncts(&canonical) {
        let mut sources = std::collections::BTreeSet::new();
        for a in crate::predopt::attrs(&c) {
            sources.insert(source_of(&a)?);
        }
        let src = match (sources.len(), sources.iter().next()) {
            (1, Some(&s)) => s,
            _ => {
                // Multi-relation (or, unreachably, attribute-free).
                residual.push(c);
                continue;
            }
        };
        if src == 0 {
            // Root-only. One `Eq` on an indexed root attribute upgrades a
            // full scan to a point lookup; everything else prefilters.
            if out.root_lookup.is_none() && matches!(plan.access, Access::FullScan) {
                if let Some(hit) = crate::planner::choose_root_lookup(db, &plan.root, &c) {
                    out.root_lookup = Some(hit);
                    out.pushed += 1;
                    continue;
                }
            }
            root_conjuncts.push(c);
            out.pushed += 1;
        } else {
            let step = &plan.joins[src - 1];
            let cp = CompiledPredicate::compile(&c, headers[src]).ok()?;
            let null_rejecting = !cp.matches(&vec![Value::Null; headers[src].len()]);
            if step.outer && !null_rejecting {
                residual.push(c);
            } else {
                if step.outer {
                    residual.push(c.clone());
                }
                per_join[src - 1].push(c);
                out.pushed += 1;
            }
        }
    }
    out.root = crate::predopt::conjoin(&root_conjuncts)
        .map(|p| CompiledPredicate::compile(&p, root_header))
        .transpose()
        .ok()?;
    for (slot, cs) in out.per_join.iter_mut().zip(&per_join) {
        *slot = crate::predopt::conjoin(cs);
    }
    out.residual = crate::predopt::conjoin(&residual);
    Some(out)
}

/// Thin classification wrapper over [`execute_core`]: a failed execution
/// bumps the matching abort counter before the error propagates, so
/// injected faults, contained panics, and budget trips are visible in the
/// metrics snapshot.
fn execute_impl(
    db: &Database,
    plan: &QueryPlan,
    traced: bool,
) -> Result<(Relation, QueryStats, Option<QueryTrace>)> {
    let result = execute_core(db, plan, traced);
    if let Err(e) = &result {
        match e {
            Error::Injected { .. } => db.metrics.injected_aborts.inc(),
            Error::ExecutionPanic { .. } => db.metrics.panic_aborts.inc(),
            Error::BudgetExceeded { .. } => db.metrics.budget_aborts.inc(),
            _ => {}
        }
    }
    result
}

fn execute_core(
    db: &Database,
    plan: &QueryPlan,
    traced: bool,
) -> Result<(Relation, QueryStats, Option<QueryTrace>)> {
    let t_exec = Instant::now();
    let mut span = obs::span("engine.query.execute");
    span.add_field("root", &plan.root);
    span.add_field("joins", plan.joins.len());
    let mut stats = QueryStats::default();
    let budget = db.query_budget().start();

    let root_header = db.header(&plan.root)?;

    // Pushdown planning runs before any data is touched, under the
    // `engine.query.pushdown` fault site: an injected error or panic —
    // like any internal planning failure — is contained here and drops
    // the query onto the legacy root-filter path, byte-identical in
    // results (the fallback counter records it).
    let pushdown: Option<PushdownPlan> = match (&plan.filter, db.predicate_pushdown()) {
        (Some(filter), true) => {
            let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<Option<PushdownPlan>> {
                db.fault_check(site::PUSHDOWN)?;
                Ok(plan_pushdown(db, plan, filter, root_header))
            }));
            match attempt {
                Ok(Ok(Some(p))) => Some(p),
                Ok(Ok(None)) | Ok(Err(_)) | Err(_) => {
                    db.metrics.pushdown_fallbacks.inc();
                    None
                }
            }
        }
        _ => None,
    };
    let pushdown_active = pushdown.is_some();
    let (pd_root, pd_lookup, pd_per_join, pd_residual, pd_verdict, pd_pushed) = match pushdown {
        Some(p) => (
            p.root,
            p.root_lookup,
            p.per_join,
            p.residual,
            p.verdict,
            p.pushed,
        ),
        None => (None, None, vec![None; plan.joins.len()], None, None, 0),
    };

    // Root access (serial, borrowed slots — nothing is cloned). A pushed
    // root `Eq` on an indexed attribute turns the full scan into one
    // counted probe.
    let t_root = Instant::now();
    let mut root_rows: Vec<&Tuple> = Vec::new();
    match (&plan.access, &pd_lookup) {
        (Access::FullScan, Some((attr, value))) => {
            db.probe_slots(
                &plan.root,
                std::slice::from_ref(attr),
                &Tuple::new(vec![value.clone()]),
                &mut stats,
                &mut root_rows,
            )?;
        }
        (Access::FullScan, None) => {
            let (_, scanned) = db.scan(&plan.root)?;
            stats.rows_scanned += scanned.len() as u64;
            root_rows = scanned;
        }
        (Access::Lookup { attrs, key }, _) => {
            db.probe_slots(&plan.root, attrs, key, &mut stats, &mut root_rows)?;
        }
    }
    let root_op = traced.then(|| {
        let (kind, label) = match (&plan.access, &pd_lookup) {
            (Access::FullScan, Some((attr, _))) => (
                OpKind::Lookup,
                format!("Lookup {} [{}] (pushed Eq)", plan.root, attr),
            ),
            (Access::FullScan, None) => (OpKind::Scan, format!("Scan {}", plan.root)),
            (Access::Lookup { attrs, .. }, _) => (
                OpKind::Lookup,
                format!("Lookup {} [{}]", plan.root, attrs.join(",")),
            ),
        };
        OpTrace {
            kind,
            label,
            stats: OpStats {
                rows_in: 0,
                rows_out: root_rows.len() as u64,
                rows_scanned: stats.rows_scanned,
                index_probes: stats.index_probes,
                hash_builds: 0,
                intermediate_bytes: 0,
                wall_ns: obs::elapsed_ns(t_root),
            },
        }
    });

    // Root-side filtering. With pushdown active, the optimizer's conjunct
    // partition decides what runs here; otherwise (knob off, injected
    // fault, or planning fallback) the legacy heuristic applies: a
    // predicate compiling against the root header alone runs before the
    // pipeline, anything else falls through to the post-join filter —
    // where an unknown attribute still errors, exactly as it always did.
    let (root_cp, residual_pred): (Option<CompiledPredicate>, Option<Predicate>) =
        if pushdown_active {
            (pd_root, pd_residual)
        } else {
            let legacy = match (&plan.access, &plan.filter) {
                (Access::FullScan, Some(p)) => CompiledPredicate::compile(p, root_header).ok(),
                _ => None,
            };
            let residual = if legacy.is_some() {
                None
            } else {
                plan.filter.clone()
            };
            (legacy, residual)
        };
    let mut pruned_rows: u64 = 0;
    let mut pushed_op: Option<OpStats> = None;
    if pd_verdict == Some(false) {
        // The optimizer proved the filter constant-false: nothing can
        // survive, so the pipeline sees no rows at all.
        let t0 = Instant::now();
        let rows_in = root_rows.len() as u64;
        pruned_rows += rows_in;
        root_rows.clear();
        pushed_op = Some(OpStats {
            rows_in,
            rows_out: 0,
            wall_ns: obs::elapsed_ns(t0),
            ..OpStats::default()
        });
    } else if let Some(cp) = &root_cp {
        let t0 = Instant::now();
        let rows_in = root_rows.len() as u64;
        root_rows = prefilter_root(db, root_rows, cp)?;
        if pushdown_active {
            pruned_rows += rows_in - root_rows.len() as u64;
        }
        pushed_op = Some(OpStats {
            rows_in,
            rows_out: root_rows.len() as u64,
            wall_ns: obs::elapsed_ns(t0),
            ..OpStats::default()
        });
    }
    budget.charge_rows(root_rows.len() as u64)?;

    // Compile the join pipeline. Strategy choice starts from the root
    // cardinality (known exactly after root access) and carries each
    // step's estimated *output* cardinality forward as the next step's
    // left estimate, so a selective chain that fans out picks hash joins
    // per-step instead of from the root alone. Estimates derive only from
    // pre-fan-out state (root rows plus index fan-outs), and hash builds
    // happen here, before fan-out, so strategies and counters are
    // identical at every parallelism level.
    let mut layout = FlatLayout {
        header: root_header.to_vec(),
        locs: (0..root_header.len()).map(|i| (0, i)).collect(),
        widths: vec![root_header.len()],
    };
    let mut left_estimate = root_rows.len();
    let mut joins: Vec<CompiledJoin<'_>> = Vec::with_capacity(plan.joins.len());
    for (step, pushed) in plan.joins.iter().zip(&pd_per_join) {
        stats.joins += 1;
        let compiled = compile_join(
            db,
            step,
            &mut layout,
            left_estimate,
            pushed.as_ref(),
            &budget,
        )?;
        left_estimate = estimate_join_output(&compiled, left_estimate);
        joins.push(compiled);
    }
    // Residual filter: what the pushdown partition left for the joined
    // row (or, on the legacy path, the whole predicate when it was not
    // pushed to the scan).
    let filter = residual_pred
        .as_ref()
        .map(|p| CompiledPredicate::compile(p, &layout.header))
        .transpose()?;

    // Partition into morsels and fan out; each worker claims the next
    // unprocessed morsel until none remain.
    let morsel_rows = db.morsel_rows().max(1);
    let morsels: Vec<&[&Tuple]> = root_rows.chunks(morsel_rows).collect();
    stats.morsels = morsels.len() as u64;
    let workers = db.parallelism().clamp(1, morsels.len().max(1));
    span.add_field("morsels", morsels.len());
    span.add_field("workers", workers);
    // Each morsel boundary is a cancellation point: the budget is polled
    // before a morsel is claimed and charged after it completes, and a
    // panicking worker (injected or genuine) is contained — it fails only
    // this query, as a typed error, leaving the database untouched (the
    // executor never mutates; workers hold only borrowed rows).
    let outs: Vec<MorselOut> = if workers <= 1 {
        let mut outs = Vec::with_capacity(morsels.len());
        for m in &morsels {
            budget.checkpoint()?;
            let out = catch_unwind(AssertUnwindSafe(|| -> Result<MorselOut> {
                db.fault_check(site::MORSEL_WORKER)?;
                Ok(run_morsel(m, &joins, filter.as_ref(), &layout.widths))
            }))
            .unwrap_or_else(|payload| {
                Err(Error::ExecutionPanic {
                    context: panic_message(payload),
                })
            })?;
            budget.charge_morsel(out.rows.len() as u64)?;
            budget.charge_intermediate_bytes(out.intermediate_bytes())?;
            outs.push(out);
        }
        outs
    } else {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<MorselOut>> = Vec::new();
        slots.resize_with(morsels.len(), || None);
        let mut failure: Option<Error> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (next, morsels, joins) = (&next, &morsels, &joins);
                    let (filter, widths, budget) = (filter.as_ref(), &layout.widths, &budget);
                    scope.spawn(move || -> Result<Vec<(usize, MorselOut)>> {
                        let mut done: Vec<(usize, MorselOut)> = Vec::new();
                        loop {
                            // Cooperative cancellation: a budget tripped by
                            // any worker stops the others at their next
                            // claim.
                            budget.checkpoint()?;
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(m) = morsels.get(i) else { break };
                            db.fault_check(site::MORSEL_WORKER)?;
                            let out = run_morsel(m, joins, filter, widths);
                            budget.charge_morsel(out.rows.len() as u64)?;
                            budget.charge_intermediate_bytes(out.intermediate_bytes())?;
                            done.push((i, out));
                        }
                        Ok(done)
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(Ok(done)) => {
                        for (i, out) in done {
                            slots[i] = Some(out);
                        }
                    }
                    Ok(Err(e)) => {
                        if failure.is_none() {
                            failure = Some(e);
                        }
                    }
                    Err(payload) => {
                        if failure.is_none() {
                            failure = Some(Error::ExecutionPanic {
                                context: panic_message(payload),
                            });
                        }
                    }
                }
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every morsel claimed exactly once"))
            .collect()
    };

    // Reassemble in morsel order — deterministic and byte-identical to the
    // serial path — and merge per-worker counters into their operators.
    let mut per_join: Vec<OpStats> = joins.iter().map(|j| j.build).collect();
    let mut filter_op = OpStats::default();
    let mut rows: Vec<Tuple> = Vec::with_capacity(outs.iter().map(|o| o.rows.len()).sum());
    let mut saved_allocs: u64 = 0;
    for out in outs {
        saved_allocs += out.saved_allocs;
        pruned_rows += out.pruned;
        for (agg, op) in per_join.iter_mut().zip(&out.per_join) {
            agg.rows_in += op.rows_in;
            agg.rows_out += op.rows_out;
            agg.rows_scanned += op.rows_scanned;
            agg.index_probes += op.index_probes;
            agg.intermediate_bytes += op.intermediate_bytes;
            agg.wall_ns += op.wall_ns;
        }
        filter_op.rows_in += out.filter.rows_in;
        filter_op.rows_out += out.filter.rows_out;
        filter_op.intermediate_bytes += out.filter.intermediate_bytes;
        filter_op.wall_ns += out.filter.wall_ns;
        rows.extend(out.rows);
    }
    for op in &per_join {
        stats.rows_scanned += op.rows_scanned;
        stats.index_probes += op.index_probes;
        stats.hash_builds += op.hash_builds;
        stats.intermediate_bytes += op.intermediate_bytes;
    }
    stats.intermediate_bytes += filter_op.intermediate_bytes;
    stats.peak_intermediate_bytes = per_join
        .iter()
        .map(|op| op.intermediate_bytes)
        .chain(std::iter::once(filter_op.intermediate_bytes))
        .max()
        .unwrap_or(0);
    db.metrics.probe_saved_allocs.add(saved_allocs);
    if pushdown_active {
        for j in &joins {
            pruned_rows += j.build_pruned;
        }
        db.metrics.pushed_conjuncts.add(pd_pushed);
        db.metrics.pushdown_pruned_rows.add(pruned_rows);
    }

    // Projection (central, so set semantics dedup once).
    let t_proj = Instant::now();
    let rows_in_proj = rows.len() as u64;
    let result = if plan.project.is_empty() {
        Relation::with_rows(layout.header, rows)?
    } else {
        let wanted: Vec<&str> = plan.project.iter().map(String::as_str).collect();
        let full = Relation::with_rows(layout.header, rows)?;
        relmerge_relational::algebra::project(&full, &wanted)?
    };
    stats.rows_output = result.len() as u64;

    let trace = traced.then(|| {
        let mut tr = QueryTrace {
            ops: Vec::with_capacity(joins.len() + 3),
            morsels: stats.morsels,
        };
        tr.ops.push(root_op.expect("recorded when traced"));
        if let Some(op) = pushed_op {
            tr.ops.push(OpTrace {
                kind: OpKind::Filter,
                label: "Filter (pushed to scan)".to_owned(),
                stats: op,
            });
        }
        for (cj, op) in joins.iter().zip(&per_join) {
            tr.ops.push(OpTrace {
                kind: OpKind::Join,
                label: cj.label.clone(),
                stats: *op,
            });
        }
        let mut proj_wall = obs::elapsed_ns(t_proj);
        let mut proj_bytes = 0;
        if filter.is_some() {
            tr.ops.push(OpTrace {
                kind: OpKind::Filter,
                label: "Filter".to_owned(),
                stats: filter_op,
            });
        } else {
            // No filter operator: materialization time (and its byte
            // accounting) folds into the projection it feeds.
            proj_wall += filter_op.wall_ns;
            proj_bytes = filter_op.intermediate_bytes;
        }
        let label = if plan.project.is_empty() {
            "Project *".to_owned()
        } else {
            format!("Project [{}]", plan.project.join(","))
        };
        tr.ops.push(OpTrace {
            kind: OpKind::Project,
            label,
            stats: OpStats {
                rows_in: rows_in_proj,
                rows_out: stats.rows_output,
                intermediate_bytes: proj_bytes,
                wall_ns: proj_wall,
                ..OpStats::default()
            },
        });
        tr
    });
    span.add_field("rows_out", stats.rows_output);

    // Fold this execution into the shared workload profiler: the shape
    // (fingerprinted with the strategies the planner actually chose), the
    // per-query cost, and per-edge attribution from the aggregated join
    // operators — so per-fingerprint totals sum exactly to the
    // `QueryStats` each execution reported.
    let strategies: Vec<JoinStrategy> = joins.iter().map(|j| j.strategy).collect();
    let edges: Vec<obs::JoinEdge> = plan
        .joins
        .iter()
        .zip(&joins)
        .map(|(step, cj)| obs::JoinEdge {
            // The probe side's relation: the source the first left
            // attribute resolves to (source 0 is the root; source k is
            // join step k-1's relation).
            left: match cj.left_locs.first().map(|&(src, _)| src) {
                Some(0) | None => plan.root.clone(),
                Some(s) => plan.joins[s - 1].rel.clone(),
            },
            right: step.rel.clone(),
            probe_attrs: step.right_attrs.clone(),
        })
        .collect();
    let access_word = match &plan.access {
        Access::FullScan => "scan",
        Access::Lookup { .. } => "lookup",
    };
    let shape = obs::QueryShape {
        fingerprint: crate::planner::fingerprint(plan, &strategies),
        label: format!("{access_word} {} + {} joins", plan.root, plan.joins.len()),
        root: plan.root.clone(),
        edges,
    };
    let cost = obs::QueryCost {
        rows_scanned: stats.rows_scanned,
        index_probes: stats.index_probes,
        hash_builds: stats.hash_builds,
        rows_out: stats.rows_output,
        morsels: stats.morsels,
        intermediate_bytes: stats.intermediate_bytes,
        peak_intermediate_bytes: stats.peak_intermediate_bytes,
        build_cache_hits: joins.iter().map(|j| j.cache_hits).sum(),
        build_cache_misses: joins.iter().map(|j| j.cache_misses).sum(),
        build_cache_evicted_bytes: joins.iter().map(|j| j.cache_evicted_bytes).sum(),
        wall_ns: obs::elapsed_ns(t_exec),
    };
    let edge_costs: Vec<obs::EdgeCost> = per_join
        .iter()
        .map(|op| obs::EdgeCost {
            index_probes: op.index_probes,
            rows_scanned: op.rows_scanned,
            hash_builds: op.hash_builds,
            rows_out: op.rows_out,
            intermediate_bytes: op.intermediate_bytes,
        })
        .collect();
    db.profiler().record(&shape, &cost, &edge_costs);
    Ok((result, stats, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::DbmsProfile;
    use relmerge_relational::{
        Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Value,
    };

    fn a(n: &str) -> Attribute {
        Attribute::new(n, Domain::Int)
    }

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
    }

    /// COURSE(C.K) ← OFFER(O.K → C.K, O.D).
    fn db() -> Database {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("COURSE", vec![a("C.K")], &["C.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("OFFER", vec![a("O.K"), a("O.D")], &["O.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("COURSE", &["C.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.K", "O.D"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("OFFER", &["O.K"], "COURSE", &["C.K"]))
            .unwrap();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        for k in 0..10 {
            db.insert("COURSE", tup(&[k])).unwrap();
            if k % 2 == 0 {
                db.insert("OFFER", tup(&[k, k * 100])).unwrap();
            }
        }
        db
    }

    #[test]
    fn full_scan_counts_rows() {
        let db = db();
        let (result, stats) = db.execute(&QueryPlan::scan("COURSE")).unwrap();
        assert_eq!(result.len(), 10);
        assert_eq!(stats.rows_scanned, 10);
        assert_eq!(stats.index_probes, 0);
    }

    #[test]
    fn key_lookup_uses_unique_index() {
        let db = db();
        let plan = QueryPlan::lookup("OFFER", &["O.K"], tup(&[4]));
        let (result, stats) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 1);
        assert!(result.contains(&tup(&[4, 400])));
        assert_eq!(stats.index_probes, 1);
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::inner("OFFER", &["C.K"], &["O.K"]));
        let (result, stats) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 5); // even courses only
        assert_eq!(stats.joins, 1);
        assert!(stats.index_probes >= 10); // one probe per outer row
    }

    #[test]
    fn outer_join_pads_with_nulls() {
        let db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]));
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 10);
        assert!(result.contains(&Tuple::new([Value::Int(1), Value::Null, Value::Null])));
    }

    #[test]
    fn projection_applies() {
        let db = db();
        let plan = QueryPlan::scan("OFFER").select(&["O.D"]);
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.attr_names(), ["O.D"]);
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn lookup_then_join_point_query() {
        // The canonical unmerged point query: course 4 with its offer.
        let db = db();
        let plan = QueryPlan::lookup("COURSE", &["C.K"], tup(&[4])).join(JoinStep::inner(
            "OFFER",
            &["C.K"],
            &["O.K"],
        ));
        let (result, stats) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(stats.index_probes, 2); // root lookup + join probe
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn predicate_filtering() {
        let db = db();
        // Offered courses with O.D = 400.
        let plan = QueryPlan::scan("OFFER").filter(Predicate::eq("O.D", 400i64));
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 1);
        assert!(result.contains(&tup(&[4, 400])));
        // Courses with no offer: outer join + IS NULL.
        let plan = QueryPlan::scan("COURSE")
            .join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]))
            .filter(Predicate::is_null("O.K"))
            .select(&["C.K"]);
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 5); // odd courses
        assert!(result.contains(&tup(&[3])));
        // Compound predicates.
        let plan = QueryPlan::scan("OFFER")
            .filter(Predicate::eq("O.K", 2i64).or(Predicate::eq("O.K", 4i64)));
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 2);
        let plan = QueryPlan::scan("OFFER")
            .filter(Predicate::not_null("O.K").and(Predicate::eq("O.K", 2i64).negate()));
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 4);
        // Unknown attribute errors.
        let plan = QueryPlan::scan("OFFER").filter(Predicate::eq("NOPE", 1i64));
        assert!(db.execute(&plan).is_err());
    }

    #[test]
    fn secondary_index_probe_avoids_scan() {
        // OFFER[O.K] appears on both sides of the IND, so a lookup index
        // exists on COURSE[C.K] (rhs) and OFFER[O.K] (lhs, also unique).
        // Probe COURSE by C.K via its unique index, and probe OFFER by a
        // non-key attribute set that only has a lookup index: use the IND
        // lhs attrs of a fresh schema with a non-key FK.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("P", vec![a("P.K")], &["P.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("C", vec![a("C.K"), a("C.FK")], &["C.K"]).unwrap())
            .unwrap();
        rs.add_ind(InclusionDep::new("C", &["C.FK"], "P", &["P.K"]))
            .unwrap();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        db.insert("P", tup(&[2])).unwrap();
        for k in 0..20 {
            db.insert("C", tup(&[k, 1 + (k % 2)])).unwrap();
        }
        // Probing C by its non-key FK column hits the secondary index —
        // no scan.
        let plan = QueryPlan::lookup("C", &["C.FK"], tup(&[1]));
        let (result, stats) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 10);
        assert_eq!(stats.rows_scanned, 0, "secondary index must be used");
        assert_eq!(stats.index_probes, 1);
        // Deleting a row keeps the index correct.
        db.delete_by_key("C", &tup(&[0])).unwrap();
        let (result, _) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 9);
    }

    #[test]
    fn traced_execution_sums_to_stats() {
        let db = db();
        // Lookup → outer join → filter → project: every operator kind.
        let plan = QueryPlan::lookup("COURSE", &["C.K"], tup(&[4]))
            .join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]).via("OFFER[O.K] ⊆ COURSE[C.K]"))
            .filter(Predicate::not_null("O.D"))
            .select(&["O.D"]);
        let (result, stats, trace) = db.execute_traced(&plan).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(trace.totals(), stats, "operator counters sum to totals");
        assert_eq!(trace.ops.len(), 4);
        assert_eq!(trace.ops[0].kind, OpKind::Lookup);
        assert_eq!(trace.ops[1].kind, OpKind::Join);
        assert_eq!(trace.ops[2].kind, OpKind::Filter);
        assert_eq!(trace.ops[3].kind, OpKind::Project);
        assert!(trace.ops[1].label.contains("via OFFER[O.K] ⊆ COURSE[C.K]"));
        // The rendered form leads with the outermost operator.
        let text = trace.to_string();
        assert!(text.starts_with("Project [O.D]"), "{text}");
        assert!(text.contains("OuterJoin OFFER"), "{text}");
        // Traced and untraced runs agree.
        let (plain_result, plain_stats) = db.execute(&plan).unwrap();
        assert_eq!(plain_stats, stats);
        assert!(plain_result.set_eq_unordered(&result));
    }

    #[test]
    fn traced_scan_sums_to_stats() {
        let db = db();
        let (_, stats, trace) = db.execute_traced(&QueryPlan::scan("COURSE")).unwrap();
        assert_eq!(trace.totals(), stats);
        assert_eq!(trace.ops.len(), 2); // Scan + Project *
        assert_eq!(trace.ops[0].stats.rows_scanned, 10);
    }

    #[test]
    fn query_stats_add_and_merge() {
        let a = QueryStats {
            rows_scanned: 1,
            index_probes: 2,
            joins: 3,
            rows_output: 4,
            hash_builds: 5,
            morsels: 6,
            intermediate_bytes: 7,
            peak_intermediate_bytes: 8,
        };
        let b = QueryStats {
            rows_scanned: 10,
            index_probes: 20,
            joins: 30,
            rows_output: 40,
            hash_builds: 50,
            morsels: 60,
            intermediate_bytes: 70,
            peak_intermediate_bytes: 3,
        };
        let sum = a + b;
        assert_eq!(sum.rows_scanned, 11);
        assert_eq!(sum.rows_output, 44);
        assert_eq!(sum.hash_builds, 55);
        assert_eq!(sum.morsels, 66);
        assert_eq!(sum.intermediate_bytes, 77);
        // Peak is a high-water mark: maxed, never summed.
        assert_eq!(sum.peak_intermediate_bytes, 8);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m, sum);
        let mut aa = a;
        aa += b;
        assert_eq!(aa, sum);
    }

    #[test]
    fn execution_reports_intermediate_bytes() {
        let db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]));
        let (_, stats, trace) = db.execute_traced(&plan).unwrap();
        assert!(stats.intermediate_bytes > 0, "{stats:?}");
        assert!(stats.peak_intermediate_bytes > 0);
        assert!(stats.peak_intermediate_bytes <= stats.intermediate_bytes);
        assert_eq!(trace.totals(), stats);
        // The accounting is deterministic across worker counts and morsel
        // sizes.
        let mut small = db.clone();
        small.configure(small.config().parallelism(4));
        small.configure(small.config().morsel_rows(1));
        let (_, par_stats) = small.execute(&plan).unwrap();
        assert_eq!(par_stats.intermediate_bytes, stats.intermediate_bytes);
        assert_eq!(
            par_stats.peak_intermediate_bytes,
            stats.peak_intermediate_bytes
        );
    }

    #[test]
    fn executions_fold_into_the_shared_profiler() {
        let db = db();
        let lookup = |k: i64| {
            QueryPlan::lookup("COURSE", &["C.K"], tup(&[k])).join(JoinStep::inner(
                "OFFER",
                &["C.K"],
                &["O.K"],
            ))
        };
        let (_, s1) = db.execute(&lookup(2)).unwrap();
        let (_, s2) = db.execute(&lookup(4)).unwrap();
        // Different constants, same shape: one fingerprint, two executions.
        let snap = db.profile_snapshot();
        assert_eq!(snap.queries.len(), 1);
        let prof = snap.queries.values().next().unwrap();
        assert_eq!(prof.executions, 2);
        assert_eq!(prof.shape.root, "COURSE");
        assert_eq!(prof.shape.edges.len(), 1);
        assert_eq!(prof.shape.edges[0].left, "COURSE");
        assert_eq!(prof.shape.edges[0].right, "OFFER");
        // Profiler totals are exactly the sum of the per-query stats.
        let total = s1 + s2;
        assert_eq!(prof.totals.index_probes, total.index_probes);
        assert_eq!(prof.totals.rows_scanned, total.rows_scanned);
        assert_eq!(prof.totals.rows_out, total.rows_output);
        assert_eq!(prof.totals.intermediate_bytes, total.intermediate_bytes);
        assert_eq!(
            prof.totals.peak_intermediate_bytes,
            total.peak_intermediate_bytes
        );
        assert_eq!(prof.latency.count, 2);
        // A clone shares the profiler; a different shape adds a
        // fingerprint.
        let fork = db.clone();
        fork.execute(&QueryPlan::scan("OFFER")).unwrap();
        assert_eq!(db.profiler().len(), 2);
        // The hot-join report attributes this workload's probe cost to
        // the COURSE->OFFER edge.
        let ranking = obs::report(&db.profile_snapshot());
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].edge.label(), "COURSE->OFFER[O.K]");
        assert_eq!(ranking[0].executions, 2);
        assert!(ranking[0].cumulative_cost > 0);
    }

    #[test]
    fn intermediate_byte_budget_trips() {
        let mut db = db();
        db.configure(
            db.config().query_budget(
                crate::fault::QueryBudget::unlimited().with_max_intermediate_bytes(1),
            ),
        );
        let plan = QueryPlan::scan("COURSE").join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]));
        let err = db.execute(&plan).unwrap_err();
        assert!(
            matches!(err, Error::BudgetExceeded { .. }),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("intermediate-memory cap"), "{err}");
        // Unlimited budget executes fine.
        db.configure(
            db.config()
                .query_budget(crate::fault::QueryBudget::unlimited()),
        );
        db.execute(&plan).unwrap();
    }

    #[test]
    fn unknown_join_attr_errors() {
        let db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::inner("OFFER", &["NOPE"], &["O.K"]));
        assert!(db.execute(&plan).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_free_functions_still_work() {
        let db = db();
        let plan = QueryPlan::scan("COURSE");
        let (via_fn, fn_stats) = execute(&db, &plan).unwrap();
        let (via_method, method_stats) = db.execute(&plan).unwrap();
        assert!(via_fn.set_eq_unordered(&via_method));
        assert_eq!(fn_stats, method_stats);
        let (_, traced_stats, trace) = execute_traced(&db, &plan).unwrap();
        assert_eq!(traced_stats, method_stats);
        assert_eq!(trace.totals(), traced_stats);
    }

    #[test]
    fn morsels_counted_independent_of_workers() {
        let mut db = db();
        db.configure(db.config().morsel_rows(3));
        for workers in [1, 4] {
            db.configure(db.config().parallelism(workers));
            let (_, stats) = db.execute(&QueryPlan::scan("COURSE")).unwrap();
            assert_eq!(stats.morsels, 4, "10 rows / 3-row morsels");
        }
        // An empty root partitions into zero morsels.
        let plan = QueryPlan::lookup("COURSE", &["C.K"], tup(&[999])).join(JoinStep::inner(
            "OFFER",
            &["C.K"],
            &["O.K"],
        ));
        let (result, stats) = db.execute(&plan).unwrap();
        assert_eq!(result.len(), 0);
        assert_eq!(stats.morsels, 0);
    }

    #[test]
    fn parallel_execution_is_byte_identical() {
        let mut db = db();
        let plan = QueryPlan::scan("COURSE")
            .join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]))
            .filter(Predicate::not_null("C.K"));
        db.configure(db.config().morsel_rows(1)); // every row its own morsel
        db.configure(db.config().parallelism(1));
        let (serial, serial_stats) = db.execute(&plan).unwrap();
        for workers in 2..=4 {
            db.configure(db.config().parallelism(workers));
            let (parallel, parallel_stats) = db.execute(&plan).unwrap();
            assert_eq!(parallel, serial, "byte-identical at {workers} workers");
            assert_eq!(parallel_stats, serial_stats);
            let (traced, traced_stats, trace) = db.execute_traced(&plan).unwrap();
            assert_eq!(traced, serial);
            assert_eq!(traced_stats, serial_stats);
            assert_eq!(trace.totals(), traced_stats);
        }
    }

    #[test]
    fn hash_join_over_threshold_replaces_probes_with_one_build() {
        let mut db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::inner("OFFER", &["C.K"], &["O.K"]));
        // Force the hash strategy: the OFFER unique index becomes the
        // build side, so no per-row probes are counted.
        db.configure(db.config().hash_join_threshold(0));
        let (hashed, hash_stats) = db.execute(&plan).unwrap();
        assert_eq!(hash_stats.hash_builds, 1);
        assert_eq!(hash_stats.index_probes, 0);
        // Force index-nested-loop: the pre-morsel counters.
        db.configure(db.config().hash_join_threshold(usize::MAX));
        let (inl, inl_stats) = db.execute(&plan).unwrap();
        assert_eq!(inl_stats.hash_builds, 0);
        assert_eq!(inl_stats.index_probes, 10);
        assert_eq!(hashed, inl, "strategy changes cost, not the result");
    }

    #[test]
    fn outer_hash_join_pads_like_inl() {
        let mut db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]));
        db.configure(db.config().hash_join_threshold(usize::MAX));
        let (inl, _) = db.execute(&plan).unwrap();
        db.configure(db.config().hash_join_threshold(0));
        let (hashed, stats) = db.execute(&plan).unwrap();
        assert_eq!(stats.hash_builds, 1);
        assert_eq!(hashed, inl);
        assert!(hashed.contains(&Tuple::new([Value::Int(1), Value::Null, Value::Null])));
    }

    #[test]
    fn hash_join_without_covering_index_builds_from_one_scan() {
        // Join OFFER to itself-shaped data on the *non-indexed* O.D
        // column: no unique or lookup index covers it, so the pre-morsel
        // executor scanned the whole table per left row. The hash strategy
        // scans it once to build.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("L", vec![a("L.K"), a("L.V")], &["L.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("R", vec![a("R.K"), a("R.V")], &["R.K"]).unwrap())
            .unwrap();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        for k in 0..12 {
            db.insert("L", tup(&[k, k % 3])).unwrap();
            db.insert("R", tup(&[k, k % 4])).unwrap();
        }
        let plan = QueryPlan::scan("L").join(JoinStep::inner("R", &["L.V"], &["R.V"]));
        db.configure(db.config().hash_join_threshold(usize::MAX));
        let (inl, inl_stats) = db.execute(&plan).unwrap();
        assert_eq!(inl_stats.rows_scanned, 12 + 12 * 12, "scan per left row");
        db.configure(db.config().hash_join_threshold(64)); // left = 12 < 64, but no index ⇒ hash
        let (hashed, hash_stats) = db.execute(&plan).unwrap();
        assert_eq!(hash_stats.hash_builds, 1);
        assert_eq!(
            hash_stats.rows_scanned,
            12 + 12,
            "root scan + one build scan"
        );
        assert_eq!(hashed, inl);
        // The strictly-lower claim of the clone-free/hash path.
        assert!(hash_stats.rows_scanned < inl_stats.rows_scanned);
    }

    /// L(L.K, L.V) / R(R.K, R.V): no index covers the V columns, so a
    /// hash join on them needs a transient build.
    fn lr_db(rows: i64) -> Database {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("L", vec![a("L.K"), a("L.V")], &["L.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("R", vec![a("R.K"), a("R.V")], &["R.K"]).unwrap())
            .unwrap();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        for k in 0..rows {
            db.insert("L", tup(&[k, k % 3])).unwrap();
            db.insert("R", tup(&[k, k % 4])).unwrap();
        }
        db.configure(db.config().hash_join_threshold(0));
        db
    }

    fn lr_plan() -> QueryPlan {
        QueryPlan::scan("L").join(JoinStep::inner("R", &["L.V"], &["R.V"]))
    }

    #[test]
    fn root_filter_pushdown_is_equivalent_and_traced() {
        let mut db = db();
        db.configure(db.config().morsel_rows(2));
        // A root-only predicate on a full scan runs pre-join,
        // morsel-parallel, without changing results or stats.
        let plan = QueryPlan::scan("COURSE")
            .join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]))
            .filter(Predicate::not_null("C.K").and(Predicate::eq("C.K", 4i64).negate()));
        db.configure(db.config().parallelism(1));
        let (serial, serial_stats, trace) = db.execute_traced(&plan).unwrap();
        assert_eq!(serial.len(), 9);
        assert_eq!(trace.totals(), serial_stats);
        assert_eq!(trace.ops[1].kind, OpKind::Filter);
        assert_eq!(trace.ops[1].label, "Filter (pushed to scan)");
        assert_eq!(trace.ops[1].stats.rows_in, 10);
        assert_eq!(trace.ops[1].stats.rows_out, 9);
        for workers in [2, 4] {
            db.configure(db.config().parallelism(workers));
            let (parallel, parallel_stats) = db.execute(&plan).unwrap();
            assert_eq!(parallel, serial, "pushdown byte-identical at {workers}");
            assert_eq!(parallel_stats, serial_stats);
        }
        // A predicate needing join attributes still runs post-join.
        let plan = QueryPlan::scan("COURSE")
            .join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]))
            .filter(Predicate::is_null("O.K"));
        let (result, _, trace) = db.execute_traced(&plan).unwrap();
        assert_eq!(result.len(), 5);
        assert_eq!(trace.ops[2].kind, OpKind::Filter);
        assert_eq!(trace.ops[2].label, "Filter");
    }

    #[test]
    fn build_cache_reuses_transient_builds_until_mutation() {
        let mut db = lr_db(12);
        let plan = lr_plan();
        let counters = |db: &Database| {
            let snap = db.metrics_registry().snapshot();
            (
                snap.counters["engine.query.build_cache.hits"],
                snap.counters["engine.query.build_cache.misses"],
            )
        };
        let (cold, cold_stats, cold_trace) = db.execute_traced(&plan).unwrap();
        assert_eq!(cold.len(), 36);
        assert_eq!(counters(&db), (0, 1));
        assert!(
            cold_trace.ops[1].label.ends_with("[build: serial]"),
            "{}",
            cold_trace.ops[1].label
        );
        assert_eq!(db.build_cache_len(), 1);
        assert!(db.build_cache_bytes() > 0);
        let (warm, warm_stats, warm_trace) = db.execute_traced(&plan).unwrap();
        assert_eq!(counters(&db), (1, 1));
        assert!(
            warm_trace.ops[1].label.ends_with("[build: cached]"),
            "{}",
            warm_trace.ops[1].label
        );
        assert_eq!(warm, cold, "cache changes wall time, never results");
        assert_eq!(warm_stats, cold_stats, "hits charge the stored build costs");
        // A mutation bumps the version: the next run misses and rebuilds
        // against the new rows; the stale entry just ages out via LRU.
        db.insert("R", tup(&[100, 1])).unwrap();
        let (after, _) = db.execute(&plan).unwrap();
        assert_eq!(counters(&db), (1, 2));
        assert_eq!(after.len(), 40, "4 more matches for L.V = 1");
        assert_eq!(db.build_cache_len(), 2);
        db.clear_build_cache();
        assert_eq!(db.build_cache_len(), 0);
        // Capacity 0 disables caching: every run is a cold miss.
        db.configure(db.config().build_cache_capacity(0));
        let (off, _) = db.execute(&plan).unwrap();
        assert_eq!(counters(&db), (1, 3));
        assert_eq!(db.build_cache_len(), 0);
        assert_eq!(off, after);
    }

    #[test]
    fn parallel_builds_are_byte_identical_to_serial() {
        let mut db = lr_db(200);
        let plan = lr_plan();
        db.configure(db.config().parallelism(4));
        db.configure(db.config().build_parallel_threshold(usize::MAX));
        let (serial, serial_stats) = db.execute(&plan).unwrap();
        db.clear_build_cache();
        db.configure(db.config().build_parallel_threshold(8));
        let (parallel, parallel_stats, trace) = db.execute_traced(&plan).unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(parallel_stats, serial_stats);
        assert!(
            trace.ops[1].label.ends_with("[build: 4 workers]"),
            "{}",
            trace.ops[1].label
        );
        let snap = db.metrics_registry().snapshot();
        assert_eq!(snap.counters["engine.query.build.parallel"], 1);
    }

    #[test]
    fn build_byte_budget_trips_with_typed_error() {
        use crate::fault::QueryBudget;
        let mut db = lr_db(12);
        let plan = lr_plan();
        db.configure(
            db.config()
                .query_budget(QueryBudget::unlimited().with_max_build_bytes(1)),
        );
        let err = db.execute(&plan).unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }), "{err}");
        assert_eq!(
            db.metrics_registry().snapshot().counters["engine.query.aborts.budget"],
            1
        );
        // A roomy cap passes, and the cached build charges the same bytes
        // on the warm run.
        db.configure(
            db.config()
                .query_budget(QueryBudget::unlimited().with_max_build_bytes(1 << 20)),
        );
        let (cold, _) = db.execute(&plan).unwrap();
        let (warm, _) = db.execute(&plan).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn build_faults_never_poison_the_cache() {
        use crate::fault::{FaultMode, FaultPlan};
        let mut db = lr_db(12);
        let plan = lr_plan();
        let (baseline, _) = db.execute(&plan).unwrap();
        for (site_name, mode) in [
            (site::HASH_BUILD, FaultMode::Error),
            (site::HASH_BUILD, FaultMode::Panic),
            (site::BUILD_CACHE_INSERT, FaultMode::Error),
            (site::BUILD_CACHE_INSERT, FaultMode::Panic),
        ] {
            db.clear_build_cache();
            db.set_fault_plan(FaultPlan::new().fail_at(site_name, 0, mode));
            let err = db.execute(&plan).unwrap_err();
            match mode {
                FaultMode::Error => {
                    assert!(matches!(err, Error::Injected { .. }), "{site_name}: {err}");
                }
                FaultMode::Panic => {
                    assert!(
                        matches!(err, Error::ExecutionPanic { .. }),
                        "{site_name}: {err}"
                    );
                }
            }
            assert_eq!(db.build_cache_len(), 0, "{site_name}: no poisoned entry");
            db.clear_fault_plan();
            let (recovered, _) = db.execute(&plan).unwrap();
            assert_eq!(recovered, baseline, "{site_name}: clean recovery");
        }
    }

    #[test]
    fn probe_key_allocations_are_counted_saved() {
        let db = db();
        let plan = QueryPlan::scan("COURSE").join(JoinStep::inner("OFFER", &["C.K"], &["O.K"]));
        db.execute(&plan).unwrap();
        let snap = db.metrics_registry().snapshot();
        assert_eq!(
            snap.counters["engine.query.probe_key.saved_allocs"], 10,
            "one saved key allocation per probed left row"
        );
    }

    #[test]
    fn hash_join_label_in_trace() {
        let mut db = db();
        db.configure(db.config().hash_join_threshold(0));
        let plan = QueryPlan::scan("COURSE").join(JoinStep::outer("OFFER", &["C.K"], &["O.K"]));
        let (_, stats, trace) = db.execute_traced(&plan).unwrap();
        assert_eq!(trace.totals(), stats);
        assert_eq!(trace.ops[1].kind, OpKind::Join);
        assert!(
            trace.ops[1].label.starts_with("OuterHashJoin OFFER"),
            "{}",
            trace.ops[1].label
        );
        assert_eq!(trace.ops[1].stats.hash_builds, 1);
        assert!(trace.to_string().contains("hash_builds=1"));
    }
}
