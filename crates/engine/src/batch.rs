//! Batched DML with deferred constraint checking, behind a unified
//! statement API.
//!
//! Every mutation of a [`Database`] — the single-statement convenience
//! methods, [`Transaction`](crate::Transaction) statements, and whole
//! batches — flows through one executor over [`Statement`] values, in one
//! of two checking modes:
//!
//! * **immediate** — every constraint is verified before the row lands,
//!   exactly like the classic per-statement path;
//! * **deferred** — rows land after only structural and key-uniqueness
//!   checks, and inclusion dependencies, null constraints, and RESTRICT
//!   semantics are validated *once per constraint over the set of touched
//!   rows* when the batch commits (SQL-92 `DEFERRABLE INITIALLY DEFERRED`).
//!
//! Deferral is what makes order-free batches possible: a referencing child
//! may be inserted before its parent, a parent deleted before its children,
//! and a cyclic pair of inclusion dependencies — which no sequence of
//! eagerly-checked statements can ever populate — becomes insertable in a
//! single batch. It is also cheaper: group validation runs each constraint
//! class once per touched relation (deduplicating repeated foreign-key
//! values into single index probes) instead of re-probing per statement,
//! which is the §5.1 maintenance cost amortized over the batch. For large
//! batches touching several relations, group validation fans out across
//! relations with [`std::thread::scope`].
//!
//! Key uniqueness is the exception: it is checked eagerly even in deferred
//! mode, because the hash indexes that back every other check must stay
//! consistent while the batch applies — the same reason SQL `PRIMARY KEY`
//! constraints are typically not deferrable.
//!
//! All-or-nothing semantics reuse the undo machinery shared with
//! [`Database::transaction`]: a batch that fails any check (immediate or
//! deferred) is rolled back completely, leaving rows *and indexes* exactly
//! as they were.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use relmerge_obs::{self as obs};
use relmerge_relational::{Error, Relation, Tuple};

use crate::database::{singleton_relation, CheckClass, Database, DmlError};
use crate::fault::{panic_message, site};

/// One DML statement, the unit of the unified execution path.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// Insert `tuple` into `rel`.
    Insert {
        /// Target relation.
        rel: String,
        /// The tuple to insert.
        tuple: Tuple,
    },
    /// Delete the row of `rel` whose primary key equals `key`.
    Delete {
        /// Target relation.
        rel: String,
        /// Primary-key value of the victim.
        key: Tuple,
    },
    /// Replace the row of `rel` whose primary key equals `key` with
    /// `tuple` (which may change the key).
    Update {
        /// Target relation.
        rel: String,
        /// Primary-key value of the row to replace.
        key: Tuple,
        /// The replacement tuple.
        tuple: Tuple,
    },
}

impl Statement {
    /// An insert statement.
    pub fn insert(rel: impl Into<String>, tuple: Tuple) -> Self {
        Statement::Insert {
            rel: rel.into(),
            tuple,
        }
    }

    /// A delete-by-primary-key statement.
    pub fn delete(rel: impl Into<String>, key: Tuple) -> Self {
        Statement::Delete {
            rel: rel.into(),
            key,
        }
    }

    /// An update-by-primary-key statement.
    pub fn update(rel: impl Into<String>, key: Tuple, tuple: Tuple) -> Self {
        Statement::Update {
            rel: rel.into(),
            key,
            tuple,
        }
    }

    /// The relation this statement targets.
    #[must_use]
    pub fn rel(&self) -> &str {
        match self {
            Statement::Insert { rel, .. }
            | Statement::Delete { rel, .. }
            | Statement::Update { rel, .. } => rel,
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Insert { rel, tuple } => write!(f, "INSERT INTO {rel} {tuple}"),
            Statement::Delete { rel, key } => write!(f, "DELETE FROM {rel} WHERE pk = {key}"),
            Statement::Update { rel, key, tuple } => {
                write!(f, "UPDATE {rel} SET {tuple} WHERE pk = {key}")
            }
        }
    }
}

/// What one statement of a committed batch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementOutcome {
    /// A new tuple landed.
    Inserted,
    /// An existing row was removed.
    Deleted,
    /// An existing row was replaced (or the replacement was identical).
    Updated,
    /// Nothing changed: duplicate identical insert, or delete/update of a
    /// missing key.
    Noop,
}

/// The report of a committed batch: what each statement did, and how much
/// validation work the commit performed.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-statement outcomes, parallel to the input slice. When the batch
    /// *fails*, [`Database::apply_batch`] instead returns
    /// [`DmlError::AtStatement`] naming the failing statement.
    pub outcomes: Vec<StatementOutcome>,
    /// Whether constraint checking was deferred to commit (profile
    /// capability) or fell back to immediate per-statement checks.
    pub deferred: bool,
    /// Group validations performed at commit (0 in immediate mode).
    pub deferred_checks: u64,
}

impl BatchOutcome {
    /// Statements that changed the database.
    #[must_use]
    pub fn applied(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !matches!(o, StatementOutcome::Noop))
            .count()
    }

    /// Statements that were no-ops.
    #[must_use]
    pub fn noops(&self) -> usize {
        self.outcomes.len() - self.applied()
    }
}

/// One undoable change — the shared rollback unit of transactions and
/// batches.
pub(crate) enum Undo {
    /// Remove the tuple that was inserted.
    Insert {
        /// Relation the tuple went into.
        rel: String,
        /// The inserted tuple.
        tuple: Tuple,
    },
    /// Re-insert the tuple that was deleted.
    Delete {
        /// Relation the tuple came from.
        rel: String,
        /// The removed tuple.
        tuple: Tuple,
    },
}

impl Undo {
    /// Approximate heap footprint of this entry — the batch path's
    /// analogue of the executor's intermediate-byte accounting, so the
    /// staging cost of a batch is observable before it commits.
    fn approx_bytes(&self) -> u64 {
        let (Undo::Insert { rel, tuple } | Undo::Delete { rel, tuple }) = self;
        (std::mem::size_of::<Undo>() + rel.len() + std::mem::size_of_val(tuple.values())) as u64
    }
}

/// Rolls back after a write-ahead append failed on an otherwise valid
/// commit, keeping the append failure as the root cause: if the rollback
/// itself also fails, the returned error carries *both* faults — a
/// durability fault must never be masked by the cleanup it triggered.
pub(crate) fn rollback_after_failed_append(
    db: &mut Database,
    undo: Vec<Undo>,
    append_err: Error,
) -> DmlError {
    match rollback(db, undo) {
        Ok(()) => DmlError::from(append_err),
        Err(rollback_err) => DmlError::Schema(Error::Durability {
            detail: format!(
                "write-ahead append failed ({append_err}); the rollback of the \
                 un-logged commit then failed too ({rollback_err}) — in-memory \
                 state no longer matches the log"
            ),
        }),
    }
}

/// Reverses every recorded change, newest first.
pub(crate) fn rollback(db: &mut Database, undo: Vec<Undo>) -> Result<(), DmlError> {
    for entry in undo.into_iter().rev() {
        match entry {
            Undo::Insert { rel, tuple } => {
                db.raw_remove(&rel, &tuple).map_err(DmlError::Schema)?;
            }
            Undo::Delete { rel, tuple } => {
                db.raw_insert(&rel, tuple).map_err(DmlError::Schema)?;
            }
        }
    }
    Ok(())
}

/// Net rows a deferred batch touched in one relation, with the index of
/// the statement that touched each (for error attribution).
#[derive(Default)]
struct TouchedRel {
    /// Rows inserted by the batch and still live.
    inserted: Vec<(Tuple, usize)>,
    /// Pre-existing rows the batch removed.
    deleted: Vec<(Tuple, usize)>,
}

impl TouchedRel {
    fn first_index(&self) -> usize {
        self.inserted
            .iter()
            .chain(&self.deleted)
            .map(|(_, i)| *i)
            .min()
            .unwrap_or(0)
    }
}

/// Per-relation touch sets of one deferred batch.
#[derive(Default)]
struct Touched {
    rels: BTreeMap<String, TouchedRel>,
}

impl Touched {
    fn record_insert(&mut self, rel: &str, tuple: Tuple, index: usize) {
        self.rels
            .entry(rel.to_owned())
            .or_default()
            .inserted
            .push((tuple, index));
    }

    fn record_delete(&mut self, rel: &str, tuple: Tuple, index: usize) {
        let touched = self.rels.entry(rel.to_owned()).or_default();
        // Deleting a row the batch itself inserted is a net no-op: it is
        // neither a new row to validate nor a pre-existing row whose
        // removal could orphan references that predate the batch.
        if let Some(pos) = touched.inserted.iter().position(|(t, _)| *t == tuple) {
            touched.inserted.swap_remove(pos);
        } else {
            touched.deleted.push((tuple, index));
        }
    }

    fn total_rows(&self) -> usize {
        self.rels
            .values()
            .map(|t| t.inserted.len() + t.deleted.len())
            .sum()
    }
}

/// A deferred violation: which statement caused it, and why.
struct Violation {
    index: usize,
    error: DmlError,
}

/// Batches at or above this many touched rows (spanning at least two
/// relations) validate relations on parallel threads.
const PARALLEL_ROW_THRESHOLD: usize = 512;

/// The span/metrics label for a unified-path DML result.
fn outcome_label(result: &Result<StatementOutcome, DmlError>) -> &'static str {
    match result {
        Ok(StatementOutcome::Inserted) => "inserted",
        Ok(StatementOutcome::Deleted) => "deleted",
        Ok(StatementOutcome::Updated) => "updated",
        Ok(StatementOutcome::Noop) => "noop",
        Err(DmlError::ConstraintViolation(_) | DmlError::AtStatement { .. }) => "rejected",
        Err(DmlError::Schema(_)) => "error",
    }
}

impl Database {
    /// Inserts a tuple, enforcing every constraint. On success returns
    /// whether the tuple was new (duplicate inserts of an identical tuple
    /// are idempotent successes, matching set semantics).
    pub fn insert(&mut self, rel: &str, t: Tuple) -> Result<bool, DmlError> {
        let stmt = Statement::Insert {
            rel: rel.to_owned(),
            tuple: t,
        };
        Ok(matches!(self.apply_one(&stmt)?, StatementOutcome::Inserted))
    }

    /// Deletes the tuple with the given primary-key value, enforcing
    /// RESTRICT semantics on incoming inclusion dependencies.
    pub fn delete_by_key(&mut self, rel: &str, key: &Tuple) -> Result<bool, DmlError> {
        let stmt = Statement::Delete {
            rel: rel.to_owned(),
            key: key.clone(),
        };
        Ok(matches!(self.apply_one(&stmt)?, StatementOutcome::Deleted))
    }

    /// Updates the row with primary key `key` to `new`, atomically. The
    /// new tuple may change the key; referential RESTRICT applies only to
    /// referenced projections that actually change. Returns whether a row
    /// with that key existed.
    pub fn update_by_key(&mut self, rel: &str, key: &Tuple, new: Tuple) -> Result<bool, DmlError> {
        let stmt = Statement::Update {
            rel: rel.to_owned(),
            key: key.clone(),
            tuple: new,
        };
        Ok(matches!(self.apply_one(&stmt)?, StatementOutcome::Updated))
    }

    /// Runs one statement through the unified immediate path with span and
    /// latency instrumentation — the single-statement public API.
    fn apply_one(&mut self, stmt: &Statement) -> Result<StatementOutcome, DmlError> {
        let start = Instant::now();
        let span_name = match stmt {
            Statement::Insert { .. } => "engine.dml.insert",
            Statement::Delete { .. } => "engine.dml.delete",
            Statement::Update { .. } => "engine.dml.update",
        };
        let mut span = obs::span(span_name);
        span.add_field("rel", stmt.rel());
        // The statement runs with a local undo log so that on a durable
        // database a failed write-ahead append (error or panic) can roll
        // the mutation back — the WAL ordering guarantee has no statement
        // granularity exemption. A Noop outcome leaves `undo` empty and
        // appends nothing.
        let mut undo: Vec<Undo> = Vec::new();
        let result = self.execute_statement(stmt, Some(&mut undo));
        let result = match result {
            Ok(outcome) if !undo.is_empty() => {
                let logged = catch_unwind(AssertUnwindSafe(|| {
                    self.wal_append_batch(std::slice::from_ref(stmt))
                }))
                .unwrap_or_else(|payload| {
                    Err(Error::ExecutionPanic {
                        context: panic_message(payload),
                    })
                });
                match logged {
                    Ok(()) => Ok(outcome),
                    Err(e) => Err(rollback_after_failed_append(self, undo, e)),
                }
            }
            other => other,
        };
        let ns = obs::elapsed_ns(start);
        match stmt {
            Statement::Insert { .. } => self.metrics.insert_ns.record(ns),
            Statement::Delete { .. } => self.metrics.delete_ns.record(ns),
            Statement::Update { .. } => self.metrics.update_ns.record(ns),
        }
        span.add_field("result", outcome_label(&result));
        result
    }

    /// The immediate-mode executor every DML entry point shares. Records
    /// changes into `undo` when the caller is a transaction or batch; a
    /// standalone statement passes `None` (a single eagerly-checked
    /// statement never needs rollback — updates carry their own).
    pub(crate) fn execute_statement(
        &mut self,
        stmt: &Statement,
        undo: Option<&mut Vec<Undo>>,
    ) -> Result<StatementOutcome, DmlError> {
        match stmt {
            Statement::Insert { rel, tuple } => {
                let fresh = self.insert_inner(rel, tuple.clone())?;
                if fresh {
                    if let Some(undo) = undo {
                        undo.push(Undo::Insert {
                            rel: rel.clone(),
                            tuple: tuple.clone(),
                        });
                    }
                    Ok(StatementOutcome::Inserted)
                } else {
                    Ok(StatementOutcome::Noop)
                }
            }
            Statement::Delete { rel, key } => match self.delete_inner(rel, key)? {
                Some(victim) => {
                    if let Some(undo) = undo {
                        undo.push(Undo::Delete {
                            rel: rel.clone(),
                            tuple: victim,
                        });
                    }
                    Ok(StatementOutcome::Deleted)
                }
                None => Ok(StatementOutcome::Noop),
            },
            Statement::Update { rel, key, tuple } => {
                let Some((_, old)) = self.find_by_pk(rel, key)? else {
                    return Ok(StatementOutcome::Noop);
                };
                if old == *tuple {
                    return Ok(StatementOutcome::Updated);
                }
                // Delete-then-insert under a statement-local undo log, so a
                // failed update restores the old row even outside any
                // transaction. The delete's RESTRICT check is what makes
                // key-changing updates safe.
                let mut local: Vec<Undo> = Vec::new();
                let result = (|| -> Result<(), DmlError> {
                    match self.delete_inner(rel, key)? {
                        Some(victim) => local.push(Undo::Delete {
                            rel: rel.clone(),
                            tuple: victim,
                        }),
                        None => unreachable!("row located above"),
                    }
                    if self.insert_inner(rel, tuple.clone())? {
                        local.push(Undo::Insert {
                            rel: rel.clone(),
                            tuple: tuple.clone(),
                        });
                    }
                    Ok(())
                })();
                match result {
                    Ok(()) => {
                        if let Some(undo) = undo {
                            undo.append(&mut local);
                        }
                        self.metrics.updates.inc();
                        Ok(StatementOutcome::Updated)
                    }
                    Err(e) => {
                        rollback(self, local)?;
                        Err(e)
                    }
                }
            }
        }
    }

    /// Applies `stmts` atomically. When the profile supports deferred
    /// checking, null constraints, inclusion dependencies, and RESTRICT
    /// semantics are validated once per constraint over the touched rows at
    /// commit — so statements may arrive in any order, including a
    /// referencing child before its parent. Profiles without the capability
    /// fall back to immediate per-statement checking (still all-or-nothing,
    /// but order-sensitive).
    ///
    /// On failure the returned [`DmlError::AtStatement`] names the
    /// statement that caused the rejection and the whole batch is rolled
    /// back: rows and indexes are exactly as before the call.
    pub fn apply_batch(&mut self, stmts: &[Statement]) -> Result<BatchOutcome, DmlError> {
        let start = Instant::now();
        let deferred = self.profile().deferred_checking;
        let mut span = obs::span("engine.batch.apply");
        span.add_field("statements", stmts.len());
        span.add_field("mode", if deferred { "deferred" } else { "immediate" });
        let mut undo: Vec<Undo> = Vec::new();
        let mut outcomes = Vec::with_capacity(stmts.len());
        // The whole forward path — statement apply, deferred group
        // validation, the commit tail — runs under `catch_unwind`, with the
        // undo log owned *outside* the closure. Every mutation records its
        // undo entry before any fault site can fire again, so a panic
        // anywhere inside (injected or genuine) leaves `undo` complete:
        // the caught panic becomes a typed error and takes the same
        // rollback path a constraint violation does.
        let forward = catch_unwind(AssertUnwindSafe(|| -> Result<u64, DmlError> {
            let mut touched = Touched::default();
            for (i, stmt) in stmts.iter().enumerate() {
                self.fault_check(site::STATEMENT_APPLY)
                    .map_err(|e| DmlError::at_statement(i, e.into()))?;
                let applied = if deferred {
                    self.apply_deferred(stmt, i, &mut undo, &mut touched)
                } else {
                    self.execute_statement(stmt, Some(&mut undo))
                };
                match applied {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(e) => return Err(DmlError::at_statement(i, e)),
                }
            }
            let checks = if deferred {
                match self.validate_deferred(&touched) {
                    Ok(c) => c,
                    Err(e) => {
                        // Apply-time failures already counted themselves;
                        // commit-time violations are counted here.
                        self.metrics.rejected.inc();
                        return Err(e);
                    }
                }
            } else {
                0
            };
            self.fault_check(site::COMMIT)?;
            // Write-ahead: on a durable database the batch's log record
            // must be on disk before the commit becomes visible. A failed
            // append — IO error, injected error, or injected panic at
            // `engine.wal.append` — takes the same rollback path a
            // constraint violation does, so nothing un-logged survives.
            self.wal_append_batch(stmts).map_err(DmlError::from)?;
            Ok(checks)
        }));
        let result = forward.unwrap_or_else(|payload| {
            Err(DmlError::Schema(Error::ExecutionPanic {
                context: panic_message(payload),
            }))
        });
        self.metrics.batch_size.record(stmts.len() as u64);
        self.metrics.batch_ns.record(obs::elapsed_ns(start));
        // Undo-log footprint at its high-water mark (the log is complete
        // here whether the batch commits or rolls back).
        let undo_bytes: u64 = undo.iter().map(Undo::approx_bytes).sum();
        self.metrics.undo_entries.record(undo.len() as u64);
        self.metrics.undo_bytes.record(undo_bytes);
        span.add_field("undo_entries", undo.len());
        match result {
            Ok(deferred_checks) => {
                self.metrics.batch_commits.inc();
                span.add_field("result", "committed");
                span.add_field("deferred_checks", deferred_checks);
                Ok(BatchOutcome {
                    outcomes,
                    deferred,
                    deferred_checks,
                })
            }
            Err(e) => {
                match e.root_cause() {
                    DmlError::Schema(Error::Injected { .. }) => self.metrics.injected_aborts.inc(),
                    DmlError::Schema(Error::ExecutionPanic { .. }) => {
                        self.metrics.panic_aborts.inc();
                    }
                    _ => {}
                }
                rollback(self, undo)?;
                self.metrics.batch_rollbacks.inc();
                span.add_field("result", "rolled_back");
                Err(e)
            }
        }
    }

    /// The deferred-mode apply step: structural and key-uniqueness checks
    /// only, then the row lands raw; everything else waits for commit.
    fn apply_deferred(
        &mut self,
        stmt: &Statement,
        index: usize,
        undo: &mut Vec<Undo>,
        touched: &mut Touched,
    ) -> Result<StatementOutcome, DmlError> {
        match stmt {
            Statement::Insert { rel, tuple } => {
                self.validate_shape(rel, tuple)?;
                if self.check_unique(rel, tuple)? {
                    return Ok(StatementOutcome::Noop);
                }
                self.fault_check(site::INDEX_MAINTENANCE)?;
                self.raw_insert(rel, tuple.clone())
                    .map_err(DmlError::Schema)?;
                self.metrics.inserts.inc();
                undo.push(Undo::Insert {
                    rel: rel.clone(),
                    tuple: tuple.clone(),
                });
                touched.record_insert(rel, tuple.clone(), index);
                Ok(StatementOutcome::Inserted)
            }
            Statement::Delete { rel, key } => {
                let Some((slot, victim)) = self.find_by_pk(rel, key)? else {
                    return Ok(StatementOutcome::Noop);
                };
                self.fault_check(site::INDEX_MAINTENANCE)?;
                self.remove_slot(rel, slot, &victim);
                self.metrics.deletes.inc();
                undo.push(Undo::Delete {
                    rel: rel.clone(),
                    tuple: victim.clone(),
                });
                touched.record_delete(rel, victim, index);
                Ok(StatementOutcome::Deleted)
            }
            Statement::Update { rel, key, tuple } => {
                let Some((slot, old)) = self.find_by_pk(rel, key)? else {
                    return Ok(StatementOutcome::Noop);
                };
                if old == *tuple {
                    return Ok(StatementOutcome::Updated);
                }
                self.validate_shape(rel, tuple)?;
                self.fault_check(site::INDEX_MAINTENANCE)?;
                self.remove_slot(rel, slot, &old);
                undo.push(Undo::Delete {
                    rel: rel.clone(),
                    tuple: old.clone(),
                });
                touched.record_delete(rel, old, index);
                if !self.check_unique(rel, tuple)? {
                    self.fault_check(site::INDEX_MAINTENANCE)?;
                    self.raw_insert(rel, tuple.clone())
                        .map_err(DmlError::Schema)?;
                    undo.push(Undo::Insert {
                        rel: rel.clone(),
                        tuple: tuple.clone(),
                    });
                    touched.record_insert(rel, tuple.clone(), index);
                }
                self.metrics.updates.inc();
                self.metrics.inserts.inc();
                self.metrics.deletes.inc();
                Ok(StatementOutcome::Updated)
            }
        }
    }

    /// Commit-time group validation: each deferred constraint class is
    /// checked once over the touched rows of each relation. Independent
    /// relations validate on parallel threads for large batches. Returns
    /// the number of group checks performed.
    fn validate_deferred(&self, touched: &Touched) -> Result<u64, DmlError> {
        let rels: Vec<(&String, &TouchedRel)> = touched.rels.iter().collect();
        let results: Vec<Result<u64, Violation>> =
            if rels.len() >= 2 && touched.total_rows() >= PARALLEL_ROW_THRESHOLD {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = rels
                        .iter()
                        .map(|(name, tr)| scope.spawn(move || self.validate_relation(name, tr)))
                        .collect();
                    // A panicked validation worker (injected or genuine)
                    // fails only its relation: the panic becomes a typed
                    // violation attributed to that relation's earliest
                    // statement, and the batch rolls back normally.
                    handles
                        .into_iter()
                        .zip(&rels)
                        .map(|(h, (_, tr))| {
                            h.join().unwrap_or_else(|payload| {
                                Err(Violation {
                                    index: tr.first_index(),
                                    error: DmlError::Schema(Error::ExecutionPanic {
                                        context: panic_message(payload),
                                    }),
                                })
                            })
                        })
                        .collect()
                })
            } else {
                rels.iter()
                    .map(|(name, tr)| self.validate_relation(name, tr))
                    .collect()
            };
        let mut checks = 0u64;
        let mut worst: Option<Violation> = None;
        for r in results {
            match r {
                Ok(c) => checks += c,
                Err(v) => {
                    // Deterministic attribution: the earliest failing
                    // statement wins, whatever order threads finish in.
                    if worst.as_ref().is_none_or(|w| v.index < w.index) {
                        worst = Some(v);
                    }
                }
            }
        }
        match worst {
            None => Ok(checks),
            Some(v) => Err(DmlError::at_statement(v.index, v.error)),
        }
    }

    /// Group-validates one relation's touch set: null constraints over the
    /// inserted rows, outgoing inclusion dependencies over the distinct
    /// foreign subtuples, RESTRICT over the distinct referenced values the
    /// deletes removed.
    fn validate_relation(&self, rel: &str, tr: &TouchedRel) -> Result<u64, Violation> {
        let structural = |e: DmlError| Violation {
            index: tr.first_index(),
            error: e,
        };
        self.fault_check(site::GROUP_VALIDATE)
            .map_err(|e| structural(e.into()))?;
        let mut checks = 0u64;
        if !tr.inserted.is_empty() {
            // Null constraints: one group check per constraint over a
            // relation holding exactly the batch-inserted rows.
            if let Some(constraints) = self.nulls.get(rel).filter(|c| !c.is_empty()) {
                let header = self.tables[rel].header.clone();
                let group = Relation::with_rows(header, tr.inserted.iter().map(|(t, _)| t.clone()))
                    .map_err(|e| structural(e.into()))?;
                for c in constraints {
                    let t0 = Instant::now();
                    let ok = c
                        .constraint
                        .satisfied_by(&group)
                        .map_err(|e| structural(e.into()))?;
                    self.metrics.record_check(CheckClass::Null, c.mechanism, t0);
                    self.metrics.deferred.inc();
                    checks += 1;
                    if !ok {
                        // Pinpoint the offending statement (failure path
                        // only; not metered).
                        let offender = tr
                            .inserted
                            .iter()
                            .find(|(t, _)| {
                                let single = singleton_relation(&self.tables[rel].header, t);
                                !c.constraint.satisfied_by(&single).unwrap_or(true)
                            })
                            .map_or_else(|| tr.first_index(), |(_, i)| *i);
                        return Err(Violation {
                            index: offender,
                            error: DmlError::ConstraintViolation(c.constraint.to_string()),
                        });
                    }
                }
            }
            // Outgoing inclusion dependencies: one group check per
            // dependency, probing each *distinct* foreign subtuple once.
            for c in self
                .outgoing
                .get(rel)
                .map(Vec::as_slice)
                .unwrap_or_default()
            {
                let t0 = Instant::now();
                let lhs_pos = self.tables[rel]
                    .positions(&c.lhs_attrs)
                    .map_err(|e| structural(e.into()))?;
                let mut keys: HashMap<Tuple, usize> = HashMap::new();
                for (t, idx) in &tr.inserted {
                    if t.is_total_at(&lhs_pos) {
                        keys.entry(t.project(&lhs_pos))
                            .and_modify(|e| *e = (*e).min(*idx))
                            .or_insert(*idx);
                    }
                }
                let (_, map) = self.tables[&c.rhs_rel]
                    .lookups
                    .get(&c.rhs_attrs)
                    .expect("lookup indexes built for every IND");
                let mut dangling: Option<(usize, Tuple)> = None;
                for (key, idx) in &keys {
                    self.metrics.index_probes.inc();
                    // Batch-inserted target rows are live already, so
                    // child-before-parent (and self-reference) just works.
                    if !map.contains_key(key) && dangling.as_ref().is_none_or(|(i, _)| idx < i) {
                        dangling = Some((*idx, key.clone()));
                    }
                }
                self.metrics.record_check(CheckClass::Ind, c.mechanism, t0);
                self.metrics.deferred.inc();
                checks += 1;
                if let Some((idx, key)) = dangling {
                    return Err(Violation {
                        index: idx,
                        error: DmlError::ConstraintViolation(format!(
                            "`{rel}`[{}] = {key} has no match in `{}`[{}]",
                            c.lhs_attrs.join(","),
                            c.rhs_rel,
                            c.rhs_attrs.join(",")
                        )),
                    });
                }
            }
        }
        if !tr.deleted.is_empty() {
            // RESTRICT: one group check per incoming dependency, probing
            // each distinct referenced value the deletes removed. Indexes
            // are current, so a value re-provided by a batch insert — or a
            // referencing row deleted in the same batch — resolves
            // naturally.
            for c in self
                .incoming
                .get(rel)
                .map(Vec::as_slice)
                .unwrap_or_default()
            {
                let t0 = Instant::now();
                let rhs_pos = self.tables[rel]
                    .positions(&c.rhs_attrs)
                    .map_err(|e| structural(e.into()))?;
                let mut removed: HashMap<Tuple, usize> = HashMap::new();
                for (t, idx) in &tr.deleted {
                    if t.is_total_at(&rhs_pos) {
                        removed
                            .entry(t.project(&rhs_pos))
                            .and_modify(|e| *e = (*e).min(*idx))
                            .or_insert(*idx);
                    }
                }
                let mut orphaned: Option<(usize, Tuple)> = None;
                for (value, idx) in &removed {
                    self.metrics.index_probes.inc();
                    let still_provided = self.tables[rel]
                        .lookups
                        .get(&c.rhs_attrs)
                        .and_then(|(_, map)| map.get(value))
                        .is_some_and(|slots| !slots.is_empty());
                    if still_provided {
                        continue;
                    }
                    self.metrics.index_probes.inc();
                    let referencing = self.tables[&c.lhs_rel]
                        .lookups
                        .get(&c.lhs_attrs)
                        .and_then(|(_, map)| map.get(value))
                        .is_some_and(|slots| !slots.is_empty());
                    if referencing && orphaned.as_ref().is_none_or(|(i, _)| idx < i) {
                        orphaned = Some((*idx, value.clone()));
                    }
                }
                self.metrics
                    .record_check(CheckClass::Restrict, c.mechanism, t0);
                self.metrics.deferred.inc();
                checks += 1;
                if let Some((idx, value)) = orphaned {
                    return Err(Violation {
                        index: idx,
                        error: DmlError::ConstraintViolation(format!(
                            "RESTRICT: `{}`[{}] still references {value}",
                            c.lhs_rel,
                            c.lhs_attrs.join(",")
                        )),
                    });
                }
            }
        }
        Ok(checks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::DbmsProfile;
    use relmerge_relational::{
        Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Value,
    };

    fn a(n: &str) -> Attribute {
        Attribute::new(n, Domain::Int)
    }

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
    }

    /// P ← C via C.FK ⊆ P.K, with NNA keys.
    fn pc_schema() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("P", vec![a("P.K")], &["P.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("C", vec![a("C.K"), a("C.FK")], &["C.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("P", &["P.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("C", &["C.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("C", &["C.FK"], "P", &["P.K"]))
            .unwrap();
        rs
    }

    fn db() -> Database {
        Database::new(pc_schema(), DbmsProfile::ideal()).unwrap()
    }

    #[test]
    fn batch_commits_child_before_parent() {
        let mut d = db();
        let outcome = d
            .apply_batch(&[
                Statement::insert("C", tup(&[10, 1])),
                Statement::insert("P", tup(&[1])),
            ])
            .unwrap();
        assert!(outcome.deferred);
        assert_eq!(
            outcome.outcomes,
            [StatementOutcome::Inserted, StatementOutcome::Inserted]
        );
        assert_eq!(outcome.applied(), 2);
        assert_eq!(d.len("P"), 1);
        assert_eq!(d.len("C"), 1);
    }

    #[test]
    fn batch_delete_parent_before_child() {
        let mut d = db();
        d.insert("P", tup(&[1])).unwrap();
        d.insert("C", tup(&[10, 1])).unwrap();
        // Eagerly this order is RESTRICT-rejected.
        assert!(d.delete_by_key("P", &tup(&[1])).is_err());
        d.apply_batch(&[
            Statement::delete("P", tup(&[1])),
            Statement::delete("C", tup(&[10])),
        ])
        .unwrap();
        assert_eq!(d.len("P"), 0);
        assert_eq!(d.len("C"), 0);
    }

    #[test]
    fn failed_batch_reports_statement_and_rolls_back() {
        let mut d = db();
        d.insert("P", tup(&[1])).unwrap();
        let before = d.snapshot().unwrap();
        let err = d
            .apply_batch(&[
                Statement::insert("P", tup(&[2])),
                Statement::insert("C", tup(&[10, 2])),
                Statement::insert("C", tup(&[11, 99])), // dangling
            ])
            .unwrap_err();
        assert_eq!(err.statement_index(), Some(2));
        assert_eq!(d.snapshot().unwrap(), before);
        // Indexes intact: the engine still accepts and enforces DML.
        d.insert("C", tup(&[12, 1])).unwrap();
        assert!(d.insert("C", tup(&[13, 7])).is_err());
    }

    #[test]
    fn deferred_group_checks_are_fewer_than_eager() {
        let mut eager = db();
        let mut batched = db();
        let stmts: Vec<Statement> = (0..20)
            .map(|i| Statement::insert("C", Tuple::new([Value::Int(100 + i), Value::Null])))
            .collect();
        for s in &stmts {
            eager.execute_statement(s, None).unwrap();
        }
        let outcome = batched.apply_batch(&stmts).unwrap();
        assert!(outcome.deferred_checks > 0);
        let e = eager.take_stats();
        let b = batched.take_stats();
        assert_eq!(eager.snapshot().unwrap(), batched.snapshot().unwrap());
        assert_eq!(e.deferred_checks, 0);
        assert!(
            b.total_checks() < e.total_checks(),
            "batched {} vs eager {}",
            b.total_checks(),
            e.total_checks()
        );
    }

    #[test]
    fn deferred_ind_probes_dedupe_repeated_keys() {
        let mut eager = db();
        let mut batched = db();
        for d in [&mut eager, &mut batched] {
            d.insert("P", tup(&[1])).unwrap();
            let _ = d.take_stats();
        }
        // 30 children referencing the same parent: the batch probes the
        // parent index once, the eager path 30 times.
        let stmts: Vec<Statement> = (0..30)
            .map(|i| Statement::insert("C", tup(&[100 + i, 1])))
            .collect();
        for s in &stmts {
            eager.execute_statement(s, None).unwrap();
        }
        batched.apply_batch(&stmts).unwrap();
        let e = eager.take_stats();
        let b = batched.take_stats();
        assert_eq!(eager.snapshot().unwrap(), batched.snapshot().unwrap());
        assert!(
            b.index_probes < e.index_probes,
            "batched {} vs eager {}",
            b.index_probes,
            e.index_probes
        );
    }

    #[test]
    fn duplicate_key_in_batch_fails_fast_with_index() {
        let mut d = db();
        let out = d
            .apply_batch(&[
                Statement::insert("P", tup(&[1])),
                Statement::insert("P", tup(&[2])),
                Statement::insert("P", tup(&[1])), // identical tuple: noop
            ])
            .unwrap();
        assert_eq!(out.outcomes[2], StatementOutcome::Noop);
        let err = d
            .apply_batch(&[Statement::insert("C", tup(&[50, 1])), {
                Statement::insert("C", tup(&[50, 2])) // conflicting duplicate
            }])
            .unwrap_err();
        assert_eq!(err.statement_index(), Some(1));
        assert_eq!(d.len("C"), 0, "failed batch fully rolled back");
    }

    #[test]
    fn batch_update_and_noops_report_outcomes() {
        let mut d = db();
        d.insert("P", tup(&[1])).unwrap();
        d.insert("P", tup(&[2])).unwrap();
        d.insert("C", tup(&[10, 1])).unwrap();
        let outcome = d
            .apply_batch(&[
                Statement::update("C", tup(&[10]), tup(&[10, 2])),
                Statement::delete("C", tup(&[99])),
                Statement::insert("P", tup(&[1])),
            ])
            .unwrap();
        assert_eq!(
            outcome.outcomes,
            [
                StatementOutcome::Updated,
                StatementOutcome::Noop,
                StatementOutcome::Noop
            ]
        );
        assert_eq!(outcome.applied(), 1);
        assert_eq!(outcome.noops(), 2);
        assert_eq!(d.get_by_key("C", &tup(&[10])).unwrap(), Some(tup(&[10, 2])));
    }

    #[test]
    fn batch_insert_then_delete_is_net_noop() {
        let mut d = db();
        d.apply_batch(&[
            Statement::insert("P", tup(&[5])),
            Statement::delete("P", tup(&[5])),
        ])
        .unwrap();
        assert_eq!(d.len("P"), 0);
        // And the transient row must not satisfy anyone's FK.
        let err = d
            .apply_batch(&[
                Statement::insert("P", tup(&[6])),
                Statement::insert("C", tup(&[20, 6])),
                Statement::delete("P", tup(&[6])),
            ])
            .unwrap_err();
        assert!(matches!(err, DmlError::AtStatement { .. }));
        assert_eq!(d.len("C"), 0);
    }

    #[test]
    fn immediate_fallback_without_capability() {
        let mut d = Database::new(pc_schema(), DbmsProfile::db2()).unwrap();
        // DB2 has no deferred checking: child-before-parent fails…
        let err = d
            .apply_batch(&[
                Statement::insert("C", tup(&[10, 1])),
                Statement::insert("P", tup(&[1])),
            ])
            .unwrap_err();
        assert_eq!(err.statement_index(), Some(0));
        assert_eq!(d.len("C"), 0);
        assert_eq!(d.len("P"), 0, "immediate batch still atomic");
        // …but parent-first commits, with no deferred work.
        let outcome = d
            .apply_batch(&[
                Statement::insert("P", tup(&[1])),
                Statement::insert("C", tup(&[10, 1])),
            ])
            .unwrap();
        assert!(!outcome.deferred);
        assert_eq!(outcome.deferred_checks, 0);
        assert_eq!(d.stats().deferred_checks, 0);
    }

    #[test]
    fn large_batch_validates_in_parallel() {
        let mut d = db();
        let n = PARALLEL_ROW_THRESHOLD as i64;
        let mut stmts = Vec::new();
        for i in 0..n {
            stmts.push(Statement::insert("C", tup(&[1000 + i, i])));
        }
        for i in 0..n {
            stmts.push(Statement::insert("P", tup(&[i])));
        }
        let outcome = d.apply_batch(&stmts).unwrap();
        assert_eq!(outcome.applied(), 2 * n as usize);
        assert_eq!(d.len("P"), n as usize);
        assert_eq!(d.len("C"), n as usize);
        // A violating large batch still attributes and rolls back.
        let mut bad = Vec::new();
        for i in 0..n {
            bad.push(Statement::insert("C", tup(&[5000 + i, i])));
        }
        bad.push(Statement::insert("C", tup(&[9999, -1]))); // dangling
        let err = d.apply_batch(&bad).unwrap_err();
        assert_eq!(err.statement_index(), Some(n as usize));
        assert_eq!(d.len("C"), n as usize);
    }

    #[test]
    fn statement_display_and_error_conversions() {
        let s = Statement::insert("P", tup(&[1]));
        assert!(s.to_string().starts_with("INSERT INTO P"));
        assert_eq!(Statement::delete("P", tup(&[1])).rel(), "P");
        let dml = DmlError::at_statement(3, DmlError::ConstraintViolation("boom".into()));
        assert_eq!(dml.statement_index(), Some(3));
        assert!(dml.to_string().contains("statement #3"));
        // DmlError ⇄ Error round trips through the unified path.
        let e: relmerge_relational::Error = dml.into();
        assert!(matches!(
            &e,
            relmerge_relational::Error::ConstraintViolation(_)
        ));
        let back: DmlError = e.into();
        assert!(matches!(back, DmlError::ConstraintViolation(_)));
    }
}
