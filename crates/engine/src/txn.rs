//! Multi-statement atomicity and updates.
//!
//! The trigger bodies the DDL generator emits end in `ROLLBACK
//! TRANSACTION` (SYBASE) — a violated constraint aborts the *whole*
//! statement batch, not just one row. [`Database::transaction`] provides
//! the same contract: a closure issues statements; if it returns an error
//! (or any statement fails and the error propagates), every change it made
//! is undone.

use relmerge_relational::{Error, Tuple};

use crate::batch::{rollback, rollback_after_failed_append, Statement, StatementOutcome, Undo};
use crate::database::{Database, DmlError};
use crate::fault::panic_message;

/// A transaction handle: issue statements through it; changes are recorded
/// for rollback. Each verb is a thin front for the unified
/// [`Statement`] executor shared with [`Database::apply_batch`].
pub struct Transaction<'a> {
    db: &'a mut Database,
    undo: Vec<Undo>,
    /// Statements that actually mutated something, in order — the
    /// transaction's write-ahead-log record if the closure commits.
    stmts: Vec<Statement>,
}

impl Transaction<'_> {
    fn run(&mut self, stmt: &Statement) -> Result<StatementOutcome, DmlError> {
        let outcome = self.db.execute_statement(stmt, Some(&mut self.undo))?;
        if !matches!(outcome, StatementOutcome::Noop) {
            self.stmts.push(stmt.clone());
        }
        Ok(outcome)
    }

    /// Inserts a tuple (same contract as [`Database::insert`]).
    pub fn insert(&mut self, rel: &str, t: Tuple) -> Result<bool, DmlError> {
        let stmt = Statement::Insert {
            rel: rel.to_owned(),
            tuple: t,
        };
        Ok(matches!(self.run(&stmt)?, StatementOutcome::Inserted))
    }

    /// Deletes by primary key (same contract as
    /// [`Database::delete_by_key`]).
    pub fn delete_by_key(&mut self, rel: &str, key: &Tuple) -> Result<bool, DmlError> {
        let stmt = Statement::Delete {
            rel: rel.to_owned(),
            key: key.clone(),
        };
        Ok(matches!(self.run(&stmt)?, StatementOutcome::Deleted))
    }

    /// Updates the row with primary key `key` to `new`, atomically. The
    /// new tuple may change the key; referential RESTRICT applies only to
    /// referenced projections that actually change.
    pub fn update_by_key(&mut self, rel: &str, key: &Tuple, new: Tuple) -> Result<bool, DmlError> {
        let stmt = Statement::Update {
            rel: rel.to_owned(),
            key: key.clone(),
            tuple: new,
        };
        Ok(matches!(self.run(&stmt)?, StatementOutcome::Updated))
    }
}

impl Database {
    /// Runs `f` atomically: if it returns `Err`, every statement it issued
    /// is rolled back and the error is returned.
    ///
    /// Panic safety: if `f` panics, every statement it issued is rolled
    /// back *first* and the panic then resumes — the caller sees the same
    /// panic it would have without the transaction, but the database is
    /// back in its pre-transaction state (rows and indexes both).
    pub fn transaction<T>(
        &mut self,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, DmlError>,
    ) -> Result<T, DmlError> {
        let mut tx = Transaction {
            db: self,
            undo: Vec::new(),
            stmts: Vec::new(),
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut tx)));
        match outcome {
            Ok(Ok(value)) => {
                // Write-ahead: the whole bundle becomes one log record
                // before the commit survives this call. A failed append —
                // IO error, injected error, or injected panic at
                // `engine.wal.append` — aborts the transaction through the
                // same rollback path a constraint violation takes.
                let stmts = std::mem::take(&mut tx.stmts);
                if !stmts.is_empty() {
                    let logged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        tx.db.wal_append_batch(&stmts)
                    }))
                    .unwrap_or_else(|payload| {
                        Err(Error::ExecutionPanic {
                            context: panic_message(payload),
                        })
                    });
                    if let Err(e) = logged {
                        let undo = std::mem::take(&mut tx.undo);
                        return Err(rollback_after_failed_append(tx.db, undo, e));
                    }
                }
                Ok(value)
            }
            Ok(Err(e)) => {
                let undo = std::mem::take(&mut tx.undo);
                rollback(tx.db, undo)?;
                Err(e)
            }
            Err(payload) => {
                let undo = std::mem::take(&mut tx.undo);
                // A failed rollback here would mean the undo log itself is
                // corrupt; surface that instead of the original panic.
                rollback(tx.db, undo).expect("transaction rollback after panic");
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Fetches the row with primary key `key`, if present.
    pub fn get_by_key(&self, rel: &str, key: &Tuple) -> Result<Option<Tuple>, DmlError> {
        let scheme = self
            .schema()
            .scheme(rel)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?;
        let pk: Vec<String> = scheme
            .primary_key()
            .iter()
            .map(|k| (*k).to_owned())
            .collect();
        Ok(self.unique_lookup(rel, &pk, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::DbmsProfile;
    use relmerge_relational::{
        Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Value,
    };

    fn a(n: &str) -> Attribute {
        Attribute::new(n, Domain::Int)
    }

    fn schema() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("P", vec![a("P.K")], &["P.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("C", vec![a("C.K"), a("C.FK")], &["C.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("P", &["P.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("C", &["C.K", "C.FK"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("C", &["C.FK"], "P", &["P.K"]))
            .unwrap();
        rs
    }

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
    }

    #[test]
    fn commit_keeps_changes() {
        let mut db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
        db.transaction(|tx| {
            tx.insert("P", tup(&[1]))?;
            tx.insert("C", tup(&[10, 1]))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(db.len("P"), 1);
        assert_eq!(db.len("C"), 1);
    }

    #[test]
    fn failure_rolls_everything_back() {
        let mut db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        let result: Result<(), DmlError> = db.transaction(|tx| {
            tx.insert("P", tup(&[2]))?;
            tx.insert("C", tup(&[10, 2]))?;
            // Dangling reference: fails, aborting the bundle.
            tx.insert("C", tup(&[11, 99]))?;
            Ok(())
        });
        assert!(result.is_err());
        assert_eq!(db.len("P"), 1, "P(2) rolled back");
        assert_eq!(db.len("C"), 0, "C(10) rolled back");
        // The database is still fully functional and consistent.
        let snap = db.snapshot().unwrap();
        assert!(snap.is_consistent(db.schema()).unwrap());
        db.insert("C", tup(&[10, 1])).unwrap();
    }

    #[test]
    fn rollback_restores_deleted_rows() {
        let mut db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        db.insert("P", tup(&[2])).unwrap();
        let result: Result<(), DmlError> = db.transaction(|tx| {
            tx.delete_by_key("P", &tup(&[1]))?;
            Err(DmlError::ConstraintViolation("forced abort".to_owned()))
        });
        assert!(result.is_err());
        assert_eq!(db.len("P"), 2);
        assert!(db.get_by_key("P", &tup(&[1])).unwrap().is_some());
    }

    #[test]
    fn update_changes_non_key_attrs() {
        let mut db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        db.insert("P", tup(&[2])).unwrap();
        db.insert("C", tup(&[10, 1])).unwrap();
        db.transaction(|tx| tx.update_by_key("C", &tup(&[10]), tup(&[10, 2])))
            .unwrap();
        assert_eq!(
            db.get_by_key("C", &tup(&[10])).unwrap(),
            Some(tup(&[10, 2]))
        );
    }

    #[test]
    fn update_to_dangling_fk_rolls_back() {
        let mut db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        db.insert("C", tup(&[10, 1])).unwrap();
        let result = db.transaction(|tx| tx.update_by_key("C", &tup(&[10]), tup(&[10, 99])));
        assert!(result.is_err());
        // Old row restored.
        assert_eq!(
            db.get_by_key("C", &tup(&[10])).unwrap(),
            Some(tup(&[10, 1]))
        );
        let snap = db.snapshot().unwrap();
        assert!(snap.is_consistent(db.schema()).unwrap());
    }

    #[test]
    fn update_of_referenced_key_restricted() {
        let mut db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        db.insert("C", tup(&[10, 1])).unwrap();
        // Changing P's key while C references it: RESTRICT via the delete.
        let result = db.transaction(|tx| tx.update_by_key("P", &tup(&[1]), tup(&[5])));
        assert!(result.is_err());
        assert!(db.get_by_key("P", &tup(&[1])).unwrap().is_some());
    }

    #[test]
    fn update_missing_row_is_noop() {
        let mut db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
        let updated = db
            .transaction(|tx| tx.update_by_key("P", &tup(&[9]), tup(&[9])))
            .unwrap();
        assert!(!updated);
    }
}
