//! A logical-query planner with automatic join derivation.
//!
//! A [`LogicalQuery`] names the attributes it wants and an optional
//! equality filter — *without* naming relations or joins. The planner maps
//! each attribute to its relation-scheme and connects the needed schemes
//! through the schema's inclusion dependencies, emitting one join per
//! edge. Planned against an unmerged schema, a "course detail" query costs
//! three joins; planned against the merged schema, the same query is a
//! single-relation plan — the paper's §1 join-reduction claim, made
//! mechanical.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use relmerge_relational::{Error, RelationalSchema, Result, Tuple, Value};

use crate::database::Database;
use crate::query::{Access, JoinStep, QueryPlan};

/// A schema-independent query: attributes wanted, optional key filter,
/// optional residual predicate.
#[derive(Debug, Clone)]
pub struct LogicalQuery {
    /// Output attribute names (each must belong to exactly one scheme).
    pub wanted: Vec<String>,
    /// Optional equality filter: attribute names and the key value.
    pub filter: Option<(Vec<String>, Tuple)>,
    /// Optional residual predicate, evaluated on the joined rows (its
    /// attributes must be reachable from the query's schemes).
    pub predicate: Option<crate::query::Predicate>,
}

impl LogicalQuery {
    /// A query returning `wanted` for every row.
    pub fn select(wanted: &[&str]) -> Self {
        LogicalQuery {
            wanted: wanted.iter().map(|s| (*s).to_owned()).collect(),
            filter: None,
            predicate: None,
        }
    }

    /// Adds an equality filter.
    #[must_use]
    pub fn filtered(mut self, attrs: &[&str], key: Tuple) -> Self {
        self.filter = Some((attrs.iter().map(|s| (*s).to_owned()).collect(), key));
        self
    }

    /// Adds a residual predicate. Attributes the predicate mentions are
    /// treated as wanted for planning purposes (their schemes join in).
    #[must_use]
    pub fn with_predicate(mut self, predicate: crate::query::Predicate) -> Self {
        self.predicate = Some(predicate);
        self
    }
}

/// The attribute names a predicate mentions.
fn predicate_attrs(p: &crate::query::Predicate, out: &mut Vec<String>) {
    use crate::query::Predicate as P;
    match p {
        P::Eq(a, _) | P::IsNull(a) | P::NotNull(a) => out.push(a.clone()),
        P::And(x, y) | P::Or(x, y) => {
            predicate_attrs(x, out);
            predicate_attrs(y, out);
        }
        P::Not(x) => predicate_attrs(x, out),
    }
}

/// Plans `query` against `schema`, deriving the joins from inclusion
/// dependencies. Fails when an attribute resolves to no scheme or the
/// needed schemes are not connected by inclusion dependencies.
pub fn plan(schema: &RelationalSchema, query: &LogicalQuery) -> Result<QueryPlan> {
    let mut span = relmerge_obs::span("engine.plan");
    planner_counters().plans.inc();
    // Resolve every mentioned attribute to its scheme.
    let mut needed: BTreeSet<String> = BTreeSet::new();
    let resolve = |attr: &str| -> Result<String> {
        let scheme = schema
            .scheme_of_attr(attr)
            .ok_or_else(|| Error::UnknownAttribute {
                attribute: attr.to_owned(),
                context: "logical query".to_owned(),
            })?;
        Ok(scheme.name().to_owned())
    };
    for a in &query.wanted {
        needed.insert(resolve(a)?);
    }
    if let Some(p) = &query.predicate {
        let mut mentioned = Vec::new();
        predicate_attrs(p, &mut mentioned);
        for a in &mentioned {
            needed.insert(resolve(a)?);
        }
    }
    let filter_schemes: BTreeSet<String> = match &query.filter {
        Some((attrs, _)) => attrs.iter().map(|a| resolve(a)).collect::<Result<_>>()?,
        None => BTreeSet::new(),
    };
    if let Some(multi) = (filter_schemes.len() > 1).then(|| filter_schemes.clone()) {
        return Err(Error::MalformedConstraint {
            detail: format!("filter attributes span several schemes: {multi:?}"),
        });
    }
    needed.extend(filter_schemes.iter().cloned());
    if needed.is_empty() {
        return Err(Error::MalformedConstraint {
            detail: "query mentions no attributes".to_owned(),
        });
    }

    // The root: the filter's scheme if any, else the scheme of the first
    // wanted attribute.
    let root = filter_schemes
        .iter()
        .next()
        .cloned()
        .unwrap_or_else(|| resolve(&query.wanted[0]).expect("validated above"));
    span.add_field("root", &root);

    // Join graph: for each IND, an edge both ways carrying the join
    // attribute pairs oriented as (attrs-on-from-side, attrs-on-to-side)
    // plus the justifying dependency's notation.
    type Edge = (String, Vec<String>, Vec<String>, String);
    let mut edges: BTreeMap<String, Vec<Edge>> = BTreeMap::new();
    for ind in schema.inds() {
        let notation = ind.to_string();
        edges.entry(ind.lhs_rel.clone()).or_default().push((
            ind.rhs_rel.clone(),
            ind.lhs_attrs.clone(),
            ind.rhs_attrs.clone(),
            notation.clone(),
        ));
        edges.entry(ind.rhs_rel.clone()).or_default().push((
            ind.lhs_rel.clone(),
            ind.rhs_attrs.clone(),
            ind.lhs_attrs.clone(),
            notation,
        ));
    }

    // BFS from the root; record the joining edge for each scheme reached.
    let mut parent: BTreeMap<String, Edge> = BTreeMap::new();
    let mut visited: BTreeSet<String> = BTreeSet::new();
    visited.insert(root.clone());
    let mut queue: VecDeque<String> = VecDeque::new();
    queue.push_back(root.clone());
    while let Some(current) = queue.pop_front() {
        if let Some(nexts) = edges.get(&current) {
            for (to, from_attrs, to_attrs, via) in nexts {
                if visited.insert(to.clone()) {
                    parent.insert(
                        to.clone(),
                        (
                            current.clone(),
                            from_attrs.clone(),
                            to_attrs.clone(),
                            via.clone(),
                        ),
                    );
                    queue.push_back(to.clone());
                }
            }
        }
    }
    if let Some(unreached) = needed.iter().find(|n| !visited.contains(*n)) {
        return Err(Error::MalformedConstraint {
            detail: format!(
                "scheme `{unreached}` is not connected to `{root}` by inclusion dependencies"
            ),
        });
    }

    // The join set: every scheme on a path from the root to a needed
    // scheme (intermediates included), in BFS-discovery order.
    let mut on_path: BTreeSet<String> = BTreeSet::new();
    for n in &needed {
        let mut cur = n.clone();
        while cur != root {
            on_path.insert(cur.clone());
            cur = parent[&cur].0.clone();
        }
    }
    // Order joins so parents come before children.
    let mut ordered: Vec<String> = Vec::new();
    let mut remaining: BTreeSet<String> = on_path.clone();
    while !remaining.is_empty() {
        let ready: Vec<String> = remaining
            .iter()
            .filter(|s| {
                let p = &parent[*s].0;
                p == &root || ordered.contains(p)
            })
            .cloned()
            .collect();
        debug_assert!(!ready.is_empty(), "BFS tree orders its own nodes");
        for r in ready {
            remaining.remove(&r);
            ordered.push(r);
        }
    }

    // Assemble the physical plan.
    let access = match &query.filter {
        Some((attrs, key)) => Access::Lookup {
            attrs: attrs.clone(),
            key: key.clone(),
        },
        None => Access::FullScan,
    };
    let mut plan = QueryPlan {
        root: root.clone(),
        access,
        joins: Vec::new(),
        filter: query.predicate.clone(),
        project: query.wanted.clone(),
    };
    for scheme in ordered {
        let (_, from_attrs, to_attrs, via) = &parent[&scheme];
        let left: Vec<&str> = from_attrs.iter().map(String::as_str).collect();
        let right: Vec<&str> = to_attrs.iter().map(String::as_str).collect();
        // Outer joins throughout: referencing tuples may be absent, and
        // foreign keys may be null — outer semantics match what the merged
        // relation encodes.
        plan = plan.join(JoinStep::outer(scheme, &left, &right).via(via.clone()));
    }
    span.add_field("joins", plan.joins.len());
    planner_counters()
        .joins_derived
        .add(plan.joins.len() as u64);
    Ok(plan)
}

/// Physical strategy for one join step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Probe the right relation once per left row through its indexes,
    /// falling back to a full scan per row when none covers the join
    /// attributes. Cheap for small left inputs over a covering index.
    IndexNestedLoop,
    /// Build (or borrow) a hash table over the right relation once and
    /// probe it per left row. Amortizes the build over a large left input
    /// and rescues the no-covering-index case from per-row scans.
    Hash,
}

/// Cost-based strategy choice for one join step against `rel` over
/// `right_attrs`, with `left_estimate` rows on the probe side. For the
/// first step the executor passes the root cardinality, known exactly
/// after root access; each later step receives the previous step's
/// estimated output cardinality (left estimate × the access path's
/// average index fan-out), so a selective chain that fans out switches to
/// hash joins per-step. Estimates derive only from pre-fan-out state and
/// are independent of parallelism.
///
/// The rules, in order:
/// 1. [`Database::hash_join_threshold`] of `usize::MAX` disables hash
///    joins entirely — the pre-morsel executor's behavior, useful as a
///    measurement baseline.
/// 2. An empty left input never builds: index-nested-loop probes nothing.
/// 3. No covering index ⇒ hash (the alternative is a full right-relation
///    scan *per left row*).
/// 4. Left cardinality at or above the threshold ⇒ hash.
/// 5. Otherwise index-nested-loop.
pub fn choose_join_strategy(
    db: &Database,
    rel: &str,
    right_attrs: &[String],
    left_estimate: usize,
) -> Result<JoinStrategy> {
    let covered = db.index_covers(rel, right_attrs)?;
    let threshold = db.hash_join_threshold();
    let strategy = if threshold == usize::MAX || left_estimate == 0 {
        JoinStrategy::IndexNestedLoop
    } else if !covered || left_estimate >= threshold {
        JoinStrategy::Hash
    } else {
        JoinStrategy::IndexNestedLoop
    };
    match strategy {
        JoinStrategy::IndexNestedLoop => planner_counters().strategy_inl.inc(),
        JoinStrategy::Hash => planner_counters().strategy_hash.inc(),
    }
    Ok(strategy)
}

/// Worker count for one transient hash build over `build_rows` live rows.
///
/// Mirrors the join-strategy sentinel: a
/// [`Database::build_parallel_threshold`] of `usize::MAX` pins builds to
/// the serial path (the measurement baseline), as does a single-worker
/// executor or a build side smaller than the threshold — chunking tiny
/// builds costs more in thread scaffolding than it saves. Past the
/// threshold the build fans out over at most
/// [`Database::parallelism`] workers, one chunk of at least
/// `threshold` rows each, so worker count grows with the build side
/// instead of jumping straight to the full pool. The decision depends
/// only on knobs and the live-row count, never on timing, so the
/// partition layout — and therefore every downstream counter — is
/// deterministic.
pub fn choose_build_parallelism(db: &Database, build_rows: usize) -> usize {
    let threshold = db.build_parallel_threshold();
    let workers = if threshold == usize::MAX || db.parallelism() <= 1 || build_rows < threshold {
        1
    } else {
        match build_rows.checked_div(threshold) {
            // Threshold 0 means "always parallel" — the chunk-size
            // heuristic has no meaningful answer, so fan out over the
            // full pool.
            None => db.parallelism(),
            Some(chunks) => db.parallelism().min(chunks.max(1)),
        }
    };
    if workers > 1 {
        planner_counters().build_parallel.inc();
    } else {
        planner_counters().build_serial.inc();
    }
    workers
}

/// Decides whether a pushed root conjunct can upgrade a full-scan root
/// access to an index point-lookup. Eligible when the conjunct is a
/// positive `Eq` on a single attribute of `rel` comparing against a
/// non-null literal, some index (unique or lookup) covers that attribute,
/// and the relation is non-empty — the emptiness guard keeps the
/// scan+probe total monotone: the lookup replaces a scan of `live` rows
/// with one probe, a strict win only when there was something to scan.
///
/// Returns the `(attribute, key value)` pair the executor feeds to its
/// point-lookup path, or `None` when the conjunct must stay a filter.
pub(crate) fn choose_root_lookup(
    db: &Database,
    rel: &str,
    conjunct: &crate::query::Predicate,
) -> Option<(String, Value)> {
    let crate::query::Predicate::Eq(attr, value) = conjunct else {
        return None;
    };
    if value.is_null() {
        return None;
    }
    let covered = db.index_covers(rel, std::slice::from_ref(attr)).ok()?;
    let live = db.tables.get(rel).map(|t| t.live)?;
    if !covered || live == 0 {
        return None;
    }
    Some((attr.clone(), value.clone()))
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes`, continuing from `hash`. Hand-rolled because
/// `std`'s `DefaultHasher` is not stable across Rust releases and the
/// fingerprint must be comparable across recorded profiles.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a length-prefixed string, so concatenations stay unambiguous
/// (`"ab" + "c"` never collides with `"a" + "bc"`).
fn hash_str(hash: u64, s: &str) -> u64 {
    fnv1a(fnv1a(hash, &(s.len() as u64).to_le_bytes()), s.as_bytes())
}

/// Collects the subtree hashes of a same-connective chain (`And` under
/// `And`, `Or` under `Or`), so the connective hashes as one flat N-ary
/// node regardless of how the user parenthesized it.
fn flatten_connective(p: &crate::query::Predicate, is_and: bool, out: &mut Vec<u64>) {
    use crate::query::Predicate as P;
    match (p, is_and) {
        (P::And(x, y), true) | (P::Or(x, y), false) => {
            flatten_connective(x, is_and, out);
            flatten_connective(y, is_and, out);
        }
        _ => out.push(predicate_shape_hash(p)),
    }
}

/// The structural hash of a predicate: operators and attribute names,
/// never literal values. `And`/`Or` chains hash their flattened child
/// hashes in sorted order, so commuting or re-parenthesizing a
/// conjunction does not change the fingerprint.
fn predicate_shape_hash(p: &crate::query::Predicate) -> u64 {
    use crate::query::Predicate as P;
    match p {
        P::Eq(a, _) => hash_str(hash_str(FNV_OFFSET, "eq"), a),
        P::IsNull(a) => hash_str(hash_str(FNV_OFFSET, "isnull"), a),
        P::NotNull(a) => hash_str(hash_str(FNV_OFFSET, "notnull"), a),
        P::And(..) | P::Or(..) => {
            let is_and = matches!(p, P::And(..));
            let mut children = Vec::new();
            flatten_connective(p, is_and, &mut children);
            children.sort_unstable();
            let mut h = hash_str(FNV_OFFSET, if is_and { "and" } else { "or" });
            for c in children {
                h = fnv1a(h, &c.to_le_bytes());
            }
            h
        }
        P::Not(x) => fnv1a(
            hash_str(FNV_OFFSET, "not"),
            &predicate_shape_hash(x).to_le_bytes(),
        ),
    }
}

/// The canonical fingerprint of a query *shape*: a stable FNV-1a 64 hash
/// of the root, the access kind and its lookup attributes (not the key
/// values), every join edge with the strategy the planner chose for it,
/// the predicate's structure (attributes and operators, not literals —
/// `And`/`Or` operands combine commutatively), and the projection.
///
/// Executions that differ only in constants therefore share a
/// fingerprint — the granularity the workload profiler
/// (`relmerge_obs::Profiler`) aggregates at — while any change to the
/// plan's structure or chosen strategies yields a new one. The hash is
/// hand-rolled and versioned, so recorded profiles stay comparable across
/// Rust releases; `relmerge.query.v2` canonicalizes the filter through
/// the predicate optimizer ([`crate::predopt::canonical_shape`]) first,
/// so *equivalent* predicate forms — double negations, De Morgan
/// variants, redundant conjuncts — also share a fingerprint, not just
/// permutations of one form.
#[must_use]
pub fn fingerprint(plan: &QueryPlan, strategies: &[JoinStrategy]) -> u64 {
    let mut h = hash_str(FNV_OFFSET, "relmerge.query.v2");
    h = hash_str(h, &plan.root);
    match &plan.access {
        Access::FullScan => h = hash_str(h, "scan"),
        Access::Lookup { attrs, .. } => {
            h = hash_str(h, "lookup");
            for a in attrs {
                h = hash_str(h, a);
            }
        }
    }
    for (i, step) in plan.joins.iter().enumerate() {
        h = hash_str(h, if step.outer { "outer" } else { "inner" });
        h = hash_str(h, &step.rel);
        for a in &step.left_attrs {
            h = hash_str(h, a);
        }
        for a in &step.right_attrs {
            h = hash_str(h, a);
        }
        h = hash_str(
            h,
            match strategies.get(i) {
                Some(JoinStrategy::Hash) => "hash",
                Some(JoinStrategy::IndexNestedLoop) => "inl",
                None => "unplanned",
            },
        );
    }
    if let Some(p) = &plan.filter {
        h = hash_str(h, "filter");
        h = match crate::predopt::canonical_shape(p) {
            crate::predopt::Optimized::Always(true) => hash_str(h, "always_true"),
            crate::predopt::Optimized::Always(false) => hash_str(h, "always_false"),
            crate::predopt::Optimized::Pred(q) => fnv1a(h, &predicate_shape_hash(&q).to_le_bytes()),
        };
    }
    for a in &plan.project {
        h = hash_str(h, a);
    }
    h
}

/// Process-global planner counters, resolved once.
struct PlannerCounters {
    plans: std::sync::Arc<relmerge_obs::Counter>,
    joins_derived: std::sync::Arc<relmerge_obs::Counter>,
    strategy_inl: std::sync::Arc<relmerge_obs::Counter>,
    strategy_hash: std::sync::Arc<relmerge_obs::Counter>,
    build_parallel: std::sync::Arc<relmerge_obs::Counter>,
    build_serial: std::sync::Arc<relmerge_obs::Counter>,
}

fn planner_counters() -> &'static PlannerCounters {
    static COUNTERS: std::sync::OnceLock<PlannerCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = relmerge_obs::global();
        PlannerCounters {
            plans: reg.counter("engine.plan.count"),
            joins_derived: reg.counter("engine.plan.joins_derived"),
            strategy_inl: reg.counter("engine.plan.strategy.inl"),
            strategy_hash: reg.counter("engine.plan.strategy.hash"),
            build_parallel: reg.counter("engine.plan.build.parallel"),
            build_serial: reg.counter("engine.plan.build.serial"),
        }
    })
}

impl crate::database::Database {
    /// Plans and executes a [`LogicalQuery`] against this database's
    /// schema in one call.
    pub fn query(
        &self,
        q: &LogicalQuery,
    ) -> Result<(relmerge_relational::Relation, crate::query::QueryStats)> {
        let physical = plan(self.schema(), q)?;
        self.execute(&physical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::DbmsProfile;
    use crate::database::Database;
    use relmerge_relational::{
        Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, Value,
    };

    fn a(n: &str) -> Attribute {
        Attribute::new(n, Domain::Int)
    }

    /// COURSE ← OFFER ← TEACH chain.
    fn chain() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("COURSE", vec![a("C.NR")], &["C.NR"]).unwrap())
            .unwrap();
        rs.add_scheme(
            RelationScheme::new("OFFER", vec![a("O.C.NR"), a("O.D")], &["O.C.NR"]).unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new("TEACH", vec![a("T.C.NR"), a("T.F")], &["T.C.NR"]).unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("COURSE", &["C.NR"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.C.NR", "O.D"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("TEACH", &["T.C.NR", "T.F"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new(
            "TEACH",
            &["T.C.NR"],
            "OFFER",
            &["O.C.NR"],
        ))
        .unwrap();
        rs
    }

    #[test]
    fn plans_joins_across_the_chain() {
        let rs = chain();
        let q =
            LogicalQuery::select(&["C.NR", "T.F"]).filtered(&["C.NR"], Tuple::new([Value::Int(1)]));
        let p = plan(&rs, &q).unwrap();
        assert_eq!(p.root, "COURSE");
        // OFFER is an intermediate: two joins even though only TEACH's
        // attribute is wanted.
        assert_eq!(p.joins.len(), 2);
        assert_eq!(p.joins[0].rel, "OFFER");
        assert_eq!(p.joins[1].rel, "TEACH");
        // Each derived join records the inclusion dependency justifying it.
        for step in &p.joins {
            let via = step.via_ind.as_deref().expect("planner records provenance");
            assert!(via.contains(&step.rel), "{via} should mention {}", step.rel);
        }
    }

    #[test]
    fn single_scheme_needs_no_joins() {
        let rs = chain();
        let q = LogicalQuery::select(&["O.C.NR", "O.D"]);
        let p = plan(&rs, &q).unwrap();
        assert_eq!(p.root, "OFFER");
        assert!(p.joins.is_empty());
        assert!(matches!(p.access, Access::FullScan));
    }

    #[test]
    fn errors_on_unknown_or_disconnected() {
        let mut rs = chain();
        assert!(plan(&rs, &LogicalQuery::select(&["NOPE"])).is_err());
        // An island scheme is unreachable.
        rs.add_scheme(RelationScheme::new("ISLAND", vec![a("I.K")], &["I.K"]).unwrap())
            .unwrap();
        let q = LogicalQuery::select(&["C.NR", "I.K"]);
        assert!(plan(&rs, &q).is_err());
    }

    #[test]
    fn planned_results_agree_between_merged_and_unmerged() {
        use relmerge_core::Merge;
        let rs = chain();
        let mut db = Database::new(rs.clone(), DbmsProfile::ideal()).unwrap();
        for nr in 0..20i64 {
            db.insert("COURSE", Tuple::new([Value::Int(nr)])).unwrap();
            if nr % 2 == 0 {
                db.insert("OFFER", Tuple::new([Value::Int(nr), Value::Int(nr + 100)]))
                    .unwrap();
            }
            if nr % 4 == 0 {
                db.insert("TEACH", Tuple::new([Value::Int(nr), Value::Int(nr + 200)]))
                    .unwrap();
            }
        }
        let mut m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH"], "COURSE_M").unwrap();
        m.remove_all_removable().unwrap();
        let merged_state = m.apply(&db.snapshot().unwrap()).unwrap();
        let mut mdb = Database::new(m.schema().clone(), DbmsProfile::ideal()).unwrap();
        mdb.load_state(&merged_state).unwrap();

        // Same logical query planned against both schemas. After Remove,
        // the merged schema's surviving attributes are C.NR, O.D, T.F.
        let q = LogicalQuery::select(&["C.NR", "O.D", "T.F"]);
        let unmerged_plan = plan(&rs, &q).unwrap();
        let merged_plan = plan(m.schema(), &q).unwrap();
        assert_eq!(unmerged_plan.joins.len(), 2);
        assert_eq!(merged_plan.joins.len(), 0, "join elimination");
        let (r1, s1) = db.execute(&unmerged_plan).unwrap();
        let (r2, s2) = mdb.execute(&merged_plan).unwrap();
        assert!(r1.set_eq_unordered(&r2), "{r1} vs {r2}");
        assert!(s2.rows_scanned < s1.rows_scanned + s1.index_probes);
    }

    #[test]
    fn database_query_convenience() {
        let rs = chain();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        db.insert("COURSE", Tuple::new([Value::Int(1)])).unwrap();
        db.insert("OFFER", Tuple::new([Value::Int(1), Value::Int(42)]))
            .unwrap();
        let q =
            LogicalQuery::select(&["C.NR", "O.D"]).filtered(&["C.NR"], Tuple::new([Value::Int(1)]));
        let (result, stats) = db.query(&q).unwrap();
        assert_eq!(result.len(), 1);
        assert!(result.contains(&Tuple::new([Value::Int(1), Value::Int(42)])));
        assert!(stats.index_probes >= 1);
    }

    #[test]
    fn logical_query_with_predicate_joins_needed_schemes() {
        use crate::query::Predicate;
        let rs = chain();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        for nr in 0..10i64 {
            db.insert("COURSE", Tuple::new([Value::Int(nr)])).unwrap();
            db.insert("OFFER", Tuple::new([Value::Int(nr), Value::Int(nr % 3)]))
                .unwrap();
        }
        // Predicate mentions O.D even though only C.NR is wanted: OFFER
        // must be joined in.
        let q = LogicalQuery::select(&["C.NR"]).with_predicate(Predicate::eq("O.D", 1i64));
        let (result, _) = db.query(&q).unwrap();
        assert_eq!(result.len(), 3); // nr in {1, 4, 7}
        assert_eq!(result.attr_names(), ["C.NR"]);
    }

    #[test]
    fn join_strategy_cost_model() {
        use crate::database::DEFAULT_HASH_JOIN_THRESHOLD;
        let rs = chain();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        let keyed = vec!["O.C.NR".to_owned()];
        let unindexed = vec!["O.D".to_owned()];
        // Small left input with a covering index: index-nested-loop.
        assert_eq!(
            choose_join_strategy(&db, "OFFER", &keyed, 10).unwrap(),
            JoinStrategy::IndexNestedLoop
        );
        // Crossing the threshold flips to hash.
        assert_eq!(
            choose_join_strategy(&db, "OFFER", &keyed, DEFAULT_HASH_JOIN_THRESHOLD).unwrap(),
            JoinStrategy::Hash
        );
        // No covering index: hash even for a small left input.
        assert_eq!(
            choose_join_strategy(&db, "OFFER", &unindexed, 2).unwrap(),
            JoinStrategy::Hash
        );
        // An empty left input never builds.
        assert_eq!(
            choose_join_strategy(&db, "OFFER", &unindexed, 0).unwrap(),
            JoinStrategy::IndexNestedLoop
        );
        // usize::MAX disables hash joins outright (measurement baseline).
        db.configure(db.config().hash_join_threshold(usize::MAX));
        assert_eq!(
            choose_join_strategy(&db, "OFFER", &unindexed, 1_000_000).unwrap(),
            JoinStrategy::IndexNestedLoop
        );
        // Unknown relations and attributes error.
        assert!(choose_join_strategy(&db, "NOPE", &unindexed, 1).is_err());
        assert!(choose_join_strategy(&db, "OFFER", &["NOPE".to_owned()], 1).is_err());
    }

    #[test]
    fn build_parallelism_cost_model() {
        let rs = chain();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        db.configure(db.config().parallelism(4));
        db.configure(db.config().build_parallel_threshold(1_000));
        // Below the threshold: serial.
        assert_eq!(choose_build_parallelism(&db, 999), 1);
        // One threshold's worth of rows per worker, capped by parallelism.
        assert_eq!(choose_build_parallelism(&db, 1_000), 1);
        assert_eq!(choose_build_parallelism(&db, 2_500), 2);
        assert_eq!(choose_build_parallelism(&db, 1_000_000), 4);
        // Single-worker executor never fans out a build.
        db.configure(db.config().parallelism(1));
        assert_eq!(choose_build_parallelism(&db, 1_000_000), 1);
        // The usize::MAX sentinel is the serial measurement baseline.
        db.configure(db.config().parallelism(8));
        db.configure(db.config().build_parallel_threshold(usize::MAX));
        assert_eq!(choose_build_parallelism(&db, 1_000_000), 1);
        // Threshold 0 means "always parallel": the full pool, even for a
        // tiny build (and no division by zero).
        db.configure(db.config().build_parallel_threshold(0));
        assert_eq!(choose_build_parallelism(&db, 3), 8);
        db.configure(db.config().parallelism(1));
        assert_eq!(choose_build_parallelism(&db, 3), 1);
    }

    #[test]
    fn fingerprint_ignores_literals_and_predicate_order() {
        use crate::query::Predicate;
        let base = QueryPlan::lookup("COURSE", &["C.NR"], Tuple::new([Value::Int(1)]))
            .join(JoinStep::outer("OFFER", &["C.NR"], &["O.C.NR"]));
        let strategies = [JoinStrategy::IndexNestedLoop];
        // Different key constants: same shape, same fingerprint.
        let other_key = QueryPlan::lookup("COURSE", &["C.NR"], Tuple::new([Value::Int(999)]))
            .join(JoinStep::outer("OFFER", &["C.NR"], &["O.C.NR"]));
        assert_eq!(
            fingerprint(&base, &strategies),
            fingerprint(&other_key, &strategies)
        );
        // A different strategy or join shape changes it.
        assert_ne!(
            fingerprint(&base, &strategies),
            fingerprint(&base, &[JoinStrategy::Hash])
        );
        assert_ne!(
            fingerprint(&base, &strategies),
            fingerprint(&QueryPlan::scan("COURSE"), &[])
        );
        // Predicate literals don't matter; permuting and re-parenthesizing
        // And/Or operands doesn't either; structure does.
        let p = |pred: Predicate| QueryPlan::scan("OFFER").filter(pred);
        let abc = Predicate::eq("O.D", 1i64)
            .and(Predicate::not_null("O.C.NR"))
            .and(Predicate::eq("O.C.NR", 2i64));
        let cba = Predicate::eq("O.C.NR", 7i64)
            .and(Predicate::eq("O.D", 5i64).and(Predicate::not_null("O.C.NR")));
        assert_eq!(fingerprint(&p(abc.clone()), &[]), fingerprint(&p(cba), &[]));
        let or_form = Predicate::eq("O.D", 1i64)
            .or(Predicate::not_null("O.C.NR"))
            .or(Predicate::eq("O.C.NR", 2i64));
        assert_ne!(fingerprint(&p(abc), &[]), fingerprint(&p(or_form), &[]));
    }

    #[test]
    fn filter_spanning_schemes_rejected() {
        let rs = chain();
        let q = LogicalQuery::select(&["C.NR"])
            .filtered(&["C.NR", "O.D"], Tuple::new([Value::Int(1), Value::Int(2)]));
        assert!(plan(&rs, &q).is_err());
    }
}
