//! Online schema migration: executing a planned `Merge(R̄)`/`Remove(Yi)`
//! against a **live** [`Database`].
//!
//! The paper applies merging at schema-design time; this module closes
//! the loop at run time. [`Database::migrate`] takes a
//! [`Merged`] plan (the merged schema plus the η/η′ state mappings of
//! Definition 4.1) and executes it in place:
//!
//! 1. **Guard** — the plan must start from the live schema, and the
//!    forward information-capacity check (Proposition 4.1's state half,
//!    [`check_forward`]) must hold on the current snapshot; a migration
//!    that would lose tuples or values is refused before anything
//!    mutates.
//! 2. **Catalog rewrite** (fault site `engine.migrate.rewrite`) — the
//!    build cache is dropped, and the physical catalog (tables, indexes,
//!    compiled null/IND constraints, including the merge's generated
//!    null-existence constraints) is recompiled from the merged schema
//!    and swapped in; relation versions carry over so every name stays
//!    strictly monotonic.
//! 3. **Data apply** (fault site `engine.migrate.apply`, once per chunk)
//!    — the η-mapped state is lowered to [`Statement`] inserts and
//!    replayed through [`Database::apply_batch`], parents before
//!    children, so the deferred-checking machinery group-validates every
//!    constraint of the new schema over the migrated data.
//! 4. **Rollback** — any error or panic (injected or genuine) swaps the
//!    saved catalog back and the database is byte-identical to its
//!    pre-migration snapshot; the failure surfaces as a typed error.
//!
//! On success the pre-migration workload profile is *taken* out of the
//! shared profiler and archived in the [`MigrationReport`], so no stale
//! pre-merge relation names linger in future profile snapshots.
//!
//! [`Database::advise_and_migrate`] composes this with the workload-aware
//! advisor: profile evidence in, ranked proposals, hot merges executed
//! online.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use relmerge_core::{check_forward, Advisor, CapacityReport, Merge, MergeProposal, Merged};
use relmerge_obs as obs;
use relmerge_relational::{Error, RelationalSchema, Result};

use crate::batch::Statement;
use crate::database::{compile_catalog, Catalog, Database};
use crate::fault::{panic_message, site};

/// Rows per `apply_batch` chunk on the data-apply path. Chunking bounds
/// the undo log per batch and gives the `engine.migrate.apply` fault site
/// one arrival per chunk; relations that may reference rows of their own
/// relation (self-INDs) or sit on an IND cycle are applied as a single
/// batch instead, since deferred validation only sees one batch at a
/// time.
const MIGRATE_CHUNK_ROWS: usize = 1024;

/// What an online migration did, returned by [`Database::migrate`].
#[derive(Debug)]
pub struct MigrationReport {
    /// The merged relation-scheme's name.
    pub merged_name: String,
    /// The merge set `R̄`, key-relation first.
    pub members: Vec<String>,
    /// Relations present before the migration and absent after it (the
    /// merge's members and every `Remove(Yi)` casualty).
    pub dropped: Vec<String>,
    /// Tuples written through the statement path, across all relations.
    pub rows_migrated: usize,
    /// `apply_batch` chunks the data apply was split into.
    pub chunks_applied: usize,
    /// The forward information-capacity report ([`check_forward`]) that
    /// gated the migration — `holds()` is true by construction.
    pub capacity: CapacityReport,
    /// The pre-migration workload profile, taken out of the live
    /// profiler at commit so stale pre-merge relation names cannot leak
    /// into post-migration snapshots.
    pub pre_profile: obs::ProfileSnapshot,
}

/// One advisor-chosen migration executed by
/// [`Database::advise_and_migrate`]: the proposal (with its observed
/// workload cost) and the migration's report.
#[derive(Debug)]
pub struct AdvisedMigration {
    /// The workload-scored proposal that was applied.
    pub proposal: MergeProposal,
    /// The executed migration.
    pub report: MigrationReport,
}

/// Relations of `schema` ordered parents-first (every IND target before
/// its sources), as batch groups: acyclic relations get their own group;
/// an IND cycle's relations are returned as one combined group so they
/// can be applied (and group-validated) in a single batch.
fn apply_groups(schema: &RelationalSchema) -> Vec<Vec<String>> {
    let names: Vec<String> = schema
        .schemes()
        .iter()
        .map(|s| s.name().to_owned())
        .collect();
    let mut placed: BTreeSet<String> = BTreeSet::new();
    let mut groups: Vec<Vec<String>> = Vec::new();
    loop {
        let mut progressed = false;
        for n in &names {
            if placed.contains(n) {
                continue;
            }
            let ready = schema
                .inds()
                .iter()
                .filter(|i| i.lhs_rel == *n)
                .all(|i| i.rhs_rel == *n || placed.contains(&i.rhs_rel));
            if ready {
                placed.insert(n.clone());
                groups.push(vec![n.clone()]);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let cycle: Vec<String> = names.into_iter().filter(|n| !placed.contains(n)).collect();
    if !cycle.is_empty() {
        groups.push(cycle);
    }
    groups
}

/// True when `rel` has an inclusion dependency into itself — its rows may
/// reference rows that land later in the same relation, so it must be
/// applied as one batch.
fn has_self_ind(schema: &RelationalSchema, rel: &str) -> bool {
    schema
        .inds()
        .iter()
        .any(|i| i.lhs_rel == rel && i.rhs_rel == rel)
}

impl Database {
    /// Executes the planned migration online, all-or-nothing: on success
    /// the database hosts `plan.schema()` with the η-mapped data and
    /// returns a [`MigrationReport`]; on any failure — constraint
    /// violation, injected fault, or panic — the database is rolled back
    /// byte-identical to its pre-migration state and the error surfaces
    /// typed.
    ///
    /// See the [module docs](crate::migrate) for the protocol and its
    /// invariants.
    pub fn migrate(&mut self, plan: &Merged) -> Result<MigrationReport> {
        let mut span = obs::span("engine.migrate");
        span.add_field("merged", plan.merged_name());
        if *plan.original_schema() != *self.schema() {
            return Err(Error::PreconditionViolated {
                procedure: "Database::migrate",
                detail: format!(
                    "plan starts from a different schema than the live database hosts \
                     (plan: {} schemes, live: {} schemes)",
                    plan.original_schema().schemes().len(),
                    self.schema().schemes().len()
                ),
            });
        }
        let pre = self.snapshot()?;
        // Proposition 4.1's state half gates the migration: refuse any
        // plan that would lose information on the *current* data.
        let capacity = check_forward(plan, &pre)?;
        if !capacity.holds() {
            return Err(Error::PreconditionViolated {
                procedure: "Database::migrate",
                detail: format!("migration would not preserve information capacity: {capacity:?}"),
            });
        }
        // η: the merged-schema image of the current state.
        let migrated = plan.apply(&pre)?;
        let new_schema = plan.schema().clone();
        let pre_versions: Vec<(String, u64)> = new_schema
            .schemes()
            .iter()
            .map(|s| s.name().to_owned())
            .map(|name| {
                let floor = if name == plan.merged_name() {
                    // The merged relation inherits the largest member
                    // version, so a reader holding any member's version
                    // pin sees the new name as strictly newer.
                    plan.member_names()
                        .iter()
                        .filter_map(|m| self.relation_version(m).ok())
                        .max()
                        .map_or(0, |v| v + 1)
                } else {
                    self.relation_version(&name).map_or(0, |v| v + 1)
                };
                (name, floor)
            })
            .collect();

        // A migration is one logical commit: suspend per-batch logging so
        // the data-apply chunks below don't write individual records — the
        // single migration record appended at the end of the forward path
        // captures the whole swap (and is the only thing recovery replays).
        if let Some(wal) = self.wal() {
            wal.suspend(true);
        }
        // Everything that mutates runs under `catch_unwind`: a panic at
        // any site (injected or genuine) takes the same rollback path an
        // error does and resurfaces typed.
        let mut saved: Option<(RelationalSchema, Catalog)> = None;
        let saved_ref = &mut saved;
        let forward = catch_unwind(AssertUnwindSafe(|| -> Result<(usize, usize)> {
            self.fault_check(site::MIGRATION_REWRITE)?;
            let catalog = compile_catalog(&new_schema, self.profile(), "Database::migrate")?;
            // Cached builds describe pre-migration relations; drop them
            // before the swap so no (relation, attrs, version) key can
            // alias across the catalog change.
            self.clear_build_cache();
            *saved_ref = Some(self.swap_catalog(new_schema.clone(), catalog));
            for (name, floor) in &pre_versions {
                self.raise_relation_version(name, *floor);
            }
            let mut rows = 0usize;
            let mut chunks = 0usize;
            for group in apply_groups(&new_schema) {
                let single_batch =
                    group.len() > 1 || group.iter().any(|r| has_self_ind(&new_schema, r));
                let stmts: Vec<Statement> = group
                    .iter()
                    .filter_map(|rel| migrated.relation(rel).map(|r| (rel, r)))
                    .flat_map(|(rel, relation)| {
                        relation
                            .iter()
                            .map(|t| Statement::insert(rel.clone(), t.clone()))
                    })
                    .collect();
                rows += stmts.len();
                let chunk_rows = if single_batch {
                    stmts.len().max(1)
                } else {
                    MIGRATE_CHUNK_ROWS
                };
                for chunk in stmts.chunks(chunk_rows) {
                    self.fault_check(site::MIGRATION_APPLY)?;
                    self.apply_batch(chunk).map_err(Error::from)?;
                    chunks += 1;
                }
            }
            // Write-ahead: one catalog record — new schema, full
            // post-migration state, version floors — makes the whole swap
            // durable (the per-chunk appends above were suspended). A
            // failed append fails the migration, which rolls back below.
            self.wal_append_migration()?;
            Ok((rows, chunks))
        }));
        let result = forward.unwrap_or_else(|payload| {
            Err(Error::ExecutionPanic {
                context: panic_message(payload),
            })
        });
        if let Some(wal) = self.wal() {
            wal.suspend(false);
        }
        match result {
            Ok((rows_migrated, chunks_applied)) => {
                let dropped: Vec<String> = pre
                    .names()
                    .into_iter()
                    .filter(|n| self.schema().scheme(n).is_none())
                    .map(str::to_owned)
                    .collect();
                // Archive (and clear) the pre-migration profile: its edge
                // keys name relations that no longer exist.
                let pre_profile = self.profiler().take();
                obs::global().counter("engine.migrate.applied").inc();
                span.add_field("rows", rows_migrated);
                Ok(MigrationReport {
                    merged_name: plan.merged_name().to_owned(),
                    members: plan
                        .member_names()
                        .iter()
                        .map(|m| (*m).to_owned())
                        .collect(),
                    dropped,
                    rows_migrated,
                    chunks_applied,
                    capacity,
                    pre_profile,
                })
            }
            Err(e) => {
                if let Some((old_schema, old_catalog)) = saved {
                    self.swap_catalog(old_schema, old_catalog);
                    // Chunks applied before the failure may have cached
                    // nothing (DML never does), but queries inside the
                    // window could have; drop everything again so only
                    // pre-migration-shaped builds can ever be cached.
                    self.clear_build_cache();
                }
                obs::global().counter("engine.migrate.aborted").inc();
                Err(e)
            }
        }
    }

    /// The full observation → decision → migration loop: snapshots the
    /// live workload profile, asks `advisor` for proposals ranked by the
    /// access cost they would eliminate, and migrates every admissible,
    /// pairwise-disjoint proposal with **observed** cost (static-only
    /// proposals are skipped — this entry point only merges what the
    /// workload demonstrably pays for). Returns the executed migrations
    /// in application order; an empty vector means the evidence demanded
    /// nothing.
    pub fn advise_and_migrate(&mut self, advisor: &Advisor) -> Result<Vec<AdvisedMigration>> {
        let snapshot = self.profile_snapshot();
        let proposals = advisor.propose_from_profile(&snapshot, self.schema())?;
        let mut consumed: BTreeSet<String> = BTreeSet::new();
        let mut out = Vec::new();
        for proposal in proposals {
            if !proposal.admissible || proposal.observed_cost == 0 {
                continue;
            }
            if proposal.members.iter().any(|m| consumed.contains(m)) {
                continue;
            }
            let merged_name = format!("{}_M", proposal.members[0]);
            let refs: Vec<&str> = proposal.members.iter().map(String::as_str).collect();
            let mut plan = Merge::plan(self.schema(), &refs, &merged_name)?;
            plan.remove_all_removable()?;
            let report = self.migrate(&plan)?;
            consumed.extend(proposal.members.iter().cloned());
            out.push(AdvisedMigration { proposal, report });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::DbmsProfile;
    use crate::fault::{FaultMode, FaultPlan};
    use crate::query::{JoinStep, QueryPlan};
    use relmerge_core::AdvisorConfig;
    use relmerge_relational::{
        Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Tuple,
        Value,
    };

    fn attr(name: &str) -> Attribute {
        Attribute::new(name, Domain::Int)
    }

    /// P(P.K) ← Q(Q.K, Q.V): the minimal mergeable star.
    fn star() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("P", vec![attr("P.K")], &["P.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("Q", vec![attr("Q.K"), attr("Q.V")], &["Q.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("P", &["P.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("Q", &["Q.K", "Q.V"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("Q", &["Q.K"], "P", &["P.K"]))
            .unwrap();
        rs
    }

    fn plan_star_merge(rs: &RelationalSchema) -> Merged {
        let mut plan = Merge::plan(rs, &["P", "Q"], "P_M").unwrap();
        plan.remove_all_removable().unwrap();
        plan
    }

    fn loaded_db() -> Database {
        let mut db = Database::new(star(), DbmsProfile::ideal()).unwrap();
        for k in 0..20 {
            db.insert("P", Tuple::new([Value::Int(k)])).unwrap();
            db.insert("Q", Tuple::new([Value::Int(k), Value::Int(k * 10)]))
                .unwrap();
        }
        db
    }

    #[test]
    fn migrate_replaces_members_with_merged_relation() {
        let mut db = loaded_db();
        let pre = db.snapshot().unwrap();
        let plan = plan_star_merge(db.schema());
        let report = db.migrate(&plan).unwrap();
        assert_eq!(report.merged_name, "P_M");
        assert_eq!(report.members, ["P", "Q"]);
        assert_eq!(report.dropped, ["P", "Q"]);
        assert_eq!(report.rows_migrated, 20);
        assert!(report.capacity.holds());
        assert!(db.verify_integrity().is_clean());
        // The live state equals the plan's η image of the old state.
        let expect = plan.apply(&pre).unwrap();
        assert_eq!(db.snapshot().unwrap(), expect);
        // Dropped members are gone from the catalog.
        assert!(db.relation_version("P").is_err());
        assert!(db.relation_version("Q").is_err());
    }

    #[test]
    fn migrate_carries_relation_versions_forward() {
        let mut db = loaded_db();
        let v_p = db.relation_version("P").unwrap();
        let v_q = db.relation_version("Q").unwrap();
        assert!(v_p > 0 && v_q > 0);
        let plan = plan_star_merge(db.schema());
        db.migrate(&plan).unwrap();
        // The merged relation's version sits strictly above both members'
        // pre-migration versions (floor + one bump per migrated row).
        assert!(db.relation_version("P_M").unwrap() > v_p.max(v_q));
    }

    #[test]
    fn migrate_rejects_mismatched_plan() {
        let mut db = loaded_db();
        let mut other = star();
        other
            .add_scheme(RelationScheme::new("S", vec![attr("S.K")], &["S.K"]).unwrap())
            .unwrap();
        other
            .add_null_constraint(NullConstraint::nna("S", &["S.K"]))
            .unwrap();
        let mut plan = Merge::plan(&other, &["P", "Q"], "P_M").unwrap();
        plan.remove_all_removable().unwrap();
        let err = db.migrate(&plan).unwrap_err();
        assert!(matches!(err, Error::PreconditionViolated { .. }), "{err}");
    }

    #[test]
    fn faults_at_both_migration_sites_roll_back_byte_identical() {
        for site_name in site::MIGRATION {
            for mode in [FaultMode::Error, FaultMode::Panic] {
                let mut db = loaded_db();
                let pre = db.snapshot().unwrap();
                let plan = plan_star_merge(db.schema());
                let probe = db.set_fault_plan(FaultPlan::new().fail_at(site_name, 0, mode));
                let err = db.migrate(&plan).unwrap_err();
                assert_eq!(probe.total_fired(), 1, "{site_name} {mode:?}");
                match mode {
                    FaultMode::Error => {
                        assert!(matches!(err, Error::Injected { .. }), "{err}")
                    }
                    FaultMode::Panic => {
                        assert!(matches!(err, Error::ExecutionPanic { .. }), "{err}")
                    }
                }
                db.clear_fault_plan();
                assert_eq!(db.snapshot().unwrap(), pre, "{site_name} {mode:?}");
                assert!(db.verify_integrity().is_clean(), "{site_name} {mode:?}");
                // The rolled-back database still works.
                db.insert("P", Tuple::new([Value::Int(999)])).unwrap();
            }
        }
    }

    #[test]
    fn migrate_archives_profile_and_queries_use_merged_schema() {
        let mut db = loaded_db();
        // Exercise the join so the profiler holds pre-merge edge keys.
        let join = QueryPlan::scan("Q").join(JoinStep::inner("P", &["Q.K"], &["P.K"]));
        db.execute(&join).unwrap();
        assert!(!db.profile_snapshot().queries.is_empty());
        let plan = plan_star_merge(db.schema());
        let report = db.migrate(&plan).unwrap();
        // Pre-merge edges were archived into the report, not left live.
        assert!(!report.pre_profile.queries.is_empty());
        assert!(db.profile_snapshot().queries.is_empty());
        // Fresh traffic profiles under the merged name only.
        let (rel, _) = db.execute(&QueryPlan::scan("P_M")).unwrap();
        assert_eq!(rel.len(), 20);
        let snap = db.profile_snapshot();
        assert!(snap.queries.values().all(|p| p.shape.root == "P_M"
            && p.shape
                .edges
                .iter()
                .all(|e| e.left == "P_M" && e.right == "P_M")));
    }

    #[test]
    fn advise_and_migrate_merges_the_hot_star() {
        let mut db = loaded_db();
        let join = QueryPlan::scan("Q").join(JoinStep::inner("P", &["Q.K"], &["P.K"]));
        for _ in 0..4 {
            db.execute(&join).unwrap();
        }
        let advisor = Advisor::new(AdvisorConfig::permissive());
        let applied = db.advise_and_migrate(&advisor).unwrap();
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].report.merged_name, "P_M");
        assert!(applied[0].proposal.observed_cost > 0);
        assert!(db.schema().scheme("P_M").is_some());
        // A cold database has no evidence — the advisor migrates nothing.
        let mut cold = loaded_db();
        assert!(cold.advise_and_migrate(&advisor).unwrap().is_empty());
        assert!(cold.schema().scheme("P").is_some());
    }
}
