//! Boolean-expression optimization for [`Predicate`] trees: iterative
//! rule-driven simplification producing a canonical normal form, plus the
//! conjunct splitting the executor's cross-operator pushdown feeds on.
//!
//! The engine does **not** model three-valued logic: every predicate is a
//! total boolean function over the row (`Eq` on a null operand is simply
//! false, and `Eq(a, Null)` is `IsNull(a)` under the identical-nulls
//! regime — see [`Predicate`]). Classical boolean rewrites are therefore
//! sound row-by-row, including on null-padded outer-join rows; the only
//! placement rule that needs care is pushing a conjunct *below* an outer
//! join, and that lives in the executor, not here.
//!
//! The rule catalog (applied to a fixpoint):
//!
//! * **NNF conversion** — negations are pushed to the leaves (double
//!   negation, De Morgan, `Not(IsNull) ↔ NotNull`); `Not(Eq)` remains as
//!   a negated-equality leaf.
//! * **Null-literal normalization** — `Eq(a, Null) → IsNull(a)`.
//! * **Flattening + canonical order** — `And`/`Or` chains flatten into
//!   n-ary connectives whose children are sorted and deduplicated
//!   (idempotence), so equivalent parenthesizations and permutations
//!   normalize identically.
//! * **Constant folding** — `true`/`false` children collapse, empty
//!   connectives fold to their identity.
//! * **Contradiction / tautology detection** — `IsNull(a) ∧ NotNull(a)`,
//!   `Eq(a,v) ∧ Eq(a,w)` (`v ≠ w`), `Eq(a,v) ∧ IsNull(a)`, and
//!   `p ∧ ¬p` fold to `false`; the duals fold `Or`s to `true`.
//! * **Implication pruning** — a conjunct implied by a sibling is dropped
//!   (`Eq(a,v) ∧ NotNull(a) → Eq(a,v)`; dually
//!   `Eq(a,v) ∨ NotNull(a) → NotNull(a)`), and `x ∧ (x ∨ y) → x` /
//!   `x ∨ (x ∧ y) → x` (absorption).
//!
//! [`canonical_shape`] runs the same engine with every `Eq` literal
//! erased to a fixed sentinel, yielding the literal-blind canonical form
//! [`crate::planner::fingerprint`] hashes — so fingerprints stay stable
//! across equivalent predicate forms *and* across literal changes.

use std::collections::BTreeSet;

use relmerge_relational::Value;

use crate::query::Predicate;

/// The result of optimizing a predicate: either a constant verdict
/// (the predicate accepts every row, or no row) or a simplified,
/// canonically ordered predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Optimized {
    /// The predicate folded to a constant: `Always(true)` accepts every
    /// row, `Always(false)` rejects every row.
    Always(bool),
    /// The simplified predicate (canonical child order, no redundant
    /// conjuncts, negations at the leaves).
    Pred(Predicate),
}

/// Simplifies `p` to a fixpoint under the module's rule catalog. The
/// result is row-by-row equivalent to `p` on every header that resolves
/// all of `p`'s attributes (predicates are total boolean functions —
/// there is no third truth value to preserve).
#[must_use]
pub fn optimize(p: &Predicate) -> Optimized {
    finish(simplify_fix(to_expr(p, false, false)))
}

/// The literal-blind canonical form used by plan fingerprinting: every
/// `Eq` literal is erased to a fixed sentinel before the same rule engine
/// runs, so two predicates differing only in constants — or only in an
/// equivalence-preserving rewrite (double negation, De Morgan, operand
/// order) — share a shape.
#[must_use]
pub fn canonical_shape(p: &Predicate) -> Optimized {
    finish(simplify_fix(to_expr(p, false, true)))
}

/// Splits `p` into its top-level conjuncts (the CNF-ish split: `And`
/// chains are walked, everything else is a single conjunct). Run
/// [`optimize`] first to get a canonical, maximally split form.
#[must_use]
pub fn conjuncts(p: &Predicate) -> Vec<Predicate> {
    let mut out = Vec::new();
    collect_conjuncts(p, &mut out);
    out
}

fn collect_conjuncts(p: &Predicate, out: &mut Vec<Predicate>) {
    match p {
        Predicate::And(a, b) => {
            collect_conjuncts(a, out);
            collect_conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Re-joins conjuncts into one predicate (left fold over `AND`).
/// Returns `None` for an empty slice.
#[must_use]
pub fn conjoin(cs: &[Predicate]) -> Option<Predicate> {
    let mut it = cs.iter().cloned();
    let first = it.next()?;
    Some(it.fold(first, Predicate::and))
}

/// Every attribute name `p` mentions, in deterministic order.
#[must_use]
pub fn attrs(p: &Predicate) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_attrs(p, &mut out);
    out
}

fn collect_attrs(p: &Predicate, out: &mut BTreeSet<String>) {
    match p {
        Predicate::Eq(a, _) | Predicate::IsNull(a) | Predicate::NotNull(a) => {
            out.insert(a.clone());
        }
        Predicate::And(x, y) | Predicate::Or(x, y) => {
            collect_attrs(x, out);
            collect_attrs(y, out);
        }
        Predicate::Not(x) => collect_attrs(x, out),
    }
}

/// The internal n-ary NNF representation the rules operate on. `NotEq`
/// is the one surviving negation (`Not(Eq(a, v))`); every other `Not`
/// is pushed through at conversion. Derived `Ord` gives the canonical
/// child order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Expr {
    Const(bool),
    Eq(String, Value),
    NotEq(String, Value),
    IsNull(String),
    NotNull(String),
    And(Vec<Expr>),
    Or(Vec<Expr>),
}

/// NNF conversion: `neg` is the parity of enclosing `Not`s, `erase`
/// replaces every `Eq` literal with a fixed sentinel (fingerprint mode).
fn to_expr(p: &Predicate, neg: bool, erase: bool) -> Expr {
    match p {
        Predicate::Eq(a, v) => {
            if erase {
                // Literal-blind: a fixed non-null sentinel so the
                // null-guarded rules behave uniformly.
                let s = Value::Int(0);
                if neg {
                    Expr::NotEq(a.clone(), s)
                } else {
                    Expr::Eq(a.clone(), s)
                }
            } else if v.is_null() {
                // Identical-nulls regime: `a = Null` holds exactly when
                // `a` is null.
                if neg {
                    Expr::NotNull(a.clone())
                } else {
                    Expr::IsNull(a.clone())
                }
            } else if neg {
                Expr::NotEq(a.clone(), v.clone())
            } else {
                Expr::Eq(a.clone(), v.clone())
            }
        }
        Predicate::IsNull(a) => {
            if neg {
                Expr::NotNull(a.clone())
            } else {
                Expr::IsNull(a.clone())
            }
        }
        Predicate::NotNull(a) => {
            if neg {
                Expr::IsNull(a.clone())
            } else {
                Expr::NotNull(a.clone())
            }
        }
        // De Morgan under odd parity.
        Predicate::And(x, y) => {
            let cs = vec![to_expr(x, neg, erase), to_expr(y, neg, erase)];
            if neg {
                Expr::Or(cs)
            } else {
                Expr::And(cs)
            }
        }
        Predicate::Or(x, y) => {
            let cs = vec![to_expr(x, neg, erase), to_expr(y, neg, erase)];
            if neg {
                Expr::And(cs)
            } else {
                Expr::Or(cs)
            }
        }
        Predicate::Not(x) => to_expr(x, !neg, erase),
    }
}

/// Runs [`simplify`] to a fixpoint (the rule set shrinks the tree, so a
/// handful of passes always suffices; the cap is sheer paranoia).
fn simplify_fix(mut e: Expr) -> Expr {
    for _ in 0..16 {
        let next = simplify(e.clone());
        if next == e {
            break;
        }
        e = next;
    }
    e
}

/// One bottom-up simplification pass.
fn simplify(e: Expr) -> Expr {
    match e {
        Expr::And(cs) => simplify_connective(cs, true),
        Expr::Or(cs) => simplify_connective(cs, false),
        leaf => leaf,
    }
}

/// Shared n-ary engine: `conj` selects `And` (true) or `Or` (false);
/// the dual rules mirror each other with `absorbing` = the constant that
/// annihilates the connective.
fn simplify_connective(children: Vec<Expr>, conj: bool) -> Expr {
    let absorbing = !conj; // false annihilates And; true annihilates Or.
    let mut flat: Vec<Expr> = Vec::with_capacity(children.len());
    for c in children {
        match simplify(c) {
            Expr::Const(b) if b == absorbing => return Expr::Const(absorbing),
            Expr::Const(_) => {} // identity element: drop.
            Expr::And(inner) if conj => flat.extend(inner),
            Expr::Or(inner) if !conj => flat.extend(inner),
            other => flat.push(other),
        }
    }
    flat.sort();
    flat.dedup(); // idempotence: x ∧ x → x, x ∨ x → x.

    if has_annihilating_pair(&flat, conj) {
        return Expr::Const(absorbing);
    }
    let keep: Vec<Expr> = flat
        .iter()
        .enumerate()
        .filter(|&(i, c)| !is_redundant(c, i, &flat, conj))
        .map(|(_, c)| c.clone())
        .collect();

    match keep.len() {
        0 => Expr::Const(conj), // empty And is true, empty Or is false.
        1 => keep.into_iter().next().expect("len checked"),
        _ => {
            if conj {
                Expr::And(keep)
            } else {
                Expr::Or(keep)
            }
        }
    }
}

/// Detects a pair of siblings that annihilates the whole connective: a
/// contradiction under `And`, a tautology under `Or`.
fn has_annihilating_pair(cs: &[Expr], conj: bool) -> bool {
    for (i, a) in cs.iter().enumerate() {
        for b in &cs[i + 1..] {
            let hit = match (a, b) {
                // p ∧ ¬p / p ∨ ¬p (order-normalized by the sort).
                (Expr::Eq(x, v), Expr::NotEq(y, w)) | (Expr::NotEq(y, w), Expr::Eq(x, v)) => {
                    x == y && v == w
                }
                (Expr::IsNull(x), Expr::NotNull(y)) | (Expr::NotNull(y), Expr::IsNull(x)) => x == y,
                _ if conj => match (a, b) {
                    // A non-null column can't equal two distinct values.
                    (Expr::Eq(x, v), Expr::Eq(y, w)) => x == y && v != w,
                    // Eq(a, v) with v non-null implies the column is
                    // non-null.
                    (Expr::Eq(x, v), Expr::IsNull(y)) | (Expr::IsNull(y), Expr::Eq(x, v)) => {
                        x == y && !v.is_null()
                    }
                    _ => false,
                },
                // ¬(a=v) ∨ ¬(a=w) with v ≠ w covers every row (a row
                // matches at most one of the two literals).
                _ => match (a, b) {
                    (Expr::NotEq(x, v), Expr::NotEq(y, w)) => x == y && v != w,
                    _ => false,
                },
            };
            if hit {
                return true;
            }
        }
    }
    false
}

/// True when `cs[i]` is implied by (under `Or`) or implies and is
/// subsumed by (under `And`) some sibling, so dropping it preserves the
/// connective's value.
fn is_redundant(c: &Expr, i: usize, cs: &[Expr], conj: bool) -> bool {
    cs.iter().enumerate().any(|(j, s)| {
        if i == j {
            return false;
        }
        if conj {
            // Under And: drop c when some sibling s implies c.
            implies(s, c) && !implies(c, s)
                // Absorption: x ∧ (x ∨ y) → x.
                || matches!(c, Expr::Or(inner) if inner.contains(s))
        } else {
            // Under Or: drop c when c implies some sibling s.
            implies(c, s) && !implies(s, c)
                // Absorption: x ∨ (x ∧ y) → x.
                || matches!(c, Expr::And(inner) if inner.contains(s))
        }
    })
}

/// Leaf-level implication: does `a` holding force `b` to hold?
fn implies(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        // a = v (v non-null) forces the column non-null…
        (Expr::Eq(x, v), Expr::NotNull(y)) => x == y && !v.is_null(),
        // …and forces a ≠ w for any other literal w.
        (Expr::Eq(x, v), Expr::NotEq(y, w)) => x == y && v != w,
        // a IS NULL forces a ≠ v for non-null v (Eq on null is false).
        (Expr::IsNull(x), Expr::NotEq(y, w)) => x == y && !w.is_null(),
        _ => false,
    }
}

/// Converts the simplified [`Expr`] back to the public surface.
fn finish(e: Expr) -> Optimized {
    match e {
        Expr::Const(b) => Optimized::Always(b),
        other => Optimized::Pred(from_expr(&other)),
    }
}

fn from_expr(e: &Expr) -> Predicate {
    match e {
        Expr::Const(_) => unreachable!("constants are folded before conversion"),
        Expr::Eq(a, v) => Predicate::Eq(a.clone(), v.clone()),
        Expr::NotEq(a, v) => Predicate::Eq(a.clone(), v.clone()).negate(),
        Expr::IsNull(a) => Predicate::IsNull(a.clone()),
        Expr::NotNull(a) => Predicate::NotNull(a.clone()),
        Expr::And(cs) => cs
            .iter()
            .map(from_expr)
            .reduce(Predicate::and)
            .expect("connectives keep ≥ 2 children"),
        Expr::Or(cs) => cs
            .iter()
            .map(from_expr)
            .reduce(Predicate::or)
            .expect("connectives keep ≥ 2 children"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq(a: &str, v: i64) -> Predicate {
        Predicate::eq(a, Value::Int(v))
    }

    #[test]
    fn double_negation_and_de_morgan_normalize() {
        let p = eq("A", 1).negate().negate();
        assert_eq!(optimize(&p), Optimized::Pred(eq("A", 1)));
        // ¬(x ∧ y) ≡ ¬x ∨ ¬y; both sides reach one canonical form.
        let lhs = eq("A", 1).and(Predicate::is_null("B")).negate();
        let rhs = eq("A", 1).negate().or(Predicate::not_null("B"));
        assert_eq!(optimize(&lhs), optimize(&rhs));
    }

    #[test]
    fn constant_folding_detects_contradictions_and_tautologies() {
        let contra = Predicate::is_null("A").and(Predicate::not_null("A"));
        assert_eq!(optimize(&contra), Optimized::Always(false));
        let taut = Predicate::is_null("A").or(Predicate::not_null("A"));
        assert_eq!(optimize(&taut), Optimized::Always(true));
        // Distinct literals on one column can't both hold.
        let two = eq("A", 1).and(eq("A", 2));
        assert_eq!(optimize(&two), Optimized::Always(false));
        // Eq on a non-null literal contradicts IS NULL.
        let eqnull = eq("A", 1).and(Predicate::is_null("A"));
        assert_eq!(optimize(&eqnull), Optimized::Always(false));
        // p ∧ ¬p.
        let pnp = eq("A", 1).and(eq("A", 1).negate());
        assert_eq!(optimize(&pnp), Optimized::Always(false));
    }

    #[test]
    fn idempotence_absorption_and_implication_pruning() {
        let dup = eq("A", 1).and(eq("A", 1));
        assert_eq!(optimize(&dup), Optimized::Pred(eq("A", 1)));
        // x ∧ (x ∨ y) → x.
        let absorb = eq("A", 1).and(eq("A", 1).or(eq("B", 2)));
        assert_eq!(optimize(&absorb), Optimized::Pred(eq("A", 1)));
        // Eq implies NotNull, so the conjunct NotNull is redundant…
        let imp = eq("A", 1).and(Predicate::not_null("A"));
        assert_eq!(optimize(&imp), Optimized::Pred(eq("A", 1)));
        // …and dually Eq is subsumed under Or.
        let imp_or = eq("A", 1).or(Predicate::not_null("A"));
        assert_eq!(optimize(&imp_or), Optimized::Pred(Predicate::not_null("A")));
    }

    #[test]
    fn null_literal_eq_is_isnull() {
        let p = Predicate::eq("A", Value::Null);
        assert_eq!(optimize(&p), Optimized::Pred(Predicate::is_null("A")));
        let n = Predicate::eq("A", Value::Null).negate();
        assert_eq!(optimize(&n), Optimized::Pred(Predicate::not_null("A")));
    }

    #[test]
    fn operand_order_is_canonical() {
        let ab = eq("A", 1).and(eq("B", 2));
        let ba = eq("B", 2).and(eq("A", 1));
        assert_eq!(optimize(&ab), optimize(&ba));
        let nested = eq("A", 1).and(eq("B", 2).and(eq("C", 3)));
        let flat = eq("C", 3).and(eq("A", 1)).and(eq("B", 2));
        assert_eq!(optimize(&nested), optimize(&flat));
    }

    #[test]
    fn conjunct_split_walks_and_chains() {
        let p = eq("A", 1).and(eq("B", 2)).and(eq("C", 3).or(eq("D", 4)));
        let cs = conjuncts(&p);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0], eq("A", 1));
        assert_eq!(conjoin(&cs).unwrap(), p);
        assert_eq!(conjoin(&[]), None);
    }

    #[test]
    fn canonical_shape_is_literal_blind_but_structure_sensitive() {
        let p1 = eq("A", 1).and(eq("B", 2));
        let p2 = eq("A", 99).and(eq("B", -7));
        assert_eq!(canonical_shape(&p1), canonical_shape(&p2));
        // Equivalent forms share a shape…
        let dn = eq("A", 1).negate().negate().and(eq("B", 2));
        assert_eq!(canonical_shape(&p1), canonical_shape(&dn));
        // …structurally different predicates do not.
        let or_form = eq("A", 1).or(eq("B", 2));
        assert_ne!(canonical_shape(&p1), canonical_shape(&or_form));
        assert_ne!(
            canonical_shape(&Predicate::is_null("A")),
            canonical_shape(&Predicate::not_null("A"))
        );
    }

    #[test]
    fn attrs_are_collected_in_order() {
        let p = eq("B", 1).and(Predicate::is_null("A").or(eq("C", 2).negate()));
        let got: Vec<String> = attrs(&p).into_iter().collect();
        assert_eq!(got, ["A", "B", "C"]);
    }
}
