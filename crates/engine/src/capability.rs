//! DBMS capability profiles (paper §5.1).
//!
//! The paper evaluates its technique against the constraint-maintenance
//! mechanisms of 1989-era systems: IBM DB2 (declarative referential
//! integrity, no general mechanisms), SYBASE 4.0 (triggers), and INGRES 6.3
//! (rules). The proprietary systems themselves are unavailable, so each is
//! modelled as a *capability profile* — which constraint classes it can
//! maintain, and through which mechanism — and the engine enforces
//! constraints through the corresponding tier, mirroring the cost
//! difference between declarative checks and trigger/rule procedures.

use relmerge_relational::{NullConstraint, RelationalSchema};

/// How a constraint class is maintained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Not maintainable at all; schemas needing it cannot be hosted.
    Unsupported,
    /// Declarative DDL support (`NOT NULL`, `PRIMARY KEY`, `FOREIGN KEY`).
    Declarative,
    /// Procedural support: triggers (SYBASE) or rules (INGRES) — works,
    /// but "tedious and error-prone" and more expensive per statement.
    Procedural,
}

/// What a target DBMS can maintain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbmsProfile {
    /// Display name.
    pub name: &'static str,
    /// Key-based inclusion dependencies (referential integrity).
    pub referential_integrity: Mechanism,
    /// Non key-based inclusion dependencies.
    pub non_key_inds: Mechanism,
    /// Nulls-not-allowed constraints.
    pub nna: Mechanism,
    /// General null constraints (null-existence, null-synchronization,
    /// part-null, total-equality).
    pub general_null_constraints: Mechanism,
    /// Whether candidate keys containing nullable attributes can be
    /// maintained (false when the DBMS treats all nulls as identical).
    pub nullable_keys: bool,
    /// Whether constraint checking can be deferred to the end of a
    /// statement batch (SQL-92 `DEFERRABLE INITIALLY DEFERRED`). None of
    /// the paper's 1989-era targets support it; when `false`,
    /// [`Database::apply_batch`](crate::Database::apply_batch) falls back
    /// to immediate per-statement checking (still all-or-nothing).
    pub deferred_checking: bool,
}

impl DbmsProfile {
    /// IBM DB2 \[5\]: declarative referential integrity and `NOT NULL`; a
    /// `validproc` escape hatch exists but the paper treats general
    /// constraints and non-key dependencies as impractical there.
    #[must_use]
    pub fn db2() -> Self {
        DbmsProfile {
            name: "DB2",
            referential_integrity: Mechanism::Declarative,
            non_key_inds: Mechanism::Unsupported,
            nna: Mechanism::Declarative,
            general_null_constraints: Mechanism::Unsupported,
            nullable_keys: false,
            deferred_checking: false,
        }
    }

    /// SYBASE 4.0 \[13\]: triggers maintain non-key dependencies and general
    /// null constraints; all nulls are identical, so nullable keys are out.
    #[must_use]
    pub fn sybase40() -> Self {
        DbmsProfile {
            name: "SYBASE 4.0",
            referential_integrity: Mechanism::Procedural,
            non_key_inds: Mechanism::Procedural,
            nna: Mechanism::Declarative,
            general_null_constraints: Mechanism::Procedural,
            nullable_keys: false,
            deferred_checking: false,
        }
    }

    /// INGRES 6.3 \[6\]: rules play the role of triggers.
    #[must_use]
    pub fn ingres63() -> Self {
        DbmsProfile {
            name: "INGRES 6.3",
            referential_integrity: Mechanism::Procedural,
            non_key_inds: Mechanism::Procedural,
            nna: Mechanism::Declarative,
            general_null_constraints: Mechanism::Procedural,
            nullable_keys: false,
            deferred_checking: false,
        }
    }

    /// An idealized engine that maintains everything natively — the
    /// upper-bound comparator used in benches.
    #[must_use]
    pub fn ideal() -> Self {
        DbmsProfile {
            name: "ideal",
            referential_integrity: Mechanism::Declarative,
            non_key_inds: Mechanism::Declarative,
            nna: Mechanism::Declarative,
            general_null_constraints: Mechanism::Declarative,
            nullable_keys: true,
            deferred_checking: true,
        }
    }

    /// The mechanism this profile uses for one null constraint.
    #[must_use]
    pub fn null_constraint_mechanism(&self, c: &NullConstraint) -> Mechanism {
        if c.is_nna() {
            self.nna
        } else {
            self.general_null_constraints
        }
    }

    /// Whether this profile can host `schema`, and why not if it cannot.
    /// (Paper §5.1: *"for such DBMSs our merging technique can be applied
    /// only when such constraints and dependencies are not generated"*.)
    #[must_use]
    pub fn hosting_report(&self, schema: &RelationalSchema) -> Vec<String> {
        let mut problems = Vec::new();
        for ind in schema.inds() {
            let key_based = schema
                .scheme(&ind.rhs_rel)
                .is_some_and(|rhs| ind.is_key_based(rhs));
            let mech = if key_based {
                self.referential_integrity
            } else {
                self.non_key_inds
            };
            if mech == Mechanism::Unsupported {
                problems.push(format!(
                    "{}: cannot maintain {} dependency {ind}",
                    self.name,
                    if key_based {
                        "referential"
                    } else {
                        "non key-based"
                    }
                ));
            }
        }
        for c in schema.null_constraints() {
            if self.null_constraint_mechanism(c) == Mechanism::Unsupported {
                problems.push(format!(
                    "{}: cannot maintain null constraint {c}",
                    self.name
                ));
            }
        }
        if !self.nullable_keys {
            for s in schema.schemes() {
                for ck in s.candidate_keys() {
                    let nullable = ck.iter().any(|a| !schema.attr_not_null(s.name(), a));
                    if nullable {
                        problems.push(format!(
                            "{}: candidate key ({}) of {} contains nullable attributes",
                            self.name,
                            ck.join(","),
                            s.name()
                        ));
                    }
                }
            }
        }
        problems
    }

    /// Whether the profile can host `schema` without problems.
    #[must_use]
    pub fn can_host(&self, schema: &RelationalSchema) -> bool {
        self.hosting_report(schema).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmerge_relational::{Attribute, Domain, InclusionDep, RelationScheme, RelationalSchema};

    fn base_schema() -> RelationalSchema {
        let a = |n: &str| Attribute::new(n, Domain::Int);
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("A", vec![a("A.K"), a("A.V")], &["A.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("B", vec![a("B.K")], &["B.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("B", &["B.K"]))
            .unwrap();
        rs
    }

    #[test]
    fn db2_hosts_declarative_schema() {
        let mut rs = base_schema();
        rs.add_ind(InclusionDep::new("A", &["A.K"], "B", &["B.K"]))
            .unwrap();
        assert!(DbmsProfile::db2().can_host(&rs));
    }

    #[test]
    fn db2_rejects_non_key_ind() {
        let mut rs = base_schema();
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.V"]))
            .unwrap();
        let report = DbmsProfile::db2().hosting_report(&rs);
        assert_eq!(report.len(), 1);
        assert!(report[0].contains("non key-based"));
        assert!(DbmsProfile::sybase40().can_host(&rs));
        assert!(DbmsProfile::ingres63().can_host(&rs));
    }

    #[test]
    fn db2_rejects_general_null_constraints() {
        let mut rs = base_schema();
        rs.add_null_constraint(NullConstraint::ne("A", &["A.V"], &["A.K"]))
            .unwrap();
        assert!(!DbmsProfile::db2().can_host(&rs));
        assert!(DbmsProfile::sybase40().can_host(&rs));
    }

    #[test]
    fn nullable_candidate_keys_rejected_without_support() {
        let a = |n: &str| Attribute::new(n, Domain::Int);
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::with_candidate_keys(
                "R",
                vec![a("R.K"), a("R.ALT")],
                &[&["R.K"], &["R.ALT"]],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("R", &["R.K"]))
            .unwrap();
        // R.ALT is nullable.
        for profile in [
            DbmsProfile::db2(),
            DbmsProfile::sybase40(),
            DbmsProfile::ingres63(),
        ] {
            assert!(!profile.can_host(&rs), "{}", profile.name);
        }
        assert!(DbmsProfile::ideal().can_host(&rs));
    }

    #[test]
    fn mechanism_classification() {
        let profile = DbmsProfile::sybase40();
        assert_eq!(
            profile.null_constraint_mechanism(&NullConstraint::nna("R", &["X"])),
            Mechanism::Declarative
        );
        assert_eq!(
            profile.null_constraint_mechanism(&NullConstraint::ns("R", &["X", "Y"])),
            Mechanism::Procedural
        );
    }
}
