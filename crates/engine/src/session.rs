//! Concurrent multi-session access to one database: snapshot readers,
//! serialized writers, and a store-wide versioned build cache.
//!
//! [`Store`] owns the master [`Database`] (schema, catalog, relations,
//! versions, WAL). Cheap per-client [`Session`] handles share it:
//!
//! * **Readers never block writers** (and vice versa). [`Session::pin`]
//!   returns a [`Snapshot`] — a consistent, immutable view of the store
//!   at a commit boundary. Pinning is O(number of relations): tables are
//!   individually `Arc`-wrapped, so a snapshot shares the writer's
//!   storage until the writer's next mutation copies the touched table
//!   on write ([`std::sync::Arc::make_mut`]). A pinned snapshot is a
//!   plain [`Database`] value behind a `Deref`, so the whole `&self`
//!   read surface (execute, snapshot, verify, versions) works unchanged
//!   — and every query against it is byte-identical to running it alone
//!   against that frozen state.
//! * **Writers are serialized.** Every mutation — [`Statement`] batches,
//!   [`Session::transaction`], [`Session::migrate`] — funnels through
//!   one writer mutex, bumps the store's commit sequence on success, and
//!   appends to the WAL exactly as a single-owner [`Database`] would.
//!   A failed commit rolls back without disturbing concurrently-pinned
//!   readers (their tables are frozen by copy-on-write).
//! * **One build cache, shared by everyone.** The build-side LRU keyed
//!   `(relation, probe attrs, pushed-predicate fingerprint, version)`
//!   lives behind an `Arc` in the master and is shared by every session
//!   and every pinned snapshot, byte cap included. Relation versions are
//!   strictly monotonic over the store's lifetime, so a key names
//!   exactly one table state along the master history: a hit from *any*
//!   session — or from an old pinned snapshot — is proof of freshness,
//!   and version bumps invalidate for free.
//!
//! Observability: each session charges its reads to a private metrics
//! shard; when the session drops, the shard folds into the store's
//! registry exactly once (no lost or double-counted counters, however
//! many sessions come and go).
//!
//! Fault injection: [`crate::fault::site::SESSION_SNAPSHOT`] fires at
//! every pin (contained to that pin attempt) and
//! [`crate::fault::site::WRITER_COMMIT`] at entry of the serialized
//! writer section (fails that commit typed; the master state and the
//! commit sequence are untouched, and pinned readers stay healthy).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use relmerge_core::Merged;
use relmerge_obs::Registry;
use relmerge_relational::{DatabaseState, Error, Relation, Result};

use crate::batch::{BatchOutcome, Statement};
use crate::database::{Database, DbMetrics, DmlError, EngineConfig};
use crate::fault::{panic_message, site, FaultPlan, IntegrityReport};
use crate::migrate::MigrationReport;
use crate::query::{QueryPlan, QueryStats};
use crate::txn::Transaction;

/// The shared half of a multi-session engine: one master [`Database`]
/// plus the published-snapshot machinery. `Store` is a cheap handle
/// (`Arc` inside) — clone it freely, or mint [`Session`]s with
/// [`Store::session`].
#[derive(Clone)]
pub struct Store {
    inner: Arc<StoreInner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("commit_seq", &self.commit_seq())
            .finish_non_exhaustive()
    }
}

struct StoreInner {
    /// The single mutable instance. Every write path locks it; the
    /// snapshot refresh path locks it briefly to copy the table map at a
    /// commit boundary. Lock order: `master` before `published`.
    master: Mutex<Database>,
    /// Bumped once per *successful* commit (batch, transaction,
    /// migration, config change). Readers compare it against the
    /// published snapshot's sequence to decide whether a refresh is due
    /// — the lock-free fast path of [`Session::pin`].
    commit_seq: AtomicU64,
    /// The most recently published snapshot base and the commit sequence
    /// it was taken at. Lazily refreshed: the first pin after a commit
    /// pays the O(number of relations) copy; every other pin at that
    /// sequence is two pointer reads under a short lock.
    published: Mutex<Option<(u64, Arc<Database>)>>,
    /// The store-wide metric registry (the master database's shard).
    /// Session shards fold into it when they drop.
    registry: Arc<Registry>,
}

impl Store {
    /// Wraps `db` — WAL and all — as the master of a shared store.
    #[must_use]
    pub fn new(db: Database) -> Store {
        let registry = Arc::clone(db.metrics_registry());
        Store {
            inner: Arc::new(StoreInner {
                master: Mutex::new(db),
                commit_seq: AtomicU64::new(0),
                published: Mutex::new(None),
                registry,
            }),
        }
    }

    /// Mints a new session: a cheap handle that pins snapshots for reads
    /// and routes writes through the serialized writer path. Each
    /// session charges its reads to a private metrics shard that folds
    /// into the store registry when the session drops.
    #[must_use]
    pub fn session(&self) -> Session {
        Session {
            store: self.clone(),
            metrics: Arc::new(DbMetrics::session_shard(Arc::clone(&self.inner.registry))),
        }
    }

    /// The number of successful commits so far (monotonic).
    #[must_use]
    pub fn commit_seq(&self) -> u64 {
        self.inner.commit_seq.load(Ordering::Acquire)
    }

    /// The store-wide metric registry: the master's counters plus every
    /// dropped session's folded shard.
    #[must_use]
    pub fn metrics_registry(&self) -> Arc<Registry> {
        Arc::clone(&self.inner.registry)
    }

    /// The current values of every tuning knob (see
    /// [`Database::config`]).
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.lock_master().config()
    }

    /// Applies `config` to the master (see [`Database::configure`]).
    /// Counts as a commit: sessions pin fresh snapshots afterwards, so a
    /// knob change never applies retroactively to an already-pinned
    /// snapshot.
    pub fn configure(&self, config: EngineConfig) {
        let mut master = self.lock_master();
        master.configure(config);
        self.publish_commit();
    }

    /// Installs a fault plan on the master (see
    /// [`Database::set_fault_plan`]); snapshots pinned afterwards carry
    /// it, so armed query sites fire on session reads too.
    pub fn set_fault_plan(&self, plan: FaultPlan) -> Arc<FaultPlan> {
        let mut master = self.lock_master();
        let plan = master.set_fault_plan(plan);
        self.publish_commit();
        plan
    }

    /// Removes the fault plan, if any.
    pub fn clear_fault_plan(&self) {
        let mut master = self.lock_master();
        master.clear_fault_plan();
        self.publish_commit();
    }

    /// Materializes the master's current contents (a consistent commit
    /// boundary) as a [`DatabaseState`].
    pub fn snapshot(&self) -> Result<DatabaseState> {
        self.lock_master().snapshot()
    }

    /// Runs the deep integrity checker against the master's current
    /// state (see [`Database::verify_integrity`]).
    #[must_use]
    pub fn verify_integrity(&self) -> IntegrityReport {
        self.lock_master().verify_integrity()
    }

    /// Tears the store down and returns the master database, provided
    /// this is the last handle (no other `Store` clone and no live
    /// `Session`). Otherwise returns `self` unchanged inside `Err`.
    pub fn try_into_database(self) -> std::result::Result<Database, Store> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner
                .master
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)),
            Err(inner) => Err(Store { inner }),
        }
    }

    fn lock_master(&self) -> MutexGuard<'_, Database> {
        // A writer panic (e.g. an injected panic resumed by
        // `Database::transaction` after its rollback completed) poisons
        // the mutex with the database already restored — recover the
        // guard rather than propagating the poison.
        self.inner
            .master
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_published(&self) -> MutexGuard<'_, Option<(u64, Arc<Database>)>> {
        self.inner
            .published
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Marks a successful commit: bumps the sequence so the next pin
    /// refreshes its base. Must be called while holding the master lock
    /// (callers do), so refreshing pins serialize behind the completed
    /// commit.
    fn publish_commit(&self) {
        self.inner.commit_seq.fetch_add(1, Ordering::Release);
    }

    /// The snapshot base for the current commit sequence, publishing a
    /// fresh one if a commit landed since the last pin.
    fn pinned_base(&self) -> Arc<Database> {
        let seq = self.inner.commit_seq.load(Ordering::Acquire);
        {
            let published = self.lock_published();
            if let Some((at, base)) = published.as_ref() {
                if *at == seq {
                    return Arc::clone(base);
                }
            }
        }
        // Refresh: copy the table map at a commit boundary. Lock order is
        // master before published; the sequence is re-read under the
        // master lock so the published pair is exact, not approximate.
        let master = self.lock_master();
        let seq = self.inner.commit_seq.load(Ordering::Acquire);
        let base = Arc::new(master.snapshot_handle(master.metrics_arc()));
        drop(master);
        let mut published = self.lock_published();
        // A concurrent refresher may have published a newer base while we
        // were copying; never move `published` backwards.
        let stale = published.as_ref().is_some_and(|(at, _)| *at > seq);
        if !stale {
            *published = Some((seq, Arc::clone(&base)));
        }
        base
    }

    /// The serialized writer section: locks the master, fires the
    /// `engine.writer.commit` fault gate (contained — an injected panic
    /// becomes a typed error without poisoning anything), runs `f`, and
    /// bumps the commit sequence only if `f` succeeded. A failed `f` has
    /// rolled itself back (every `Database` write path does), so the
    /// sequence — and every pinned reader — is untouched.
    fn with_writer<T, E: From<Error>>(
        &self,
        f: impl FnOnce(&mut Database) -> std::result::Result<T, E>,
    ) -> std::result::Result<T, E> {
        let mut master = self.lock_master();
        let gate = catch_unwind(AssertUnwindSafe(|| master.fault_check(site::WRITER_COMMIT)))
            .unwrap_or_else(|payload| {
                Err(Error::ExecutionPanic {
                    context: panic_message(payload),
                })
            });
        if let Err(e) = gate {
            return Err(E::from(e));
        }
        let out = f(&mut master);
        if out.is_ok() {
            self.publish_commit();
        }
        out
    }
}

/// One client's handle on a [`Store`]: pin snapshots to read, call the
/// write verbs to mutate through the serialized writer path. Cheap to
/// create and drop; `Send`, so each client thread owns one.
pub struct Session {
    store: Store,
    /// This session's private metrics shard. Pinned snapshots charge
    /// their reads here; the shard folds into the store registry when
    /// the last handle (session or outstanding snapshot) drops.
    metrics: Arc<DbMetrics>,
}

impl Session {
    /// Pins the store's current state and returns the frozen
    /// [`Snapshot`]. Never blocks on writers beyond the brief base
    /// refresh after a commit; the returned snapshot is immutable — the
    /// same query against it returns byte-identical results no matter
    /// what writers do afterwards.
    ///
    /// Fault site [`site::SESSION_SNAPSHOT`] fires here; a fire (error
    /// or panic) is contained to this pin attempt.
    pub fn pin(&self) -> Result<Snapshot> {
        let base = self.store.pinned_base();
        catch_unwind(AssertUnwindSafe(|| {
            base.fault_check(site::SESSION_SNAPSHOT)
        }))
        .unwrap_or_else(|payload| {
            Err(Error::ExecutionPanic {
                context: panic_message(payload),
            })
        })?;
        Ok(Snapshot {
            db: base.snapshot_handle(Arc::clone(&self.metrics)),
        })
    }

    /// Pins a snapshot and executes `plan` against it — the one-shot
    /// read verb. Equivalent to `self.pin()?.execute(plan)`.
    pub fn execute(&self, plan: &QueryPlan) -> Result<(Relation, QueryStats)> {
        self.pin()?.execute(plan)
    }

    /// Applies an all-or-nothing statement batch through the serialized
    /// writer path (see [`Database::apply_batch`]).
    pub fn apply_batch(&self, stmts: &[Statement]) -> std::result::Result<BatchOutcome, DmlError> {
        self.store.with_writer(|db| db.apply_batch(stmts))
    }

    /// Inserts one tuple through the serialized writer path (see
    /// [`Database::insert`]).
    pub fn insert(
        &self,
        rel: &str,
        t: relmerge_relational::Tuple,
    ) -> std::result::Result<bool, DmlError> {
        self.store.with_writer(|db| db.insert(rel, t))
    }

    /// Deletes by primary key through the serialized writer path (see
    /// [`Database::delete_by_key`]).
    pub fn delete_by_key(
        &self,
        rel: &str,
        key: &relmerge_relational::Tuple,
    ) -> std::result::Result<bool, DmlError> {
        self.store.with_writer(|db| db.delete_by_key(rel, key))
    }

    /// Runs `f` as one atomic transaction through the serialized writer
    /// path (see [`Database::transaction`]).
    pub fn transaction<T>(
        &self,
        f: impl FnOnce(&mut Transaction<'_>) -> std::result::Result<T, DmlError>,
    ) -> std::result::Result<T, DmlError> {
        self.store.with_writer(|db| db.transaction(f))
    }

    /// Executes an online merge migration through the serialized writer
    /// path (see [`Database::migrate`]). Readers pinned before the
    /// migration keep their pre-migration view; pins after a successful
    /// migration see the merged schema.
    pub fn migrate(&self, plan: &Merged) -> Result<MigrationReport> {
        self.store.with_writer(|db| db.migrate(plan))
    }

    /// The store this session belongs to.
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }
}

/// A frozen, consistent view of a [`Store`] at one commit boundary,
/// pinned by [`Session::pin`]. Dereferences to [`Database`], so the
/// whole `&self` read API works against it; the writer's later commits
/// never change what it sees (copy-on-write), and it never blocks them.
pub struct Snapshot {
    db: Database,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version_vector", &self.version_vector())
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// The pinned version vector: every relation's modification version
    /// at the commit boundary this snapshot froze. Two snapshots with
    /// equal vectors see byte-identical data; the vector also names the
    /// exact serial state a replay must reproduce for determinism
    /// checks.
    #[must_use]
    pub fn version_vector(&self) -> Vec<(String, u64)> {
        self.db.relation_versions()
    }
}

impl std::ops::Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::DbmsProfile;
    use crate::fault::FaultMode;
    use relmerge_relational::{
        Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Tuple,
        Value,
    };

    fn schema() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new("P", vec![Attribute::new("P.K", Domain::Int)], &["P.K"]).unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "C",
                vec![
                    Attribute::new("C.K", Domain::Int),
                    Attribute::new("C.FK", Domain::Int),
                ],
                &["C.K"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("P", &["P.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("C", &["C.K", "C.FK"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("C", &["C.FK"], "P", &["P.K"]))
            .unwrap();
        rs
    }

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
    }

    fn store() -> Store {
        let db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
        Store::new(db)
    }

    #[test]
    fn pinned_snapshot_is_frozen_while_writers_proceed() {
        let st = store();
        let writer = st.session();
        let reader = st.session();
        writer.insert("P", tup(&[1])).unwrap();
        let snap = reader.pin().unwrap();
        assert_eq!(snap.len("P"), 1);
        let vv = snap.version_vector();

        // The writer keeps committing; the pinned view does not move.
        writer.insert("P", tup(&[2])).unwrap();
        writer.insert("C", tup(&[10, 2])).unwrap();
        assert_eq!(snap.len("P"), 1);
        assert_eq!(snap.len("C"), 0);
        assert_eq!(snap.version_vector(), vv);

        // A fresh pin sees the new commits.
        let snap2 = reader.pin().unwrap();
        assert_eq!(snap2.len("P"), 2);
        assert_eq!(snap2.len("C"), 1);
        assert!(snap2.version_vector() > vv);
    }

    #[test]
    fn pins_at_the_same_sequence_share_one_base() {
        let st = store();
        let s1 = st.session();
        let s2 = st.session();
        s1.insert("P", tup(&[1])).unwrap();
        let seq = st.commit_seq();
        let a = s1.pin().unwrap();
        let b = s2.pin().unwrap();
        assert_eq!(st.commit_seq(), seq, "pins are not commits");
        assert_eq!(a.version_vector(), b.version_vector());
        assert_eq!(a.snapshot().unwrap(), b.snapshot().unwrap());
    }

    #[test]
    fn failed_writes_do_not_advance_the_commit_seq() {
        let st = store();
        let s = st.session();
        s.insert("P", tup(&[1])).unwrap();
        let seq = st.commit_seq();
        let snap = s.pin().unwrap();
        // Dangling FK: the batch fails and rolls back.
        assert!(s.insert("C", tup(&[10, 99])).is_err());
        assert_eq!(st.commit_seq(), seq);
        assert_eq!(snap.len("C"), 0);
        assert!(st.verify_integrity().is_clean());
        // The store remains fully serviceable.
        s.insert("P", tup(&[2])).unwrap();
        assert_eq!(st.commit_seq(), seq + 1);
    }

    #[test]
    fn writer_commit_fault_leaves_readers_and_master_untouched() {
        let st = store();
        let s = st.session();
        s.insert("P", tup(&[1])).unwrap();
        let pre = st.snapshot().unwrap();
        let snap = s.pin().unwrap();
        for mode in [FaultMode::Error, FaultMode::Panic] {
            let plan = st.set_fault_plan(FaultPlan::new().fail_at(site::WRITER_COMMIT, 0, mode));
            let err = s.insert("P", tup(&[2])).unwrap_err();
            match mode {
                FaultMode::Error => {
                    assert!(
                        matches!(err, DmlError::Schema(Error::Injected { .. })),
                        "{err}"
                    )
                }
                FaultMode::Panic => assert!(
                    matches!(err, DmlError::Schema(Error::ExecutionPanic { .. })),
                    "{err}"
                ),
            }
            assert_eq!(plan.fired(site::WRITER_COMMIT), 1);
            st.clear_fault_plan();
            assert_eq!(st.snapshot().unwrap(), pre);
            assert_eq!(snap.len("P"), 1, "pinned reader untouched");
            assert!(st.verify_integrity().is_clean());
        }
        s.insert("P", tup(&[2])).unwrap();
    }

    #[test]
    fn session_snapshot_fault_is_contained_to_the_pin() {
        let st = store();
        let s = st.session();
        s.insert("P", tup(&[1])).unwrap();
        for mode in [FaultMode::Error, FaultMode::Panic] {
            let plan = st.set_fault_plan(FaultPlan::new().fail_at(site::SESSION_SNAPSHOT, 0, mode));
            let err = s.pin().unwrap_err();
            match mode {
                FaultMode::Error => assert!(matches!(err, Error::Injected { .. }), "{err}"),
                FaultMode::Panic => assert!(matches!(err, Error::ExecutionPanic { .. }), "{err}"),
            }
            assert_eq!(plan.fired(site::SESSION_SNAPSHOT), 1);
            st.clear_fault_plan();
            let snap = s.pin().unwrap();
            assert_eq!(snap.len("P"), 1);
        }
    }

    #[test]
    fn session_drop_folds_metrics_into_the_store_registry() {
        // P carries a non-indexed attribute so the hash join goes through
        // the transient build-cache path (unique/lookup-indexed right
        // sides bypass the cache).
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new(
                "P",
                vec![
                    Attribute::new("P.K", Domain::Int),
                    Attribute::new("P.V", Domain::Int),
                ],
                &["P.K"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "C",
                vec![
                    Attribute::new("C.K", Domain::Int),
                    Attribute::new("C.FK", Domain::Int),
                ],
                &["C.K"],
            )
            .unwrap(),
        )
        .unwrap();
        let st = Store::new(Database::new(rs, DbmsProfile::ideal()).unwrap());
        st.configure(st.config().hash_join_threshold(0));
        let s = st.session();
        s.insert("P", tup(&[1, 1])).unwrap();
        s.insert("C", tup(&[10, 1])).unwrap();
        let snap = s.pin().unwrap();
        // The transient hash build charges the cache-miss/insert counters
        // to the session's private shard.
        let plan =
            QueryPlan::scan("C").join(crate::query::JoinStep::inner("P", &["C.FK"], &["P.V"]));
        let (rows, stats) = snap.execute(&plan).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.hash_builds, 1);
        let before = st.metrics_registry().snapshot();
        drop(snap);
        drop(s);
        let after = st.metrics_registry().snapshot().diff(&before);
        assert!(
            after
                .counters
                .get("engine.query.build_cache.misses")
                .copied()
                .unwrap_or(0)
                > 0,
            "session read counters must fold into the store registry on drop"
        );
    }

    #[test]
    fn transactions_and_migrations_serialize_through_the_store() {
        let st = store();
        let s = st.session();
        s.transaction(|tx| {
            tx.insert("P", tup(&[1]))?;
            tx.insert("C", tup(&[10, 1]))?;
            Ok(())
        })
        .unwrap();
        let seq = st.commit_seq();
        let snap = s.pin().unwrap();
        assert_eq!(snap.len("C"), 1);
        // A failing transaction rolls back and does not commit.
        let r: std::result::Result<(), DmlError> = s.transaction(|tx| {
            tx.insert("P", tup(&[2]))?;
            Err(DmlError::ConstraintViolation("forced".to_owned()))
        });
        assert!(r.is_err());
        assert_eq!(st.commit_seq(), seq);
        assert_eq!(s.pin().unwrap().len("P"), 1);
    }

    #[test]
    fn try_into_database_returns_the_master_when_unshared() {
        let st = store();
        let s = st.session();
        s.insert("P", tup(&[7])).unwrap();
        drop(s);
        let db = st.try_into_database().expect("last handle");
        assert_eq!(db.len("P"), 1);
    }
}
