//! A constraint-enforcing in-memory database.
//!
//! [`Database`] hosts one relational schema under a [`DbmsProfile`] and
//! enforces every dependency and constraint on DML, through the tier the
//! profile provides:
//!
//! * **declarative** checks — primary keys, nulls-not-allowed, key-based
//!   inclusion dependencies (foreign keys);
//! * **procedural** checks — the trigger/rule tier: general null
//!   constraints, non key-based inclusion dependencies.
//!
//! Every check is metered through a per-instance `relmerge-obs` registry
//! shard: counts per constraint class (`null`, `key`, `ind`, `restrict`)
//! split by [`Mechanism`], latency histograms per tier, and DML outcome
//! counters. [`MaintenanceStats`] is a cheap snapshot view over those
//! counters, letting the benches quantify §5.1's point that merged schemas
//! shift maintenance work into the (more expensive) procedural tier on some
//! systems. Each DML statement also opens an `engine.dml.*` trace span
//! carrying the relation and outcome.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::{Add, AddAssign};
use std::sync::Arc;
use std::time::Instant;

use relmerge_obs::{self as obs, Counter, Histogram, Registry};
use relmerge_relational::{
    Attribute, DatabaseState, Error, NullConstraint, Relation, RelationalSchema, Result, Tuple,
};

use crate::capability::{DbmsProfile, Mechanism};
use crate::fault::{
    site, FaultPlan, IntegrityKind, IntegrityReport, IntegrityViolation, QueryBudget,
};

/// Why a DML statement was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmlError {
    /// A dependency or constraint would be violated.
    ConstraintViolation(String),
    /// Structural problem (unknown relation, arity mismatch, …).
    Schema(Error),
    /// A statement inside a batch failed; `index` is its zero-based
    /// position in the slice passed to
    /// [`Database::apply_batch`](crate::Database::apply_batch). Deferred
    /// violations detected at commit are attributed to the statement that
    /// introduced the offending row.
    AtStatement {
        /// Zero-based position of the failing statement in the batch.
        index: usize,
        /// The underlying failure.
        source: Box<DmlError>,
    },
}

impl DmlError {
    /// Wraps `error` with the batch position of the statement that caused
    /// it (idempotent: an already-attributed error keeps its index).
    #[must_use]
    pub fn at_statement(index: usize, error: DmlError) -> DmlError {
        match error {
            already @ DmlError::AtStatement { .. } => already,
            other => DmlError::AtStatement {
                index,
                source: Box::new(other),
            },
        }
    }

    /// The batch position of the failing statement, when known.
    #[must_use]
    pub fn statement_index(&self) -> Option<usize> {
        match self {
            DmlError::AtStatement { index, .. } => Some(*index),
            _ => None,
        }
    }

    /// The innermost error, unwrapping any [`DmlError::AtStatement`]
    /// attribution layers — what callers match on to classify a failure
    /// (e.g. injected fault vs. caught panic vs. real violation).
    #[must_use]
    pub fn root_cause(&self) -> &DmlError {
        match self {
            DmlError::AtStatement { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for DmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmlError::ConstraintViolation(s) => write!(f, "constraint violation: {s}"),
            DmlError::Schema(e) => write!(f, "{e}"),
            DmlError::AtStatement { index, source } => {
                write!(f, "statement #{index}: {source}")
            }
        }
    }
}

impl std::error::Error for DmlError {}

impl From<Error> for DmlError {
    fn from(e: Error) -> Self {
        match e {
            Error::ConstraintViolation(s) => DmlError::ConstraintViolation(s),
            other => DmlError::Schema(other),
        }
    }
}

/// The reverse direction of the `?`-friendly pair: a [`DmlError`] folds
/// into the workspace-wide [`Error`], so engine call sites can live inside
/// functions returning the substrate [`Result`]
/// without a second error hierarchy.
impl From<DmlError> for Error {
    fn from(e: DmlError) -> Self {
        match e {
            DmlError::ConstraintViolation(s) => Error::ConstraintViolation(s),
            DmlError::Schema(inner) => inner,
            DmlError::AtStatement { index, source } => match Error::from(*source) {
                Error::ConstraintViolation(s) => {
                    Error::ConstraintViolation(format!("statement #{index}: {s}"))
                }
                other => other,
            },
        }
    }
}

/// Counters for constraint-maintenance work, split by mechanism tier.
///
/// This is a point-in-time *view* over the database's metrics shard
/// (see [`Database::stats`]); the live counters are registry-backed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Successful inserts.
    pub inserts: u64,
    /// Successful deletes.
    pub deletes: u64,
    /// Successful updates (each also counts its physical delete + insert).
    pub updates: u64,
    /// Statements rejected by a constraint.
    pub rejected: u64,
    /// Declarative-tier checks performed (PK, NNA, FK).
    pub declarative_checks: u64,
    /// Procedural-tier (trigger/rule) checks performed.
    pub procedural_checks: u64,
    /// Checks that ran as deferred group validations at batch commit
    /// (also counted in their tier's total).
    pub deferred_checks: u64,
    /// Hash-index probes performed by checks.
    pub index_probes: u64,
}

impl MaintenanceStats {
    /// Total checks across both tiers.
    #[must_use]
    pub fn total_checks(&self) -> u64 {
        self.declarative_checks + self.procedural_checks
    }

    /// Folds `other` into `self` field-wise.
    pub fn merge(&mut self, other: &MaintenanceStats) {
        *self += *other;
    }
}

impl AddAssign for MaintenanceStats {
    fn add_assign(&mut self, rhs: MaintenanceStats) {
        self.inserts += rhs.inserts;
        self.deletes += rhs.deletes;
        self.updates += rhs.updates;
        self.rejected += rhs.rejected;
        self.declarative_checks += rhs.declarative_checks;
        self.procedural_checks += rhs.procedural_checks;
        self.deferred_checks += rhs.deferred_checks;
        self.index_probes += rhs.index_probes;
    }
}

impl Add for MaintenanceStats {
    type Output = MaintenanceStats;

    fn add(mut self, rhs: MaintenanceStats) -> MaintenanceStats {
        self += rhs;
        self
    }
}

/// The constraint classes the engine meters, indexing per-class counters.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CheckClass {
    /// Null constraints (NNA/NS/NE/TE) on insert.
    Null = 0,
    /// Candidate-key uniqueness on insert.
    Key = 1,
    /// Outgoing inclusion dependencies (FK existence) on insert.
    Ind = 2,
    /// Incoming inclusion dependencies (RESTRICT) on delete.
    Restrict = 3,
}

const CHECK_CLASSES: usize = 4;
const CLASS_NAMES: [&str; CHECK_CLASSES] = ["null", "key", "ind", "restrict"];

/// Cached handles into one database instance's metrics shard.
pub(crate) struct DbMetrics {
    pub(crate) registry: Arc<Registry>,
    pub(crate) inserts: Arc<Counter>,
    pub(crate) deletes: Arc<Counter>,
    pub(crate) updates: Arc<Counter>,
    pub(crate) rejected: Arc<Counter>,
    pub(crate) declarative: Arc<Counter>,
    pub(crate) procedural: Arc<Counter>,
    pub(crate) deferred: Arc<Counter>,
    pub(crate) index_probes: Arc<Counter>,
    pub(crate) batch_commits: Arc<Counter>,
    pub(crate) batch_rollbacks: Arc<Counter>,
    pub(crate) injected_aborts: Arc<Counter>,
    pub(crate) panic_aborts: Arc<Counter>,
    pub(crate) budget_aborts: Arc<Counter>,
    pub(crate) build_cache_hits: Arc<Counter>,
    pub(crate) build_cache_misses: Arc<Counter>,
    pub(crate) build_cache_evictions: Arc<Counter>,
    pub(crate) parallel_builds: Arc<Counter>,
    pub(crate) probe_saved_allocs: Arc<Counter>,
    /// Predicate-pushdown counters: conjuncts placed below the residual
    /// filter position, rows pruned by those placements (root prefilter,
    /// probe filters, filtered hash builds), and queries where a failed
    /// optimize/pushdown fell back to the legacy root-filter path.
    pub(crate) pushed_conjuncts: Arc<Counter>,
    pub(crate) pushdown_pruned_rows: Arc<Counter>,
    pub(crate) pushdown_fallbacks: Arc<Counter>,
    /// Build-cache event counters under the `engine.build_cache.*`
    /// namespace: hits and misses on `get`, inserts, and the entries /
    /// bytes evicted by inserts and capacity changes.
    pub(crate) cache_hit: Arc<Counter>,
    pub(crate) cache_miss: Arc<Counter>,
    pub(crate) cache_insert: Arc<Counter>,
    pub(crate) cache_evict: Arc<Counter>,
    pub(crate) cache_evicted_bytes: Arc<obs::Gauge>,
    class_declarative: [Arc<Counter>; CHECK_CLASSES],
    class_procedural: [Arc<Counter>; CHECK_CLASSES],
    declarative_ns: Arc<Histogram>,
    procedural_ns: Arc<Histogram>,
    pub(crate) insert_ns: Arc<Histogram>,
    pub(crate) delete_ns: Arc<Histogram>,
    pub(crate) update_ns: Arc<Histogram>,
    pub(crate) batch_size: Arc<Histogram>,
    pub(crate) batch_ns: Arc<Histogram>,
    /// Undo-log footprint per batch (entries and approximate bytes) —
    /// the batch path's intermediate-state accounting.
    pub(crate) undo_entries: Arc<Histogram>,
    pub(crate) undo_bytes: Arc<Histogram>,
    /// Where this shard folds on drop: a session shard folds into its
    /// store's registry; every other shard folds into the process-global
    /// registry (`None`). Exactly-once because the fold runs in
    /// [`Drop::drop`] of the `DbMetrics` itself, which fires when the
    /// *last* `Arc<DbMetrics>` handle (database, session, or pinned
    /// snapshot) goes away.
    flush_into: Option<Arc<Registry>>,
}

impl Drop for DbMetrics {
    /// Flushes this shard so its counts survive the weak shard reference:
    /// into the owning store's registry for session shards (no lost or
    /// double-counted constraint/latency counters when sessions come and
    /// go), into the process-global registry otherwise. Note that a
    /// [`Database::fork`] copies the shard *with* its accumulated values,
    /// so both copies flush them — consistent with how
    /// [`obs::snapshot_all`] already sums live forked shards.
    fn drop(&mut self) {
        match &self.flush_into {
            Some(target) => obs::flush_shard_into(&self.registry, target),
            None => obs::flush_shard(&self.registry),
        }
    }
}

impl DbMetrics {
    fn new() -> DbMetrics {
        DbMetrics::with_flush_target(None)
    }

    /// A fresh shard that folds into `target` instead of the global
    /// registry when dropped — the per-session shard constructor
    /// (see [`crate::session::Session`]).
    pub(crate) fn session_shard(target: Arc<Registry>) -> DbMetrics {
        DbMetrics::with_flush_target(Some(target))
    }

    fn with_flush_target(flush_into: Option<Arc<Registry>>) -> DbMetrics {
        let registry = Arc::new(Registry::new());
        obs::register_shard(&registry);
        let per_class = |tier: &str| {
            std::array::from_fn(|i| {
                registry.counter(&format!("engine.check.{}.{tier}", CLASS_NAMES[i]))
            })
        };
        DbMetrics {
            inserts: registry.counter("engine.dml.inserts"),
            deletes: registry.counter("engine.dml.deletes"),
            updates: registry.counter("engine.dml.updates"),
            rejected: registry.counter("engine.dml.rejected"),
            declarative: registry.counter("engine.check.declarative"),
            procedural: registry.counter("engine.check.procedural"),
            deferred: registry.counter("engine.check.deferred"),
            index_probes: registry.counter("engine.check.index_probes"),
            batch_commits: registry.counter("engine.batch.commits"),
            batch_rollbacks: registry.counter("engine.batch.rollbacks"),
            injected_aborts: registry.counter("engine.fault.aborts.injected"),
            panic_aborts: registry.counter("engine.fault.aborts.panic"),
            budget_aborts: registry.counter("engine.query.aborts.budget"),
            build_cache_hits: registry.counter("engine.query.build_cache.hits"),
            build_cache_misses: registry.counter("engine.query.build_cache.misses"),
            build_cache_evictions: registry.counter("engine.query.build_cache.evictions"),
            parallel_builds: registry.counter("engine.query.build.parallel"),
            probe_saved_allocs: registry.counter("engine.query.probe_key.saved_allocs"),
            pushed_conjuncts: registry.counter("engine.query.pushed_conjuncts"),
            pushdown_pruned_rows: registry.counter("engine.query.pushdown_pruned_rows"),
            pushdown_fallbacks: registry.counter("engine.query.pushdown.fallbacks"),
            cache_hit: registry.counter("engine.build_cache.hit"),
            cache_miss: registry.counter("engine.build_cache.miss"),
            cache_insert: registry.counter("engine.build_cache.insert"),
            cache_evict: registry.counter("engine.build_cache.evict"),
            cache_evicted_bytes: registry.gauge("engine.build_cache.evicted_bytes"),
            class_declarative: per_class("declarative"),
            class_procedural: per_class("procedural"),
            declarative_ns: registry.histogram("engine.check.declarative.ns"),
            procedural_ns: registry.histogram("engine.check.procedural.ns"),
            insert_ns: registry.histogram("engine.dml.insert.ns"),
            delete_ns: registry.histogram("engine.dml.delete.ns"),
            update_ns: registry.histogram("engine.dml.update.ns"),
            batch_size: registry.histogram("engine.batch.size"),
            batch_ns: registry.histogram("engine.batch.ns"),
            undo_entries: registry.histogram("engine.batch.undo.entries"),
            undo_bytes: registry.histogram("engine.batch.undo.bytes"),
            registry,
            flush_into,
        }
    }

    /// A fresh shard carrying over the counter values (histograms start
    /// empty — latency samples describe the instance that measured them).
    fn fork(&self) -> DbMetrics {
        let out = DbMetrics::new();
        out.inserts.set(self.inserts.get());
        out.deletes.set(self.deletes.get());
        out.updates.set(self.updates.get());
        out.rejected.set(self.rejected.get());
        out.declarative.set(self.declarative.get());
        out.procedural.set(self.procedural.get());
        out.deferred.set(self.deferred.get());
        out.index_probes.set(self.index_probes.get());
        out.batch_commits.set(self.batch_commits.get());
        out.batch_rollbacks.set(self.batch_rollbacks.get());
        out.injected_aborts.set(self.injected_aborts.get());
        out.panic_aborts.set(self.panic_aborts.get());
        out.budget_aborts.set(self.budget_aborts.get());
        out.build_cache_hits.set(self.build_cache_hits.get());
        out.build_cache_misses.set(self.build_cache_misses.get());
        out.build_cache_evictions
            .set(self.build_cache_evictions.get());
        out.parallel_builds.set(self.parallel_builds.get());
        out.probe_saved_allocs.set(self.probe_saved_allocs.get());
        out.pushed_conjuncts.set(self.pushed_conjuncts.get());
        out.pushdown_pruned_rows
            .set(self.pushdown_pruned_rows.get());
        out.pushdown_fallbacks.set(self.pushdown_fallbacks.get());
        out.cache_hit.set(self.cache_hit.get());
        out.cache_miss.set(self.cache_miss.get());
        out.cache_insert.set(self.cache_insert.get());
        out.cache_evict.set(self.cache_evict.get());
        out.cache_evicted_bytes.set(self.cache_evicted_bytes.get());
        for i in 0..CHECK_CLASSES {
            out.class_declarative[i].set(self.class_declarative[i].get());
            out.class_procedural[i].set(self.class_procedural[i].get());
        }
        out
    }

    /// Records one finished check of `class` under `mechanism`, started at
    /// `start`.
    #[inline]
    pub(crate) fn record_check(&self, class: CheckClass, mechanism: Mechanism, start: Instant) {
        let ns = obs::elapsed_ns(start);
        match mechanism {
            Mechanism::Declarative => {
                self.declarative.inc();
                self.class_declarative[class as usize].inc();
                self.declarative_ns.record(ns);
            }
            Mechanism::Procedural => {
                self.procedural.inc();
                self.class_procedural[class as usize].inc();
                self.procedural_ns.record(ns);
            }
            Mechanism::Unsupported => {}
        }
    }
}

/// A secondary lookup index: attribute positions plus a map from each
/// total subtuple to the live row slots carrying it.
type LookupIndex = (Vec<usize>, HashMap<Tuple, Vec<usize>>);

/// One stored relation with its indexes.
#[derive(Clone)]
pub(crate) struct Table {
    pub(crate) header: Vec<Attribute>,
    pub(crate) rows: Vec<Option<Tuple>>, // tombstoned on delete
    pub(crate) live: usize,
    /// Unique indexes, one per candidate key: positions + map to row slot.
    pub(crate) unique: Vec<(Vec<usize>, HashMap<Tuple, usize>)>,
    /// Secondary lookup indexes keyed by attribute-name list (for foreign
    /// keys, IND targets, and join probes). Values are the live row slots
    /// of each **total** subtuple.
    pub(crate) lookups: BTreeMap<Vec<String>, LookupIndex>,
    /// Monotone modification counter: bumped once per row mutation (every
    /// mutation path funnels through `index_insert`/`index_remove`). Keys
    /// the build-side cache — a version match proves a cached hash build
    /// still describes the stored rows. Never decremented, including on
    /// rollback: undo re-mutates rows, so the version moves forward and
    /// pre-rollback cache entries simply age out.
    pub(crate) version: u64,
}

impl Table {
    fn new(header: Vec<Attribute>) -> Self {
        Table {
            header,
            rows: Vec::new(),
            live: 0,
            unique: Vec::new(),
            lookups: BTreeMap::new(),
            version: 0,
        }
    }

    pub(crate) fn positions(&self, names: &[String]) -> Result<Vec<usize>> {
        names
            .iter()
            .map(|n| {
                self.header
                    .iter()
                    .position(|a| a.name() == n.as_str())
                    .ok_or_else(|| Error::UnknownAttribute {
                        attribute: n.clone(),
                        context: "table".to_owned(),
                    })
            })
            .collect()
    }

    fn add_unique(&mut self, names: &[String]) -> Result<()> {
        let pos = self.positions(names)?;
        if !self.unique.iter().any(|(p, _)| *p == pos) {
            self.unique.push((pos, HashMap::new()));
        }
        Ok(())
    }

    fn add_lookup(&mut self, names: &[String]) -> Result<()> {
        if !self.lookups.contains_key(names) {
            let pos = self.positions(names)?;
            self.lookups.insert(names.to_vec(), (pos, HashMap::new()));
        }
        Ok(())
    }

    fn index_insert(&mut self, t: &Tuple, slot: usize) {
        self.version += 1;
        for (pos, map) in &mut self.unique {
            map.insert(t.project(pos), slot);
        }
        for (pos, map) in self.lookups.values_mut() {
            if t.is_total_at(pos) {
                map.entry(t.project(pos)).or_default().push(slot);
            }
        }
    }

    fn index_remove(&mut self, t: &Tuple, slot: usize) {
        self.version += 1;
        for (pos, map) in &mut self.unique {
            map.remove(&t.project(pos));
        }
        for (pos, map) in self.lookups.values_mut() {
            if t.is_total_at(pos) {
                let key = t.project(pos);
                if let Some(slots) = map.get_mut(&key) {
                    slots.retain(|&s| s != slot);
                    if slots.is_empty() {
                        map.remove(&key);
                    }
                }
            }
        }
    }

    fn to_relation(&self) -> Result<Relation> {
        Relation::with_rows(self.header.clone(), self.rows.iter().flatten().cloned())
    }
}

/// A compiled null-constraint check: single-tuple evaluation plus its tier.
#[derive(Clone)]
pub(crate) struct CompiledNull {
    pub(crate) constraint: NullConstraint,
    pub(crate) mechanism: Mechanism,
}

/// A compiled inclusion-dependency check.
#[derive(Clone)]
pub(crate) struct CompiledInd {
    pub(crate) lhs_rel: String,
    pub(crate) lhs_attrs: Vec<String>,
    pub(crate) rhs_rel: String,
    pub(crate) rhs_attrs: Vec<String>,
    pub(crate) mechanism: Mechanism,
}

/// A constraint-enforcing in-memory database hosting one schema under one
/// DBMS capability profile.
pub struct Database {
    /// The hosted logical schema. Behind an `Arc` so pinned snapshot
    /// handles share it; it is only ever *replaced* (catalog swap), never
    /// mutated in place.
    schema: Arc<RelationalSchema>,
    profile: DbmsProfile,
    /// Stored relations, individually `Arc`-wrapped for copy-on-write
    /// snapshot sharing: a pinned reader handle clones the map (pointer
    /// clones), and the writer's mutation paths go through
    /// [`Arc::make_mut`] — in place while unshared, a one-time table copy
    /// after a snapshot pinned it.
    pub(crate) tables: BTreeMap<String, Arc<Table>>,
    pub(crate) nulls: Arc<BTreeMap<String, Vec<CompiledNull>>>,
    pub(crate) outgoing: Arc<BTreeMap<String, Vec<CompiledInd>>>,
    pub(crate) incoming: Arc<BTreeMap<String, Vec<CompiledInd>>>,
    pub(crate) metrics: Arc<DbMetrics>,
    /// Worker threads the query executor may use (1 = serial execution).
    parallelism: usize,
    /// Left-input cardinality at which a join switches to the hash
    /// strategy; `usize::MAX` disables hash joins entirely.
    hash_join_threshold: usize,
    /// Rows per executor morsel (always ≥ 1).
    morsel_rows: usize,
    /// Whether the predicate optimizer plans cross-operator pushdown for
    /// query filters (`false` pins the legacy root-filter path).
    predicate_pushdown: bool,
    /// Build-side live-row count at which a transient hash build fans out
    /// over the worker pool; `usize::MAX` pins builds to the serial path
    /// (mirroring the INL sentinel of `hash_join_threshold`).
    build_parallel_threshold: usize,
    /// The versioned build-side cache. Interior-mutable because queries
    /// run through `&self`; the lock is only ever held for map operations,
    /// never across a build or a fault site. Behind an `Arc` so a store's
    /// sessions and pinned snapshots share ONE cache (and its byte cap):
    /// the key carries the relation version, so a hit from any session —
    /// or from an old pinned snapshot — is proof of freshness.
    /// [`Database::fork`] deliberately does NOT share it (a fork's
    /// versions diverge, so shared keys could collide).
    build_cache: Arc<std::sync::Mutex<crate::build::BuildCache>>,
    /// The workload profiler every successful query execution folds into
    /// (shape fingerprint → aggregated cost). Shared by clones — the
    /// profile describes the workload, not one instance's storage.
    profiler: Arc<obs::Profiler>,
    /// Resource limits for query execution (default unlimited).
    budget: QueryBudget,
    /// Installed fault plan, if any (`None` in production configurations).
    /// Behind an `Arc` so sites can fire from `&self` contexts — validation
    /// and morsel worker threads included — and so callers keep a handle to
    /// inspect hit/fire counts after the run.
    fault: Option<Arc<FaultPlan>>,
    /// The write-ahead log, when this database is durable
    /// (`EngineConfig::durability` set at construction or recovery).
    /// `None` means purely in-memory — the pre-durability behavior.
    wal: Option<crate::wal::Wal>,
}

/// **Deprecated semantics** — `clone` is ambiguous for a database: do you
/// want an independent in-memory copy, or a second handle on the same
/// store? `Database::clone` means the former and simply delegates to
/// [`Database::fork`]; prefer calling `fork()` so the intent is explicit.
/// For the latter — many clients sharing one database — build a
/// [`crate::session::Store`] and hand out [`crate::session::Session`]s.
impl Clone for Database {
    fn clone(&self) -> Self {
        self.fork()
    }
}

/// Default left-cardinality at which the executor switches a join step to
/// the hash strategy (see [`crate::planner::choose_join_strategy`]).
pub const DEFAULT_HASH_JOIN_THRESHOLD: usize = 64;

/// Default number of root rows per executor morsel.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Default build-side live-row count at which a transient hash build fans
/// out over the worker pool (see
/// [`crate::planner::choose_build_parallelism`]).
pub const DEFAULT_BUILD_PARALLEL_THRESHOLD: usize = 4096;

/// Default byte capacity of the versioned build-side cache.
pub const DEFAULT_BUILD_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// The compiled physical half of a [`Database`]: per-relation tables with
/// their indexes, plus the null- and inclusion-dependency constraint maps
/// keyed by relation. Built by [`compile_catalog`] for both
/// [`Database::new`] and the online-migration catalog swap.
pub(crate) struct Catalog {
    pub(crate) tables: BTreeMap<String, Arc<Table>>,
    pub(crate) nulls: BTreeMap<String, Vec<CompiledNull>>,
    pub(crate) outgoing: BTreeMap<String, Vec<CompiledInd>>,
    pub(crate) incoming: BTreeMap<String, Vec<CompiledInd>>,
}

/// Validates `schema` against `profile` and compiles its physical catalog:
/// one table per scheme (unique index per candidate key, lookup indexes on
/// both sides of every inclusion dependency) and the compiled constraint
/// maps, each constraint annotated with the maintenance mechanism the
/// profile assigns it (paper §5.1).
pub(crate) fn compile_catalog(
    schema: &RelationalSchema,
    profile: &DbmsProfile,
    procedure: &'static str,
) -> Result<Catalog> {
    schema.validate()?;
    let problems = profile.hosting_report(schema);
    if !problems.is_empty() {
        return Err(Error::PreconditionViolated {
            procedure,
            detail: problems.join("; "),
        });
    }
    let mut tables = BTreeMap::new();
    for s in schema.schemes() {
        let mut table = Table::new(s.attrs().to_vec());
        for key in s.candidate_keys() {
            let names: Vec<String> = key.iter().map(|k| (*k).to_owned()).collect();
            table.add_unique(&names)?;
        }
        tables.insert(s.name().to_owned(), table);
    }
    // Lookup indexes for both sides of every inclusion dependency.
    for ind in schema.inds() {
        tables
            .get_mut(&ind.rhs_rel)
            .expect("validated")
            .add_lookup(&ind.rhs_attrs)?;
        tables
            .get_mut(&ind.lhs_rel)
            .expect("validated")
            .add_lookup(&ind.lhs_attrs)?;
    }
    let tables: BTreeMap<String, Arc<Table>> =
        tables.into_iter().map(|(k, v)| (k, Arc::new(v))).collect();
    let mut nulls: BTreeMap<String, Vec<CompiledNull>> = BTreeMap::new();
    for c in schema.null_constraints() {
        nulls
            .entry(c.rel().to_owned())
            .or_default()
            .push(CompiledNull {
                mechanism: profile.null_constraint_mechanism(c),
                constraint: c.clone(),
            });
    }
    let mut outgoing: BTreeMap<String, Vec<CompiledInd>> = BTreeMap::new();
    let mut incoming: BTreeMap<String, Vec<CompiledInd>> = BTreeMap::new();
    for ind in schema.inds() {
        let key_based = schema
            .scheme(&ind.rhs_rel)
            .is_some_and(|rhs| ind.is_key_based(rhs));
        let compiled = CompiledInd {
            lhs_rel: ind.lhs_rel.clone(),
            lhs_attrs: ind.lhs_attrs.clone(),
            rhs_rel: ind.rhs_rel.clone(),
            rhs_attrs: ind.rhs_attrs.clone(),
            mechanism: if key_based {
                profile.referential_integrity
            } else {
                profile.non_key_inds
            },
        };
        outgoing
            .entry(ind.lhs_rel.clone())
            .or_default()
            .push(compiled.clone());
        incoming
            .entry(ind.rhs_rel.clone())
            .or_default()
            .push(compiled);
    }
    Ok(Catalog {
        tables,
        nulls,
        outgoing,
        incoming,
    })
}

/// One `EngineConfig` consolidates every `Database` tuning knob: executor
/// parallelism, join-strategy and parallel-build thresholds, morsel size,
/// build-cache capacity, and the query budget. Build one with the
/// fluent setters and hand it to [`Database::new_with_config`] or
/// [`Database::configure`]; read the live values back with
/// [`Database::config`], so a sweep can tweak a single knob:
///
/// ```ignore
/// db.configure(db.config().parallelism(4));
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    parallelism: usize,
    hash_join_threshold: usize,
    morsel_rows: usize,
    predicate_pushdown: bool,
    build_parallel_threshold: usize,
    build_cache_capacity: u64,
    query_budget: QueryBudget,
    /// Durability knobs (`None` = purely in-memory). Unlike the other
    /// knobs this one only takes effect at construction
    /// ([`Database::new_with_config`]) or recovery ([`Database::recover`]);
    /// [`Database::configure`] ignores it — a log cannot be attached or
    /// detached mid-flight.
    durability: Option<crate::wal::DurabilityConfig>,
}

impl Default for EngineConfig {
    /// The defaults `Database::new` ships with: available-parallelism
    /// workers, the documented threshold/morsel constants, a 64 MiB build
    /// cache, and an unlimited query budget.
    fn default() -> Self {
        EngineConfig {
            parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            hash_join_threshold: DEFAULT_HASH_JOIN_THRESHOLD,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            predicate_pushdown: true,
            build_parallel_threshold: DEFAULT_BUILD_PARALLEL_THRESHOLD,
            build_cache_capacity: DEFAULT_BUILD_CACHE_BYTES,
            query_budget: QueryBudget::unlimited(),
            durability: None,
        }
    }
}

impl EngineConfig {
    /// The default configuration (same as [`Default::default`]).
    #[must_use]
    pub fn new() -> Self {
        EngineConfig::default()
    }

    /// Sets the executor's worker-thread budget (clamped to ≥ 1 when
    /// applied). `1` means serial execution, byte-identical to the
    /// parallel result by construction.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Sets the left-input cardinality at which a join step switches from
    /// index-nested-loop to the hash strategy. `usize::MAX` disables hash
    /// joins entirely; `0` forces them wherever the left input is
    /// non-empty.
    #[must_use]
    pub fn hash_join_threshold(mut self, rows: usize) -> Self {
        self.hash_join_threshold = rows;
        self
    }

    /// Sets the root rows per executor morsel (clamped to ≥ 1 when
    /// applied).
    #[must_use]
    pub fn morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Enables or disables optimizer-driven predicate pushdown (default
    /// on). When off, a query's filter runs exactly where it is written:
    /// compiled once against the joined header and evaluated at the
    /// pipeline root (full-scan root conjunct prefiltering excepted, which
    /// predates the optimizer). Results are byte-identical either way;
    /// only the scan/probe/build work — and therefore `QueryStats` — can
    /// shrink with pushdown on.
    #[must_use]
    pub fn predicate_pushdown(mut self, on: bool) -> Self {
        self.predicate_pushdown = on;
        self
    }

    /// Sets the build-side live-row count at which a transient hash build
    /// fans out over the worker pool. `usize::MAX` pins every build to
    /// the serial path; `0` fans out any non-trivial build.
    #[must_use]
    pub fn build_parallel_threshold(mut self, rows: usize) -> Self {
        self.build_parallel_threshold = rows;
        self
    }

    /// Sets the build-cache byte capacity (`0` disables caching).
    #[must_use]
    pub fn build_cache_capacity(mut self, bytes: u64) -> Self {
        self.build_cache_capacity = bytes;
        self
    }

    /// Sets the per-query resource limits.
    #[must_use]
    pub fn query_budget(mut self, budget: QueryBudget) -> Self {
        self.query_budget = budget;
        self
    }

    /// The configured worker-thread budget.
    #[must_use]
    pub fn get_parallelism(&self) -> usize {
        self.parallelism
    }

    /// The configured hash-join switchover threshold.
    #[must_use]
    pub fn get_hash_join_threshold(&self) -> usize {
        self.hash_join_threshold
    }

    /// The configured morsel size.
    #[must_use]
    pub fn get_morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Whether optimizer-driven predicate pushdown is enabled.
    #[must_use]
    pub fn get_predicate_pushdown(&self) -> bool {
        self.predicate_pushdown
    }

    /// The configured parallel-build switchover threshold.
    #[must_use]
    pub fn get_build_parallel_threshold(&self) -> usize {
        self.build_parallel_threshold
    }

    /// The configured build-cache byte capacity.
    #[must_use]
    pub fn get_build_cache_capacity(&self) -> u64 {
        self.build_cache_capacity
    }

    /// The configured query budget.
    #[must_use]
    pub fn get_query_budget(&self) -> QueryBudget {
        self.query_budget
    }

    /// Sets (or clears) the durability knobs: data directory, snapshot
    /// cadence, fsync policy. Only honored by
    /// [`Database::new_with_config`] (fresh data dir) and
    /// [`Database::recover`] (existing one); [`Database::configure`]
    /// ignores it.
    #[must_use]
    pub fn durability(mut self, durability: Option<crate::wal::DurabilityConfig>) -> Self {
        self.durability = durability;
        self
    }

    /// The configured durability knobs, if any.
    #[must_use]
    pub fn get_durability(&self) -> Option<&crate::wal::DurabilityConfig> {
        self.durability.as_ref()
    }
}

impl Database {
    /// Creates an empty database for `schema` under `profile`. Fails when
    /// the profile cannot maintain some constraint class the schema needs
    /// (paper §5.1).
    pub fn new(schema: RelationalSchema, profile: DbmsProfile) -> Result<Self> {
        Self::new_with_config(schema, profile, EngineConfig::default())
    }

    /// Like [`Database::new`], but with every tuning knob taken from
    /// `config` instead of the defaults.
    pub fn new_with_config(
        schema: RelationalSchema,
        profile: DbmsProfile,
        config: EngineConfig,
    ) -> Result<Self> {
        let Catalog {
            tables,
            nulls,
            outgoing,
            incoming,
        } = compile_catalog(&schema, &profile, "Database::new")?;
        let mut db = Database {
            schema: Arc::new(schema),
            profile,
            tables,
            nulls: Arc::new(nulls),
            outgoing: Arc::new(outgoing),
            incoming: Arc::new(incoming),
            metrics: Arc::new(DbMetrics::new()),
            parallelism: config.parallelism.max(1),
            hash_join_threshold: config.hash_join_threshold,
            morsel_rows: config.morsel_rows.max(1),
            predicate_pushdown: config.predicate_pushdown,
            build_parallel_threshold: config.build_parallel_threshold,
            build_cache: Arc::new(std::sync::Mutex::new(crate::build::BuildCache::new(
                config.build_cache_capacity,
            ))),
            profiler: Arc::new(obs::Profiler::new()),
            budget: config.query_budget,
            fault: None,
            wal: None,
        };
        if let Some(durability) = config.durability {
            // Fresh data dir only: an already-initialized one holds state
            // this empty database would shadow — `Wal::initialize` rejects
            // it and points the caller at `Database::recover`.
            db.wal = Some(crate::wal::Wal::initialize(durability, &db)?);
        }
        Ok(db)
    }

    /// An independent in-memory copy: same schema, same rows, a forked
    /// metrics shard carrying the counter values, and its **own** build
    /// cache (a fork's relation versions diverge from the original's, so
    /// sharing the versioned cache could alias keys across the two
    /// histories). Storage is shared copy-on-write — the fork is O(number
    /// of relations) until one side mutates a table. The fork carries no
    /// WAL: two writers appending to one log would interleave
    /// un-replayably, so a fork's mutations are deliberately not durable.
    ///
    /// This is what `Database::clone` has always meant; `fork()` names it.
    /// To *share* one database across clients instead, build a
    /// [`crate::session::Store`].
    #[must_use]
    pub fn fork(&self) -> Database {
        Database {
            schema: Arc::clone(&self.schema),
            profile: self.profile.clone(),
            tables: self.tables.clone(),
            nulls: Arc::clone(&self.nulls),
            outgoing: Arc::clone(&self.outgoing),
            incoming: Arc::clone(&self.incoming),
            metrics: Arc::new(self.metrics.fork()),
            parallelism: self.parallelism,
            hash_join_threshold: self.hash_join_threshold,
            morsel_rows: self.morsel_rows,
            predicate_pushdown: self.predicate_pushdown,
            build_parallel_threshold: self.build_parallel_threshold,
            build_cache: Arc::new(std::sync::Mutex::new(self.build_cache_lock().clone())),
            profiler: Arc::clone(&self.profiler),
            budget: self.budget,
            fault: self.fault.clone(),
            wal: None,
        }
    }

    /// A read-only snapshot handle over this database's *current* state:
    /// shares every table `Arc` (so later writer mutations copy-on-write
    /// and never disturb it), the build cache, the profiler, and the fault
    /// plan, but charges its metrics to `metrics` — the per-session shard.
    /// Carries no WAL. The handle is a plain [`Database`] value, so the
    /// whole `&self` read surface (execute, snapshot, verify, versions)
    /// works against it unchanged.
    pub(crate) fn snapshot_handle(&self, metrics: Arc<DbMetrics>) -> Database {
        Database {
            schema: Arc::clone(&self.schema),
            profile: self.profile.clone(),
            tables: self.tables.clone(),
            nulls: Arc::clone(&self.nulls),
            outgoing: Arc::clone(&self.outgoing),
            incoming: Arc::clone(&self.incoming),
            metrics,
            parallelism: self.parallelism,
            hash_join_threshold: self.hash_join_threshold,
            morsel_rows: self.morsel_rows,
            predicate_pushdown: self.predicate_pushdown,
            build_parallel_threshold: self.build_parallel_threshold,
            build_cache: Arc::clone(&self.build_cache),
            profiler: Arc::clone(&self.profiler),
            budget: self.budget,
            fault: self.fault.clone(),
            wal: None,
        }
    }

    /// The metrics shard handle, for snapshot-handle construction.
    pub(crate) fn metrics_arc(&self) -> Arc<DbMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The current values of every tuning knob, as an [`EngineConfig`].
    /// Combined with the builder setters this makes single-knob tweaks
    /// one-liners: `db.configure(db.config().morsel_rows(64))`.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        EngineConfig {
            parallelism: self.parallelism,
            hash_join_threshold: self.hash_join_threshold,
            morsel_rows: self.morsel_rows,
            predicate_pushdown: self.predicate_pushdown,
            build_parallel_threshold: self.build_parallel_threshold,
            build_cache_capacity: self.build_cache_lock().capacity(),
            query_budget: self.budget,
            durability: self.wal.as_ref().map(|w| w.config().clone()),
        }
    }

    /// Applies every knob in `config` to the live database. Shrinking the
    /// build-cache capacity evicts least-recently-used entries down to the
    /// new cap (and counts them in the eviction metrics); results never
    /// depend on any of these knobs, and `QueryStats` depend only on the
    /// join-strategy knobs and the pushdown switch (which can only shrink
    /// the scan/probe/build counters), never on worker or morsel
    /// configuration.
    pub fn configure(&mut self, config: EngineConfig) {
        self.parallelism = config.parallelism.max(1);
        self.hash_join_threshold = config.hash_join_threshold;
        self.morsel_rows = config.morsel_rows.max(1);
        self.predicate_pushdown = config.predicate_pushdown;
        self.build_parallel_threshold = config.build_parallel_threshold;
        if config.build_cache_capacity != self.build_cache_lock().capacity() {
            let (evicted, evicted_bytes) = self
                .build_cache_lock()
                .set_capacity(config.build_cache_capacity);
            self.metrics.build_cache_evictions.add(evicted);
            self.metrics.cache_evict.add(evicted);
            self.metrics.cache_evicted_bytes.add(evicted_bytes as i64);
        }
        self.budget = config.query_budget;
    }

    /// Worker threads the query executor may use. Defaults to the
    /// machine's available parallelism; `1` means serial execution,
    /// byte-identical to the parallel result by construction.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Sets the executor's worker-thread budget (clamped to ≥ 1).
    #[deprecated(note = "use `configure(db.config().parallelism(..))` instead")]
    pub fn set_parallelism(&mut self, workers: usize) {
        self.configure(self.config().parallelism(workers));
    }

    /// Left-input cardinality at which a join step switches from
    /// index-nested-loop to the hash strategy. `usize::MAX` disables hash
    /// joins entirely (the pre-morsel executor's behavior); `0` forces
    /// them wherever the left input is non-empty.
    #[must_use]
    pub fn hash_join_threshold(&self) -> usize {
        self.hash_join_threshold
    }

    /// Sets the hash-join switchover threshold.
    #[deprecated(note = "use `configure(db.config().hash_join_threshold(..))` instead")]
    pub fn set_hash_join_threshold(&mut self, rows: usize) {
        self.configure(self.config().hash_join_threshold(rows));
    }

    /// Root rows per executor morsel.
    #[must_use]
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Sets the morsel size (clamped to ≥ 1). Smaller morsels exercise
    /// the reassembly path; the default suits large scans.
    #[deprecated(note = "use `configure(db.config().morsel_rows(..))` instead")]
    pub fn set_morsel_rows(&mut self, rows: usize) {
        self.configure(self.config().morsel_rows(rows));
    }

    /// Whether optimizer-driven predicate pushdown is enabled (default
    /// on). See [`EngineConfig::predicate_pushdown`].
    #[must_use]
    pub fn predicate_pushdown(&self) -> bool {
        self.predicate_pushdown
    }

    /// Build-side live-row count at which a transient hash build fans out
    /// over the worker pool. `usize::MAX` pins every build to the serial
    /// path (the same sentinel idiom as
    /// [`hash_join_threshold`](Self::hash_join_threshold)).
    #[must_use]
    pub fn build_parallel_threshold(&self) -> usize {
        self.build_parallel_threshold
    }

    /// Sets the parallel-build switchover threshold. No clamping:
    /// `usize::MAX` is the serial sentinel, `0` fans out any non-trivial
    /// build.
    #[deprecated(note = "use `configure(db.config().build_parallel_threshold(..))` instead")]
    pub fn set_build_parallel_threshold(&mut self, rows: usize) {
        self.configure(self.config().build_parallel_threshold(rows));
    }

    /// Byte capacity of the versioned build-side cache (`0` = caching
    /// disabled).
    #[must_use]
    pub fn build_cache_capacity(&self) -> u64 {
        self.build_cache_lock().capacity()
    }

    /// Sets the build-cache byte capacity, evicting least-recently-used
    /// entries down to it. `0` disables caching: every transient build is
    /// rebuilt cold (results and `QueryStats` are unaffected — only wall
    /// time changes).
    #[deprecated(note = "use `configure(db.config().build_cache_capacity(..))` instead")]
    pub fn set_build_cache_capacity(&mut self, bytes: u64) {
        self.configure(self.config().build_cache_capacity(bytes));
    }

    /// Drops every cached build (capacity is unchanged).
    pub fn clear_build_cache(&mut self) {
        self.build_cache_lock().clear();
    }

    /// Builds currently cached.
    #[must_use]
    pub fn build_cache_len(&self) -> usize {
        self.build_cache_lock().len()
    }

    /// Approximate bytes of cached builds.
    #[must_use]
    pub fn build_cache_bytes(&self) -> u64 {
        self.build_cache_lock().bytes()
    }

    /// The monotone modification version of `rel` (bumped once per row
    /// mutation, rollbacks included). Exposed so tests and benches can
    /// assert cache-invalidation behavior.
    pub fn relation_version(&self, rel: &str) -> Result<u64> {
        Ok(self
            .tables
            .get(rel)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?
            .version)
    }

    /// The build cache, locked. Poisoning is ignored deliberately: the
    /// lock is never held across user code or fault sites, so a poisoned
    /// cache is structurally sound and safe to keep using.
    pub(crate) fn build_cache_lock(&self) -> std::sync::MutexGuard<'_, crate::build::BuildCache> {
        self.build_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The workload profiler this database folds every successful query
    /// execution into: per-fingerprint operator totals, intermediate-byte
    /// accounting, and latency histograms. Clones share it (via `Arc`),
    /// so a workload spread over forks still aggregates into one profile;
    /// use [`obs::Profiler::snapshot`] / [`obs::Profiler::take`] and
    /// [`relmerge_obs::report`] to read it.
    #[must_use]
    pub fn profiler(&self) -> &obs::Profiler {
        &self.profiler
    }

    /// A point-in-time [`obs::ProfileSnapshot`] of the workload profiler
    /// — convenience for `self.profiler().snapshot()`.
    #[must_use]
    pub fn profile_snapshot(&self) -> obs::ProfileSnapshot {
        self.profiler.snapshot()
    }

    /// The resource limits queries execute under (default unlimited).
    #[must_use]
    pub fn query_budget(&self) -> QueryBudget {
        self.budget
    }

    /// Sets the query budget. Limits are checked cooperatively at morsel
    /// boundaries; a tripped limit surfaces as
    /// [`Error::BudgetExceeded`] with the partial progress in its detail.
    #[deprecated(note = "use `configure(db.config().query_budget(..))` instead")]
    pub fn set_query_budget(&mut self, budget: QueryBudget) {
        self.configure(self.config().query_budget(budget));
    }

    /// Installs `plan` as the active fault plan, replacing any previous
    /// one, and returns a handle for inspecting its hit/fire counts.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Arc<FaultPlan> {
        let plan = Arc::new(plan);
        self.fault = Some(Arc::clone(&plan));
        plan
    }

    /// Removes the active fault plan, if any.
    pub fn clear_fault_plan(&mut self) {
        self.fault = None;
    }

    /// The active fault plan, if one is installed.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// The write-ahead log, when this database is durable.
    pub(crate) fn wal(&self) -> Option<&crate::wal::Wal> {
        self.wal.as_ref()
    }

    /// Attaches (or detaches) the write-ahead log — recovery wires the
    /// reopened log in through here after replay has been verified.
    pub(crate) fn set_wal(&mut self, wal: Option<crate::wal::Wal>) {
        self.wal = wal;
    }

    /// Whether this database is durable (carries a write-ahead log).
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// One branch when no plan is installed; otherwise counts this arrival
    /// at `site` and fires the arm armed for it, if its trigger count is
    /// reached.
    #[inline]
    pub(crate) fn fault_check(&self, site: &'static str) -> Result<()> {
        match &self.fault {
            None => Ok(()),
            Some(plan) => plan.check(site),
        }
    }

    /// The hosted schema.
    #[must_use]
    pub fn schema(&self) -> &RelationalSchema {
        &self.schema
    }

    /// Swaps the live logical schema and physical catalog for `schema` /
    /// `catalog`, returning the previous pair — the online-migration
    /// catalog-rewrite primitive. The caller owns consistency: data must
    /// be (re)loaded into the new tables, and on failure the returned
    /// pair must be swapped back for byte-identical rollback.
    pub(crate) fn swap_catalog(
        &mut self,
        schema: RelationalSchema,
        catalog: Catalog,
    ) -> (RelationalSchema, Catalog) {
        // The live fields sit behind `Arc`s so pinned snapshot handles can
        // share them; the migration caller works with owned values, so
        // unwrap on the way out (cloning only if a snapshot still pins the
        // old catalog — exactly the copy-on-write contract).
        fn unshare<T: Clone>(a: Arc<T>) -> T {
            Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone())
        }
        let old_schema = std::mem::replace(&mut self.schema, Arc::new(schema));
        let old = Catalog {
            tables: std::mem::replace(&mut self.tables, catalog.tables),
            nulls: unshare(std::mem::replace(&mut self.nulls, Arc::new(catalog.nulls))),
            outgoing: unshare(std::mem::replace(
                &mut self.outgoing,
                Arc::new(catalog.outgoing),
            )),
            incoming: unshare(std::mem::replace(
                &mut self.incoming,
                Arc::new(catalog.incoming),
            )),
        };
        (unshare(old_schema), old)
    }

    /// Raises `rel`'s modification version to at least `floor`. The
    /// migration path carries pre-migration versions across a catalog
    /// swap so every relation name's version stays strictly monotonic
    /// over the database's lifetime — the invariant that makes a
    /// build-cache hit proof of freshness.
    pub(crate) fn raise_relation_version(&mut self, rel: &str, floor: u64) {
        if let Some(t) = self.tables.get_mut(rel) {
            let t = Arc::make_mut(t);
            t.version = t.version.max(floor);
        }
    }

    /// The DBMS profile in force.
    #[must_use]
    pub fn profile(&self) -> &DbmsProfile {
        &self.profile
    }

    /// A snapshot of the maintenance counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> MaintenanceStats {
        MaintenanceStats {
            inserts: self.metrics.inserts.get(),
            deletes: self.metrics.deletes.get(),
            updates: self.metrics.updates.get(),
            rejected: self.metrics.rejected.get(),
            declarative_checks: self.metrics.declarative.get(),
            procedural_checks: self.metrics.procedural.get(),
            deferred_checks: self.metrics.deferred.get(),
            index_probes: self.metrics.index_probes.get(),
        }
    }

    /// Resets the maintenance counters (and the instance's whole metrics
    /// shard, including per-class counters and latency histograms).
    pub fn reset_stats(&mut self) {
        self.metrics.registry.reset();
    }

    /// Returns the accumulated maintenance counters and resets them — the
    /// one-call replacement for the `reset_stats()`-then-`stats()` dance.
    pub fn take_stats(&mut self) -> MaintenanceStats {
        let out = self.stats();
        self.reset_stats();
        out
    }

    /// The metrics shard backing this instance's counters, for callers
    /// that want per-class counts or latency histograms directly.
    #[must_use]
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// Live row count of `rel`.
    #[must_use]
    pub fn len(&self, rel: &str) -> usize {
        self.tables.get(rel).map_or(0, |t| t.live)
    }

    /// Whether relation `rel` is empty (or absent).
    #[must_use]
    pub fn is_empty(&self, rel: &str) -> bool {
        self.len(rel) == 0
    }

    /// Validates arity and domains of `t` against the header of `rel`.
    pub(crate) fn validate_shape(&self, rel: &str, t: &Tuple) -> std::result::Result<(), DmlError> {
        let table = self
            .tables
            .get(rel)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?;
        if t.arity() != table.header.len() {
            return Err(DmlError::Schema(Error::TupleMismatch {
                detail: format!(
                    "arity {} vs header {} in `{rel}`",
                    t.arity(),
                    table.header.len()
                ),
            }));
        }
        for (v, a) in t.values().iter().zip(&table.header) {
            if !v.fits(a.domain()) {
                return Err(DmlError::Schema(Error::TupleMismatch {
                    detail: format!("value {v} does not fit `{}`", a.name()),
                }));
            }
        }
        Ok(())
    }

    /// Probes every unique index of `rel` for `t`, counting one key check
    /// per index. Returns `Ok(true)` when an identical tuple is already
    /// stored (idempotent no-op), `Ok(false)` when the slot is free, and a
    /// constraint violation for a conflicting duplicate. Key uniqueness is
    /// *never* deferred: the unique indexes must stay consistent while a
    /// batch applies, exactly like SQL's non-deferrable `PRIMARY KEY`.
    pub(crate) fn check_unique(&self, rel: &str, t: &Tuple) -> std::result::Result<bool, DmlError> {
        let table = &self.tables[rel];
        for (pos, map) in &table.unique {
            let t0 = Instant::now();
            self.metrics.index_probes.inc();
            let hit = map.get(&t.project(pos)).copied();
            self.metrics
                .record_check(CheckClass::Key, Mechanism::Declarative, t0);
            if let Some(slot) = hit {
                if table.rows[slot].as_ref() == Some(t) {
                    return Ok(true); // identical tuple: idempotent
                }
                self.metrics.rejected.inc();
                return Err(DmlError::ConstraintViolation(format!(
                    "duplicate key for `{rel}`"
                )));
            }
        }
        Ok(false)
    }

    /// The eagerly-checked single-tuple insert: every constraint is
    /// enforced before the row lands. Returns whether the tuple was new.
    pub(crate) fn insert_inner(
        &mut self,
        rel: &str,
        t: Tuple,
    ) -> std::result::Result<bool, DmlError> {
        self.validate_shape(rel, &t)?;
        // Null constraints: single-tuple checks.
        if let Some(checks) = self.nulls.get(rel).filter(|c| !c.is_empty()) {
            let singleton = singleton_relation(&self.tables[rel].header, &t);
            for c in checks {
                let t0 = Instant::now();
                let ok = c.constraint.satisfied_by(&singleton)?;
                self.metrics.record_check(CheckClass::Null, c.mechanism, t0);
                if !ok {
                    self.metrics.rejected.inc();
                    return Err(DmlError::ConstraintViolation(c.constraint.to_string()));
                }
            }
        }
        // Key uniqueness (declarative).
        if self.check_unique(rel, &t)? {
            return Ok(false);
        }
        // Outgoing inclusion dependencies (FK-style: a total LHS subtuple
        // must exist in the target).
        for c in self
            .outgoing
            .get(rel)
            .map(Vec::as_slice)
            .unwrap_or_default()
        {
            let t0 = Instant::now();
            let lhs_pos = self.tables[rel].positions(&c.lhs_attrs)?;
            if !t.is_total_at(&lhs_pos) {
                self.metrics.record_check(CheckClass::Ind, c.mechanism, t0);
                continue; // partial subtuples are exempt (total-projection semantics)
            }
            let key = t.project(&lhs_pos);
            self.metrics.index_probes.inc();
            // Self-referencing dependency satisfied by the tuple itself.
            if c.rhs_rel == rel {
                let rhs_pos = self.tables[rel].positions(&c.rhs_attrs)?;
                if t.project(&rhs_pos) == key {
                    self.metrics.record_check(CheckClass::Ind, c.mechanism, t0);
                    continue;
                }
            }
            let target = &self.tables[&c.rhs_rel];
            let (_, map) = target
                .lookups
                .get(&c.rhs_attrs)
                .expect("lookup indexes built for every IND");
            let found = map.contains_key(&key);
            self.metrics.record_check(CheckClass::Ind, c.mechanism, t0);
            if !found {
                self.metrics.rejected.inc();
                return Err(DmlError::ConstraintViolation(format!(
                    "`{rel}`[{}] = {key} has no match in `{}`[{}]",
                    c.lhs_attrs.join(","),
                    c.rhs_rel,
                    c.rhs_attrs.join(",")
                )));
            }
        }
        // Commit. The fault site fires *before* any index mutation so an
        // injected failure leaves no partial maintenance behind.
        self.fault_check(site::INDEX_MAINTENANCE)?;
        let table = Arc::make_mut(self.tables.get_mut(rel).expect("checked"));
        let slot = table.rows.len();
        table.index_insert(&t, slot);
        table.rows.push(Some(t));
        table.live += 1;
        self.metrics.inserts.inc();
        Ok(true)
    }

    /// The primary-key attribute names of `rel`.
    pub(crate) fn primary_key_attrs(
        &self,
        rel: &str,
    ) -> std::result::Result<Vec<String>, DmlError> {
        Ok(self
            .schema
            .scheme_required(rel)?
            .primary_key()
            .iter()
            .map(|k| (*k).to_owned())
            .collect())
    }

    /// Locates the row with primary key `key` (one index probe), without
    /// removing it.
    pub(crate) fn find_by_pk(
        &self,
        rel: &str,
        key: &Tuple,
    ) -> std::result::Result<Option<(usize, Tuple)>, DmlError> {
        let pk = self.primary_key_attrs(rel)?;
        let table = self
            .tables
            .get(rel)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?;
        let pk_pos = table.positions(&pk)?;
        self.metrics.index_probes.inc();
        let Some((_, map)) = table.unique.iter().find(|(p, _)| *p == pk_pos) else {
            return Err(DmlError::Schema(Error::MissingPrimaryKey(rel.to_owned())));
        };
        Ok(map.get(key).map(|&slot| {
            (
                slot,
                table.rows[slot]
                    .clone()
                    .expect("unique index points at live rows"),
            )
        }))
    }

    /// Removes the row at `slot` with **no** constraint checking.
    pub(crate) fn remove_slot(&mut self, rel: &str, slot: usize, victim: &Tuple) {
        let table = Arc::make_mut(self.tables.get_mut(rel).expect("checked"));
        table.index_remove(victim, slot);
        table.rows[slot] = None;
        table.live -= 1;
    }

    /// The eagerly-checked delete: RESTRICT semantics are enforced before
    /// the row is removed. Returns the victim tuple, if one existed.
    pub(crate) fn delete_inner(
        &mut self,
        rel: &str,
        key: &Tuple,
    ) -> std::result::Result<Option<Tuple>, DmlError> {
        let Some((slot, victim)) = self.find_by_pk(rel, key)? else {
            return Ok(None);
        };
        // RESTRICT: no referencing tuple may be orphaned. The deletion only
        // orphans a reference if no *other* live tuple of `rel` carries the
        // same referenced subtuple.
        for c in self
            .incoming
            .get(rel)
            .map(Vec::as_slice)
            .unwrap_or_default()
        {
            let t0 = Instant::now();
            let rhs_pos = self.tables[rel].positions(&c.rhs_attrs)?;
            if !victim.is_total_at(&rhs_pos) {
                self.metrics
                    .record_check(CheckClass::Restrict, c.mechanism, t0);
                continue;
            }
            let referenced = victim.project(&rhs_pos);
            self.metrics.index_probes.add(2);
            let remaining = self.tables[rel]
                .lookups
                .get(&c.rhs_attrs)
                .and_then(|(_, map)| map.get(&referenced))
                .map_or(0, Vec::len) as u32;
            if remaining > 1 {
                self.metrics
                    .record_check(CheckClass::Restrict, c.mechanism, t0);
                continue; // another tuple still provides the value
            }
            let referencing = self.tables[&c.lhs_rel]
                .lookups
                .get(&c.lhs_attrs)
                .and_then(|(_, map)| map.get(&referenced))
                .map_or(0, Vec::len) as u32;
            // A self-reference by the victim itself does not block.
            let self_ref = if c.lhs_rel == rel {
                let lhs_pos = self.tables[rel].positions(&c.lhs_attrs)?;
                u32::from(victim.is_total_at(&lhs_pos) && victim.project(&lhs_pos) == referenced)
            } else {
                0
            };
            self.metrics
                .record_check(CheckClass::Restrict, c.mechanism, t0);
            if referencing > self_ref {
                self.metrics.rejected.inc();
                return Err(DmlError::ConstraintViolation(format!(
                    "RESTRICT: `{}`[{}] still references {referenced}",
                    c.lhs_rel,
                    c.lhs_attrs.join(",")
                )));
            }
        }
        self.fault_check(site::INDEX_MAINTENANCE)?;
        self.remove_slot(rel, slot, &victim);
        self.metrics.deletes.inc();
        Ok(Some(victim))
    }

    /// Bulk-loads a database state without per-tuple rejection (the state
    /// is assumed consistent, e.g. produced by `Merged::apply`); constraint
    /// counters are not affected. Fails if any tuple is malformed, and —
    /// because "assumed consistent" is an assumption worth auditing when
    /// the state arrives from disk — runs [`Database::verify_integrity`]
    /// over the result, failing with [`Error::StateMismatch`] if the
    /// loaded state violates any constraint or index invariant. The audit
    /// is O(state size); callers that load a trusted (or transiently
    /// inconsistent) state and verify at a coarser boundary should use
    /// [`Database::load_state_unverified`]. Every touched relation's
    /// version is also bumped strictly past any cached build of it, so
    /// seeded or recovered data can never alias a stale build-cache entry.
    pub fn load_state(&mut self, state: &DatabaseState) -> Result<()> {
        self.load_state_unverified(state)?;
        let report = self.verify_integrity();
        if !report.is_clean() {
            return Err(Error::StateMismatch {
                detail: format!("loaded state failed integrity verification: {report}"),
            });
        }
        Ok(())
    }

    /// [`Database::load_state`] minus the closing integrity audit: just
    /// the bulk load and the build-cache version bumps, O(rows loaded).
    /// For callers that own a coarser verification boundary — crash
    /// recovery replays every logged migration through this path and runs
    /// [`Database::verify_integrity`] exactly once after the whole log
    /// suffix, rather than once per replayed record.
    pub fn load_state_unverified(&mut self, state: &DatabaseState) -> Result<()> {
        for (name, relation) in state.iter() {
            let table = self
                .tables
                .get_mut(name)
                .map(Arc::make_mut)
                .ok_or_else(|| Error::UnknownScheme(name.to_owned()))?;
            for t in relation.iter() {
                let slot = table.rows.len();
                table.index_insert(t, slot);
                table.rows.push(Some(t.clone()));
                table.live += 1;
            }
        }
        for name in state.names() {
            let cached = self.build_cache_lock().max_version(name);
            if let (Some(cached), Some(table)) = (cached, self.tables.get_mut(name)) {
                let table = Arc::make_mut(table);
                table.version = table.version.max(cached + 1);
            }
        }
        Ok(())
    }

    /// Materializes the current contents as a [`DatabaseState`].
    pub fn snapshot(&self) -> Result<DatabaseState> {
        let mut state = DatabaseState::new();
        for (name, table) in &self.tables {
            state.set_relation(name.clone(), table.to_relation()?);
        }
        Ok(state)
    }

    /// The deep integrity checker: re-validates every constraint the
    /// schema declares against the *stored* rows and cross-checks every
    /// index against its base relation, trusting nothing the DML fast
    /// paths maintain incrementally. Checks performed, per relation:
    ///
    /// * row accounting — the live counter equals the non-tombstoned rows;
    /// * unique (candidate-key) indexes — every entry points at a live row
    ///   carrying that key, every live row is indexed, and no key value
    ///   occurs twice;
    /// * secondary lookup indexes — every entry points at a live row whose
    ///   total subtuple matches, and every total live row is reachable;
    /// * null constraints (NNA/NS/NE/TE) — re-evaluated over all rows;
    /// * inclusion dependencies — every total LHS projection is rebuilt
    ///   and probed against a set recomputed from the RHS *base rows*
    ///   (not its indexes, which are verified separately).
    ///
    /// Returns the structured [`IntegrityReport`]; this function never
    /// fails — structural impossibilities (e.g. rows that no longer form a
    /// valid relation) are themselves reported as violations.
    #[must_use]
    pub fn verify_integrity(&self) -> IntegrityReport {
        let mut report = IntegrityReport::default();
        let mut violations = Vec::new();
        let mut flag = |relation: &str, kind: IntegrityKind, detail: String| {
            violations.push(IntegrityViolation {
                relation: relation.to_owned(),
                kind,
                detail,
            });
        };
        for (name, table) in &self.tables {
            report.relations_checked += 1;
            let live_rows: Vec<(usize, &Tuple)> = table
                .rows
                .iter()
                .enumerate()
                .filter_map(|(slot, row)| row.as_ref().map(|t| (slot, t)))
                .collect();
            if live_rows.len() != table.live {
                flag(
                    name,
                    IntegrityKind::RowAccounting,
                    format!(
                        "live counter says {} but {} rows are stored",
                        table.live,
                        live_rows.len()
                    ),
                );
            }
            // Unique indexes, both directions.
            for (pos, map) in &table.unique {
                for (key, &slot) in map {
                    report.index_entries_checked += 1;
                    match table.rows.get(slot).and_then(|r| r.as_ref()) {
                        Some(t) if t.project(pos) == *key => {}
                        Some(_) => flag(
                            name,
                            IntegrityKind::UniqueIndex,
                            format!("entry {key} points at slot {slot} holding a different key"),
                        ),
                        None => flag(
                            name,
                            IntegrityKind::UniqueIndex,
                            format!("entry {key} points at dead slot {slot}"),
                        ),
                    }
                }
                for &(slot, t) in &live_rows {
                    let key = t.project(pos);
                    match map.get(&key) {
                        Some(&s) if s == slot => {}
                        Some(&s) => flag(
                            name,
                            IntegrityKind::UniqueIndex,
                            format!("key {key} of slot {slot} indexed at slot {s} (duplicate key)"),
                        ),
                        None => flag(
                            name,
                            IntegrityKind::UniqueIndex,
                            format!("slot {slot} with key {key} missing from the index"),
                        ),
                    }
                }
            }
            // Lookup indexes, both directions.
            for (attrs, (pos, map)) in &table.lookups {
                for (key, slots) in map {
                    let mut seen = std::collections::HashSet::new();
                    for &slot in slots {
                        report.index_entries_checked += 1;
                        if !seen.insert(slot) {
                            flag(
                                name,
                                IntegrityKind::LookupIndex,
                                format!(
                                    "[{}] entry {key} lists slot {slot} twice",
                                    attrs.join(",")
                                ),
                            );
                        }
                        match table.rows.get(slot).and_then(|r| r.as_ref()) {
                            Some(t) if t.is_total_at(pos) && t.project(pos) == *key => {}
                            _ => flag(
                                name,
                                IntegrityKind::LookupIndex,
                                format!(
                                    "[{}] entry {key} points at slot {slot} not carrying it",
                                    attrs.join(",")
                                ),
                            ),
                        }
                    }
                }
                for &(slot, t) in &live_rows {
                    if !t.is_total_at(pos) {
                        continue;
                    }
                    let key = t.project(pos);
                    if !map.get(&key).is_some_and(|slots| slots.contains(&slot)) {
                        flag(
                            name,
                            IntegrityKind::LookupIndex,
                            format!(
                                "slot {slot} with [{}] = {key} missing from the index",
                                attrs.join(",")
                            ),
                        );
                    }
                }
            }
            // Null constraints, re-evaluated over the whole stored relation.
            if let Some(checks) = self.nulls.get(name).filter(|c| !c.is_empty()) {
                match table.to_relation() {
                    Ok(relation) => {
                        for c in checks {
                            report.constraints_checked += 1;
                            match c.constraint.satisfied_by(&relation) {
                                Ok(true) => {}
                                Ok(false) => flag(
                                    name,
                                    IntegrityKind::NullConstraint,
                                    c.constraint.to_string(),
                                ),
                                Err(e) => flag(
                                    name,
                                    IntegrityKind::NullConstraint,
                                    format!("check failed to evaluate: {e}"),
                                ),
                            }
                        }
                    }
                    Err(e) => flag(
                        name,
                        IntegrityKind::NullConstraint,
                        format!("stored rows no longer form a relation: {e}"),
                    ),
                }
            }
            // Outgoing inclusion dependencies, base rows against base rows.
            for c in self
                .outgoing
                .get(name)
                .map(Vec::as_slice)
                .unwrap_or_default()
            {
                report.constraints_checked += 1;
                let Ok(lhs_pos) = table.positions(&c.lhs_attrs) else {
                    flag(
                        name,
                        IntegrityKind::InclusionDependency,
                        format!("LHS attributes [{}] unresolvable", c.lhs_attrs.join(",")),
                    );
                    continue;
                };
                let Some(rhs_table) = self.tables.get(&c.rhs_rel) else {
                    flag(
                        name,
                        IntegrityKind::InclusionDependency,
                        format!("RHS relation `{}` missing", c.rhs_rel),
                    );
                    continue;
                };
                let Ok(rhs_pos) = rhs_table.positions(&c.rhs_attrs) else {
                    flag(
                        name,
                        IntegrityKind::InclusionDependency,
                        format!("RHS attributes [{}] unresolvable", c.rhs_attrs.join(",")),
                    );
                    continue;
                };
                let targets: std::collections::HashSet<Tuple> = rhs_table
                    .rows
                    .iter()
                    .flatten()
                    .filter(|t| t.is_total_at(&rhs_pos))
                    .map(|t| t.project(&rhs_pos))
                    .collect();
                for &(slot, t) in &live_rows {
                    if !t.is_total_at(&lhs_pos) {
                        continue;
                    }
                    let key = t.project(&lhs_pos);
                    if !targets.contains(&key) {
                        flag(
                            name,
                            IntegrityKind::InclusionDependency,
                            format!(
                                "slot {slot}: [{}] = {key} has no match in `{}`[{}]",
                                c.lhs_attrs.join(","),
                                c.rhs_rel,
                                c.rhs_attrs.join(",")
                            ),
                        );
                    }
                }
            }
        }
        report.violations = violations;
        report
    }

    /// Probes the lookup index of `rel` over `attrs` for `key`, appending
    /// *borrowed* matches to `out` (scanning only on index miss). The
    /// clone-free variant of the old `probe`: tuples materialize once, at
    /// concat/projection time in the executor, not per probe. Exposed for
    /// the query executor.
    pub(crate) fn probe_slots<'a>(
        &'a self,
        rel: &str,
        attrs: &[String],
        key: &Tuple,
        stats: &mut crate::query::QueryStats,
        out: &mut Vec<&'a Tuple>,
    ) -> Result<()> {
        let table = self
            .tables
            .get(rel)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?;
        let pos = table.positions(attrs)?;
        // Unique index?
        if let Some((_, map)) = table.unique.iter().find(|(p, _)| *p == pos) {
            stats.index_probes += 1;
            if let Some(t) = map.get(key).and_then(|&slot| table.rows[slot].as_ref()) {
                out.push(t);
            }
            return Ok(());
        }
        // Secondary lookup index?
        if let Some((_, map)) = table.lookups.get(attrs) {
            stats.index_probes += 1;
            if let Some(slots) = map.get(key) {
                out.extend(slots.iter().filter_map(|&s| table.rows[s].as_ref()));
            }
            return Ok(());
        }
        // Fall back to a scan.
        stats.rows_scanned += table.rows.len() as u64;
        out.extend(
            table
                .rows
                .iter()
                .flatten()
                .filter(|t| t.is_total_at(&pos) && t.project(&pos) == *key),
        );
        Ok(())
    }

    pub(crate) fn scan(&self, rel: &str) -> Result<(&[Attribute], Vec<&Tuple>)> {
        let table = self
            .tables
            .get(rel)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?;
        Ok((&table.header, table.rows.iter().flatten().collect()))
    }

    /// Probes a unique index over `attrs` for `key` (no stats, no scan
    /// fallback). Used by the transaction layer.
    pub(crate) fn unique_lookup(&self, rel: &str, attrs: &[String], key: &Tuple) -> Option<Tuple> {
        let table = self.tables.get(rel)?;
        let pos = table.positions(attrs).ok()?;
        let (_, map) = table.unique.iter().find(|(p, _)| *p == pos)?;
        map.get(key).and_then(|&slot| table.rows[slot].clone())
    }

    /// Re-inserts a tuple with **no** constraint checking — rollback only.
    pub(crate) fn raw_insert(&mut self, rel: &str, t: Tuple) -> Result<()> {
        let table = self
            .tables
            .get_mut(rel)
            .map(Arc::make_mut)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?;
        let slot = table.rows.len();
        table.index_insert(&t, slot);
        table.rows.push(Some(t));
        table.live += 1;
        Ok(())
    }

    /// Removes an exact tuple with **no** constraint checking — rollback
    /// only.
    pub(crate) fn raw_remove(&mut self, rel: &str, t: &Tuple) -> Result<()> {
        let table = self
            .tables
            .get_mut(rel)
            .map(Arc::make_mut)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?;
        let slot = table
            .rows
            .iter()
            .position(|r| r.as_ref() == Some(t))
            .ok_or_else(|| Error::StateMismatch {
                detail: format!("rollback: tuple {t} not found in `{rel}`"),
            })?;
        table.index_remove(t, slot);
        table.rows[slot] = None;
        table.live -= 1;
        Ok(())
    }

    /// Whether a unique or secondary lookup index of `rel` covers exactly
    /// `attrs` (the join-strategy cost model's index question).
    pub(crate) fn index_covers(&self, rel: &str, attrs: &[String]) -> Result<bool> {
        let table = self
            .tables
            .get(rel)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?;
        let pos = table.positions(attrs)?;
        Ok(table.unique.iter().any(|(p, _)| *p == pos) || table.lookups.contains_key(attrs))
    }

    pub(crate) fn header(&self, rel: &str) -> Result<&[Attribute]> {
        Ok(&self
            .tables
            .get(rel)
            .ok_or_else(|| Error::UnknownScheme(rel.to_owned()))?
            .header)
    }
}

pub(crate) fn singleton_relation(header: &[Attribute], t: &Tuple) -> Relation {
    let mut r = Relation::new(header.to_vec()).expect("header already validated");
    r.insert(t.clone()).expect("tuple already validated");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmerge_relational::{Domain, InclusionDep, RelationScheme, Value};

    fn a(n: &str) -> Attribute {
        Attribute::new(n, Domain::Int)
    }

    fn emp_mgr_schema() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("EMP", vec![a("E.SSN"), a("E.G")], &["E.SSN"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("MGR", vec![a("M.SSN"), a("M.NR")], &["M.SSN"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("EMP", &["E.SSN", "E.G"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("MGR", &["M.SSN", "M.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("MGR", &["M.SSN"], "EMP", &["E.SSN"]))
            .unwrap();
        rs
    }

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
    }

    #[test]
    fn insert_enforces_everything() {
        let mut db = Database::new(emp_mgr_schema(), DbmsProfile::db2()).unwrap();
        db.insert("EMP", tup(&[1, 10])).unwrap();
        // FK violation.
        let err = db.insert("MGR", tup(&[9, 1])).unwrap_err();
        assert!(matches!(err, DmlError::ConstraintViolation(_)));
        // FK satisfied.
        db.insert("MGR", tup(&[1, 7])).unwrap();
        // Duplicate key.
        let err = db.insert("EMP", tup(&[1, 99])).unwrap_err();
        assert!(matches!(err, DmlError::ConstraintViolation(_)));
        // Identical tuple is idempotent.
        assert!(!db.insert("EMP", tup(&[1, 10])).unwrap());
        // NNA violation.
        let err = db
            .insert("EMP", Tuple::new([Value::Int(2), Value::Null]))
            .unwrap_err();
        assert!(matches!(err, DmlError::ConstraintViolation(_)));
        assert_eq!(db.len("EMP"), 1);
        assert_eq!(db.len("MGR"), 1);
        let stats = db.stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.rejected, 3);
        assert!(stats.declarative_checks > 0);
        assert_eq!(stats.procedural_checks, 0);
    }

    #[test]
    fn delete_restrict() {
        let mut db = Database::new(emp_mgr_schema(), DbmsProfile::db2()).unwrap();
        db.insert("EMP", tup(&[1, 10])).unwrap();
        db.insert("MGR", tup(&[1, 7])).unwrap();
        // EMP(1) is referenced: RESTRICT.
        let err = db.delete_by_key("EMP", &tup(&[1])).unwrap_err();
        assert!(matches!(err, DmlError::ConstraintViolation(_)));
        // Delete the referencing row first.
        assert!(db.delete_by_key("MGR", &tup(&[1])).unwrap());
        assert!(db.delete_by_key("EMP", &tup(&[1])).unwrap());
        assert_eq!(db.len("EMP"), 0);
        // Deleting a missing key is a no-op.
        assert!(!db.delete_by_key("EMP", &tup(&[1])).unwrap());
    }

    #[test]
    fn procedural_tier_counted() {
        // A merged-style schema with a null-sync constraint: SYBASE
        // maintains it via triggers → procedural counter.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("M", vec![a("K"), a("X"), a("Y")], &["K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("M", &["K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::ns("M", &["X", "Y"]))
            .unwrap();
        let mut db = Database::new(rs.clone(), DbmsProfile::sybase40()).unwrap();
        db.insert("M", Tuple::new([Value::Int(1), Value::Null, Value::Null]))
            .unwrap();
        let err = db
            .insert("M", Tuple::new([Value::Int(2), Value::Int(5), Value::Null]))
            .unwrap_err();
        assert!(matches!(err, DmlError::ConstraintViolation(_)));
        assert!(db.stats().procedural_checks > 0);
        // DB2 cannot host this schema at all.
        assert!(Database::new(rs, DbmsProfile::db2()).is_err());
    }

    #[test]
    fn partial_foreign_keys_exempt() {
        // Nullable FK: a null subtuple is exempt (total-projection
        // semantics), a total dangling one is rejected.
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("P", vec![a("P.K")], &["P.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("C", vec![a("C.K"), a("C.FK")], &["C.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("P", &["P.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("C", &["C.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("C", &["C.FK"], "P", &["P.K"]))
            .unwrap();
        let mut db = Database::new(rs, DbmsProfile::db2()).unwrap();
        db.insert("C", Tuple::new([Value::Int(1), Value::Null]))
            .unwrap();
        assert!(db.insert("C", tup(&[2, 77])).is_err());
        db.insert("P", tup(&[77])).unwrap();
        db.insert("C", tup(&[2, 77])).unwrap();
    }

    #[test]
    fn snapshot_round_trip_and_load() {
        let mut db = Database::new(emp_mgr_schema(), DbmsProfile::ideal()).unwrap();
        db.insert("EMP", tup(&[1, 10])).unwrap();
        db.insert("EMP", tup(&[2, 20])).unwrap();
        db.insert("MGR", tup(&[2, 5])).unwrap();
        db.delete_by_key("EMP", &tup(&[1])).unwrap();
        let snap = db.snapshot().unwrap();
        assert_eq!(snap.relation("EMP").unwrap().len(), 1);
        assert!(snap.is_consistent(db.schema()).unwrap());
        // Load into a fresh database and compare.
        let mut db2 = Database::new(emp_mgr_schema(), DbmsProfile::ideal()).unwrap();
        db2.load_state(&snap).unwrap();
        assert_eq!(db2.snapshot().unwrap(), snap);
        // Constraints still enforced on top of the loaded data.
        assert!(db2.insert("MGR", tup(&[2, 6])).is_err()); // dup key
    }

    #[test]
    fn self_referencing_ind_allows_own_tuple() {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("E", vec![a("E.K"), a("E.BOSS")], &["E.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("E", &["E.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("E", &["E.BOSS"], "E", &["E.K"]))
            .unwrap();
        let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
        // Self-managed root employee.
        db.insert("E", tup(&[1, 1])).unwrap();
        db.insert("E", tup(&[2, 1])).unwrap();
        assert!(db.insert("E", tup(&[3, 9])).is_err());
    }

    #[test]
    fn take_stats_reads_and_resets() {
        let mut db = Database::new(emp_mgr_schema(), DbmsProfile::db2()).unwrap();
        db.insert("EMP", tup(&[1, 10])).unwrap();
        let taken = db.take_stats();
        assert_eq!(taken.inserts, 1);
        assert!(taken.declarative_checks > 0);
        assert_eq!(db.stats(), MaintenanceStats::default());
        // Counters keep working after the reset.
        db.insert("EMP", tup(&[2, 20])).unwrap();
        assert_eq!(db.stats().inserts, 1);
    }

    #[test]
    fn stats_add_and_merge() {
        let a = MaintenanceStats {
            inserts: 1,
            deletes: 2,
            updates: 7,
            rejected: 3,
            declarative_checks: 4,
            procedural_checks: 5,
            deferred_checks: 8,
            index_probes: 6,
        };
        let b = MaintenanceStats {
            inserts: 10,
            deletes: 20,
            updates: 70,
            rejected: 30,
            declarative_checks: 40,
            procedural_checks: 50,
            deferred_checks: 80,
            index_probes: 60,
        };
        let sum = a + b;
        assert_eq!(sum.inserts, 11);
        assert_eq!(sum.index_probes, 66);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m, sum);
        let mut aa = a;
        aa += b;
        assert_eq!(aa, sum);
    }

    #[test]
    fn cloned_database_has_isolated_counters() {
        let mut db = Database::new(emp_mgr_schema(), DbmsProfile::db2()).unwrap();
        db.insert("EMP", tup(&[1, 10])).unwrap();
        let mut copy = db.clone();
        assert_eq!(copy.stats(), db.stats(), "clone carries counts over");
        copy.insert("EMP", tup(&[2, 20])).unwrap();
        assert_eq!(copy.stats().inserts, 2);
        assert_eq!(db.stats().inserts, 1, "original unaffected by the clone");
    }

    #[test]
    fn relation_versions_bump_on_every_mutation() {
        let mut db = Database::new(emp_mgr_schema(), DbmsProfile::db2()).unwrap();
        let v0 = db.relation_version("EMP").unwrap();
        db.insert("EMP", tup(&[1, 10])).unwrap();
        let v1 = db.relation_version("EMP").unwrap();
        assert!(v1 > v0);
        // An idempotent re-insert mutates nothing, so the version holds —
        // a cached build over EMP stays valid.
        assert!(!db.insert("EMP", tup(&[1, 10])).unwrap());
        assert_eq!(db.relation_version("EMP").unwrap(), v1);
        // A rejected statement mutates nothing either.
        assert!(db.insert("EMP", tup(&[1, 99])).is_err());
        assert_eq!(db.relation_version("EMP").unwrap(), v1);
        // Deletes bump; other relations are untouched.
        let mgr_v = db.relation_version("MGR").unwrap();
        db.delete_by_key("EMP", &tup(&[1])).unwrap();
        assert!(db.relation_version("EMP").unwrap() > v1);
        assert_eq!(db.relation_version("MGR").unwrap(), mgr_v);
        assert!(db.relation_version("NOPE").is_err());
    }

    #[test]
    fn build_cache_knobs_round_trip() {
        let mut db = Database::new(emp_mgr_schema(), DbmsProfile::db2()).unwrap();
        assert_eq!(db.build_cache_capacity(), DEFAULT_BUILD_CACHE_BYTES);
        assert_eq!(
            db.build_parallel_threshold(),
            DEFAULT_BUILD_PARALLEL_THRESHOLD
        );
        assert_eq!((db.build_cache_len(), db.build_cache_bytes()), (0, 0));
        db.configure(db.config().build_cache_capacity(0));
        assert_eq!(db.build_cache_capacity(), 0);
        db.configure(db.config().build_parallel_threshold(usize::MAX));
        assert_eq!(db.build_parallel_threshold(), usize::MAX);
        db.clear_build_cache();
        assert_eq!(db.build_cache_len(), 0);
    }

    #[test]
    fn engine_config_round_trips_every_knob() {
        let cfg = EngineConfig::new()
            .parallelism(3)
            .hash_join_threshold(7)
            .morsel_rows(11)
            .build_parallel_threshold(13)
            .build_cache_capacity(1 << 20);
        let mut db = Database::new_with_config(emp_mgr_schema(), DbmsProfile::db2(), cfg).unwrap();
        assert_eq!(db.parallelism(), 3);
        assert_eq!(db.hash_join_threshold(), 7);
        assert_eq!(db.morsel_rows(), 11);
        assert_eq!(db.build_parallel_threshold(), 13);
        assert_eq!(db.build_cache_capacity(), 1 << 20);
        let read_back = db.config();
        assert_eq!(read_back.get_parallelism(), 3);
        assert_eq!(read_back.get_hash_join_threshold(), 7);
        assert_eq!(read_back.get_morsel_rows(), 11);
        assert_eq!(read_back.get_build_parallel_threshold(), 13);
        assert_eq!(read_back.get_build_cache_capacity(), 1 << 20);
        // Single-knob tweak leaves the rest intact, and zero values clamp
        // where the old setters clamped.
        db.configure(db.config().parallelism(0).morsel_rows(0));
        assert_eq!(db.parallelism(), 1);
        assert_eq!(db.morsel_rows(), 1);
        assert_eq!(db.hash_join_threshold(), 7);
    }

    /// The deprecated one-knob setters must keep working as thin
    /// wrappers over `configure`.
    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_still_apply() {
        let mut db = Database::new(emp_mgr_schema(), DbmsProfile::db2()).unwrap();
        db.set_parallelism(2);
        db.set_hash_join_threshold(5);
        db.set_morsel_rows(9);
        db.set_build_parallel_threshold(17);
        db.set_build_cache_capacity(0);
        db.set_query_budget(QueryBudget::unlimited());
        assert_eq!(db.parallelism(), 2);
        assert_eq!(db.hash_join_threshold(), 5);
        assert_eq!(db.morsel_rows(), 9);
        assert_eq!(db.build_parallel_threshold(), 17);
        assert_eq!(db.build_cache_capacity(), 0);
    }

    #[test]
    fn per_class_counters_split_by_mechanism() {
        let mut db = Database::new(emp_mgr_schema(), DbmsProfile::db2()).unwrap();
        db.insert("EMP", tup(&[1, 10])).unwrap();
        db.insert("MGR", tup(&[1, 7])).unwrap();
        db.delete_by_key("MGR", &tup(&[1])).unwrap();
        // EMP is the IND's RHS, so deleting from it runs the RESTRICT check.
        db.delete_by_key("EMP", &tup(&[1])).unwrap();
        let snap = db.metrics_registry().snapshot();
        // DB2: NNA + PK + FK are declarative.
        assert_eq!(snap.counters["engine.check.null.declarative"], 2);
        assert_eq!(snap.counters["engine.check.key.declarative"], 2);
        assert_eq!(snap.counters["engine.check.ind.declarative"], 1);
        assert_eq!(snap.counters["engine.check.restrict.declarative"], 1);
        // Per-class counts sum to the tier totals the stats view reports.
        let per_class: u64 = CLASS_NAMES
            .iter()
            .map(|c| snap.counters[&format!("engine.check.{c}.declarative")])
            .sum();
        assert_eq!(per_class, db.stats().declarative_checks);
        // Latency histograms saw every declarative check.
        assert_eq!(
            snap.histograms["engine.check.declarative.ns"].count,
            db.stats().declarative_checks
        );
        assert_eq!(db.stats().procedural_checks, 0);
    }
}
