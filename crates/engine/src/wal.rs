//! Write-ahead logging, snapshots, and crash recovery (DESIGN.md §13).
//!
//! Everything the engine commits — every [`Statement`] batch, every
//! single-statement verb, every [`Database::transaction`] bundle, and
//! every [`Database::migrate`] catalog swap — appends one length-prefixed,
//! FNV-64-checksummed record to a write-ahead log *before* the in-memory
//! commit becomes visible to the caller. Periodic snapshots capture the
//! full state plus the catalog (schema, profile, relation versions) and
//! start a fresh log generation, bounding replay time.
//!
//! ## On-disk layout
//!
//! A data directory holds exactly one live generation `N`:
//!
//! ```text
//! <dir>/snapshot-N.snap   full state at the moment the generation began
//! <dir>/wal-N.log         records committed since that snapshot
//! ```
//!
//! Both files begin with an 8-byte magic (`RMSNAP01` / `RMWAL001`). A WAL
//! record is `u32 LE payload length ++ u64 LE FNV-1a(payload) ++ payload`;
//! the snapshot body uses the same framing once. Snapshot installation is
//! create the new empty log → write-to-`.tmp` → fsync → rename → fsync
//! directory → only then delete the previous generation. The log comes
//! *first* because the rename is the commit point of generation `N+1`: it
//! must never become durable without a log file ready to receive the
//! appends that follow. A crash or failure at any point leaves at least
//! one complete generation on disk (`.tmp` files and logs without a
//! matching snapshot are ignored on recovery).
//!
//! ## Recovery
//!
//! [`Database::recover`] loads the newest snapshot that passes its
//! checksum, replays the log suffix record by record through the very same
//! `apply_batch` / `compile_catalog` paths the records were produced by,
//! tolerates a torn or truncated tail record (replay stops at the first
//! frame whose length or checksum does not verify), deep-checks the result
//! with [`Database::verify_integrity`], and only then truncates the torn
//! tail and reopens the log for appending. A fault injected *during*
//! recovery (site [`site::RECOVERY_REPLAY`], error or panic mode) aborts
//! before anything on disk is touched, so the next attempt starts from the
//! same bytes and succeeds.
//!
//! [`Statement`]: crate::Statement

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use relmerge_obs as obs;
use relmerge_relational::{
    Attribute, DatabaseState, Domain, Error, Fd, InclusionDep, NullConstraint, Relation,
    RelationScheme, RelationalSchema, Result, Tuple, Value,
};

use crate::batch::Statement;
use crate::capability::{DbmsProfile, Mechanism};
use crate::database::{compile_catalog, Database, EngineConfig};
use crate::fault::{panic_message, site, FaultPlan};

/// Magic prefix of every WAL file.
const WAL_MAGIC: &[u8; 8] = b"RMWAL001";
/// Magic prefix of every snapshot file.
const SNAP_MAGIC: &[u8; 8] = b"RMSNAP01";
/// Record-frame header: `u32` payload length + `u64` FNV-1a checksum.
const FRAME_HEADER: u64 = 12;
/// Payload tag of a committed statement batch.
const REC_BATCH: u8 = 1;
/// Payload tag of a committed online migration (catalog record).
const REC_MIGRATION: u8 = 2;
/// Largest payload recovery will believe; anything bigger is treated as a
/// torn length field. Enforced symmetrically at append/snapshot-write
/// time with a typed error, so an oversized payload can never be acked
/// durable only for recovery to discard it.
const MAX_RECORD_BYTES: u32 = 1 << 30;

/// Rejects a payload recovery would refuse to replay. The u32 length
/// field wraps at 4 GiB and recovery treats anything over
/// [`MAX_RECORD_BYTES`] as a torn tail — both must fail loudly at write
/// time instead of silently losing the record (and everything after it)
/// on the next recovery.
fn check_payload_size(kind: &str, payload: &[u8]) -> Result<()> {
    if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
        return Err(Error::Durability {
            detail: format!(
                "{kind} payload of {} bytes exceeds the {MAX_RECORD_BYTES}-byte record limit",
                payload.len()
            ),
        });
    }
    Ok(())
}

/// Default batches between snapshots (see
/// [`DurabilityConfig::snapshot_every`]).
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

/// FNV-1a over `bytes` — the record checksum. Std-only, deterministic,
/// and plenty for torn-write detection (crypto is not the threat model).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// When the WAL flushes its file to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended record — a committed batch is
    /// durable the moment the caller sees `Ok`. The default.
    #[default]
    Always,
    /// Never fsync the log (the OS flushes at its leisure). Crash
    /// recovery still works — it simply may land on an earlier durable
    /// prefix. For benchmarks and tests.
    Never,
}

impl FsyncPolicy {
    /// Short label (`"always"` / `"never"`), used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        }
    }
}

/// The durability knobs of [`EngineConfig`]: where the data directory
/// lives, how often to snapshot, and when to fsync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    dir: PathBuf,
    snapshot_every: u64,
    fsync: FsyncPolicy,
}

impl DurabilityConfig {
    /// Durability in `dir` with the defaults: a snapshot every
    /// [`DEFAULT_SNAPSHOT_EVERY`] committed batches and
    /// [`FsyncPolicy::Always`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            fsync: FsyncPolicy::default(),
        }
    }

    /// Sets how many committed batches (or migrations) accumulate in the
    /// log before a snapshot is installed and the log truncated. `0`
    /// disables periodic snapshots — the log grows until recovery.
    #[must_use]
    pub fn snapshot_every(mut self, batches: u64) -> Self {
        self.snapshot_every = batches;
        self
    }

    /// Sets the fsync policy.
    #[must_use]
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// The data directory.
    #[must_use]
    pub fn get_dir(&self) -> &Path {
        &self.dir
    }

    /// The configured snapshot cadence (batches per snapshot; `0` =
    /// never).
    #[must_use]
    pub fn get_snapshot_every(&self) -> u64 {
        self.snapshot_every
    }

    /// The configured fsync policy.
    #[must_use]
    pub fn get_fsync(&self) -> FsyncPolicy {
        self.fsync
    }
}

/// What one [`Database::recover`] run did — the one-line recovery report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The snapshot generation recovery started from.
    pub generation: u64,
    /// Batch records replayed from the log suffix.
    pub batches_replayed: u64,
    /// Migration (catalog) records replayed from the log suffix.
    pub migrations_replayed: u64,
    /// Whether a torn/truncated/corrupted tail record was detected (and
    /// discarded).
    pub torn_tail: bool,
    /// Bytes of torn tail truncated away after successful replay.
    pub truncated_bytes: u64,
    /// Valid WAL bytes replayed (excluding the file magic).
    pub wal_bytes_replayed: u64,
    /// Wall time of the whole recovery, in nanoseconds.
    pub replay_ns: u64,
}

impl RecoveryReport {
    /// Total records replayed (batches + migrations).
    #[must_use]
    pub fn records_replayed(&self) -> u64 {
        self.batches_replayed + self.migrations_replayed
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered: snapshot generation {}, {} record(s) replayed ({} batch, {} migration, \
             {} WAL bytes, {:.1} ms), torn tail: {}",
            self.generation,
            self.records_replayed(),
            self.batches_replayed,
            self.migrations_replayed,
            self.wal_bytes_replayed,
            self.replay_ns as f64 / 1e6,
            if self.torn_tail {
                format!("yes ({} byte(s) discarded)", self.truncated_bytes)
            } else {
                "no".to_owned()
            }
        )
    }
}

/// Whether `dir` holds an initialized data directory (at least one
/// snapshot file, complete or not) — the create-vs-recover discriminator
/// the `sdt --data-dir` flag uses.
#[must_use]
pub fn is_initialized(dir: &Path) -> bool {
    list_generations(dir).is_ok_and(|g| !g.is_empty())
}

fn io_err(context: &str, path: &Path, e: &std::io::Error) -> Error {
    Error::Durability {
        detail: format!("{context} `{}`: {e}", path.display()),
    }
}

fn corrupt(detail: impl Into<String>) -> Error {
    Error::Durability {
        detail: detail.into(),
    }
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation}.snap"))
}

/// Snapshot generations present in `dir`, newest first (`.tmp` leftovers
/// are ignored — they never finished installing).
fn list_generations(dir: &Path) -> Result<Vec<u64>> {
    let mut generations = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("cannot list data dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("cannot list data dir", dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = name
            .strip_prefix("snapshot-")
            .and_then(|r| r.strip_suffix(".snap"))
            .and_then(|g| g.parse::<u64>().ok())
        {
            generations.push(g);
        }
    }
    generations.sort_unstable_by(|a, b| b.cmp(a));
    Ok(generations)
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Append-only byte encoder for WAL payloads and snapshot bodies.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn str_list(&mut self, items: &[String]) {
        self.u32(items.len() as u32);
        for s in items {
            self.str(s);
        }
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Text(t) => {
                self.u8(2);
                self.str(t);
            }
            Value::Bool(b) => {
                self.u8(3);
                self.bool(*b);
            }
            Value::Date(d) => {
                self.u8(4);
                self.i64(*d);
            }
        }
    }

    fn tuple(&mut self, t: &Tuple) {
        self.u32(t.arity() as u32);
        for v in t.values() {
            self.value(v);
        }
    }

    fn statement(&mut self, s: &Statement) {
        match s {
            Statement::Insert { rel, tuple } => {
                self.u8(1);
                self.str(rel);
                self.tuple(tuple);
            }
            Statement::Delete { rel, key } => {
                self.u8(2);
                self.str(rel);
                self.tuple(key);
            }
            Statement::Update { rel, key, tuple } => {
                self.u8(3);
                self.str(rel);
                self.tuple(key);
                self.tuple(tuple);
            }
        }
    }

    fn domain(&mut self, d: Domain) {
        self.u8(match d {
            Domain::Int => 1,
            Domain::Text => 2,
            Domain::Bool => 3,
            Domain::Date => 4,
        });
    }

    fn attrs(&mut self, attrs: &[Attribute]) {
        self.u32(attrs.len() as u32);
        for a in attrs {
            self.str(a.name());
            self.domain(a.domain());
        }
    }

    fn mechanism(&mut self, m: Mechanism) {
        self.u8(match m {
            Mechanism::Unsupported => 0,
            Mechanism::Declarative => 1,
            Mechanism::Procedural => 2,
        });
    }

    fn profile(&mut self, p: &DbmsProfile) {
        self.str(p.name);
        self.mechanism(p.referential_integrity);
        self.mechanism(p.non_key_inds);
        self.mechanism(p.nna);
        self.mechanism(p.general_null_constraints);
        self.bool(p.nullable_keys);
        self.bool(p.deferred_checking);
    }

    fn schema(&mut self, schema: &RelationalSchema) {
        let schemes = schema.schemes();
        self.u32(schemes.len() as u32);
        for s in schemes {
            self.str(s.name());
            self.attrs(s.attrs());
            let keys = s.candidate_keys();
            self.u32(keys.len() as u32);
            for key in keys {
                self.u32(key.len() as u32);
                for k in key {
                    self.str(k);
                }
            }
        }
        let inds = schema.inds();
        self.u32(inds.len() as u32);
        for ind in inds {
            self.str(&ind.lhs_rel);
            self.str_list(&ind.lhs_attrs);
            self.str(&ind.rhs_rel);
            self.str_list(&ind.rhs_attrs);
        }
        let nulls = schema.null_constraints();
        self.u32(nulls.len() as u32);
        for c in nulls {
            match c {
                NullConstraint::NullExistence { rel, lhs, rhs } => {
                    self.u8(1);
                    self.str(rel);
                    self.str_list(lhs);
                    self.str_list(rhs);
                }
                NullConstraint::NullSync { rel, attrs } => {
                    self.u8(2);
                    self.str(rel);
                    self.str_list(attrs);
                }
                NullConstraint::PartNull { rel, groups } => {
                    self.u8(3);
                    self.str(rel);
                    self.u32(groups.len() as u32);
                    for g in groups {
                        self.str_list(g);
                    }
                }
                NullConstraint::TotalEquality { rel, lhs, rhs } => {
                    self.u8(4);
                    self.str(rel);
                    self.str_list(lhs);
                    self.str_list(rhs);
                }
            }
        }
        let fds = schema.extra_fds();
        self.u32(fds.len() as u32);
        for fd in fds {
            self.str(&fd.rel);
            self.str_list(&fd.lhs);
            self.str_list(&fd.rhs);
        }
    }

    fn state(&mut self, state: &DatabaseState) {
        let names = state.names();
        self.u32(names.len() as u32);
        for name in names {
            let r = state
                .relation(name)
                .expect("name came from the state itself");
            self.str(name);
            self.attrs(r.header());
            self.u32(r.len() as u32);
            for t in r.iter() {
                self.tuple(t);
            }
        }
    }

    fn versions(&mut self, versions: &[(String, u64)]) {
        self.u32(versions.len() as u32);
        for (name, v) in versions {
            self.str(name);
            self.u64(*v);
        }
    }
}

/// Bounds-checked byte decoder over one payload.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                corrupt(format!(
                    "record payload truncated: wanted {n} byte(s) at offset {}",
                    self.pos
                ))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt(format!(
                "record payload has {} trailing byte(s)",
                self.buf.len() - self.pos
            )))
        }
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(corrupt(format!("invalid bool byte {other}"))),
        }
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A length-checked count of variable-size items; each item needs at
    /// least one byte, so the count can never exceed the remaining bytes
    /// (rejects absurd counts before any allocation).
    fn count(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(corrupt(format!(
                "item count {n} exceeds remaining payload ({} byte(s))",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt("string field is not valid UTF-8".to_owned()))
    }

    fn str_list(&mut self) -> Result<Vec<String>> {
        let n = self.count()?;
        (0..n).map(|_| self.str()).collect()
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::text(self.str()?)),
            3 => Ok(Value::Bool(self.bool()?)),
            4 => Ok(Value::Date(self.i64()?)),
            other => Err(corrupt(format!("invalid value tag {other}"))),
        }
    }

    fn tuple(&mut self) -> Result<Tuple> {
        let n = self.count()?;
        let values: Result<Vec<Value>> = (0..n).map(|_| self.value()).collect();
        Ok(Tuple::new(values?))
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.u8()? {
            1 => Ok(Statement::Insert {
                rel: self.str()?,
                tuple: self.tuple()?,
            }),
            2 => Ok(Statement::Delete {
                rel: self.str()?,
                key: self.tuple()?,
            }),
            3 => Ok(Statement::Update {
                rel: self.str()?,
                key: self.tuple()?,
                tuple: self.tuple()?,
            }),
            other => Err(corrupt(format!("invalid statement tag {other}"))),
        }
    }

    fn domain(&mut self) -> Result<Domain> {
        match self.u8()? {
            1 => Ok(Domain::Int),
            2 => Ok(Domain::Text),
            3 => Ok(Domain::Bool),
            4 => Ok(Domain::Date),
            other => Err(corrupt(format!("invalid domain tag {other}"))),
        }
    }

    fn attrs(&mut self) -> Result<Vec<Attribute>> {
        let n = self.count()?;
        (0..n)
            .map(|_| {
                let name = self.str()?;
                Ok(Attribute::new(name, self.domain()?))
            })
            .collect()
    }

    fn mechanism(&mut self) -> Result<Mechanism> {
        match self.u8()? {
            0 => Ok(Mechanism::Unsupported),
            1 => Ok(Mechanism::Declarative),
            2 => Ok(Mechanism::Procedural),
            other => Err(corrupt(format!("invalid mechanism tag {other}"))),
        }
    }

    fn profile(&mut self) -> Result<DbmsProfile> {
        let name = self.str()?;
        // Profile names are `&'static str`; map the persisted name back to
        // the builtin it came from, falling back to a generic label for
        // hand-rolled profiles (their capabilities are what matter, and
        // those round-trip field by field below).
        let static_name: &'static str = match name.as_str() {
            "DB2" => "DB2",
            "SYBASE 4.0" => "SYBASE 4.0",
            "INGRES 6.3" => "INGRES 6.3",
            "ideal" => "ideal",
            _ => "custom",
        };
        Ok(DbmsProfile {
            name: static_name,
            referential_integrity: self.mechanism()?,
            non_key_inds: self.mechanism()?,
            nna: self.mechanism()?,
            general_null_constraints: self.mechanism()?,
            nullable_keys: self.bool()?,
            deferred_checking: self.bool()?,
        })
    }

    fn schema(&mut self) -> Result<RelationalSchema> {
        let mut schema = RelationalSchema::new();
        for _ in 0..self.count()? {
            let name = self.str()?;
            let attrs = self.attrs()?;
            let keys: Result<Vec<Vec<String>>> = (0..self.count()?)
                .map(|_| (0..self.count()?).map(|_| self.str()).collect())
                .collect();
            let keys = keys?;
            let key_refs: Vec<Vec<&str>> = keys
                .iter()
                .map(|k| k.iter().map(String::as_str).collect())
                .collect();
            let key_slices: Vec<&[&str]> = key_refs.iter().map(Vec::as_slice).collect();
            schema.add_scheme(RelationScheme::with_candidate_keys(
                name,
                attrs,
                &key_slices,
            )?)?;
        }
        for _ in 0..self.count()? {
            let lhs_rel = self.str()?;
            let lhs_attrs = self.str_list()?;
            let rhs_rel = self.str()?;
            let rhs_attrs = self.str_list()?;
            schema.add_ind(InclusionDep {
                lhs_rel,
                lhs_attrs,
                rhs_rel,
                rhs_attrs,
            })?;
        }
        for _ in 0..self.count()? {
            let c = match self.u8()? {
                1 => NullConstraint::NullExistence {
                    rel: self.str()?,
                    lhs: self.str_list()?,
                    rhs: self.str_list()?,
                },
                2 => NullConstraint::NullSync {
                    rel: self.str()?,
                    attrs: self.str_list()?,
                },
                3 => {
                    let rel = self.str()?;
                    let groups: Result<Vec<Vec<String>>> =
                        (0..self.count()?).map(|_| self.str_list()).collect();
                    NullConstraint::PartNull {
                        rel,
                        groups: groups?,
                    }
                }
                4 => NullConstraint::TotalEquality {
                    rel: self.str()?,
                    lhs: self.str_list()?,
                    rhs: self.str_list()?,
                },
                other => return Err(corrupt(format!("invalid null-constraint tag {other}"))),
            };
            schema.add_null_constraint(c)?;
        }
        for _ in 0..self.count()? {
            schema.add_fd(Fd {
                rel: self.str()?,
                lhs: self.str_list()?,
                rhs: self.str_list()?,
            })?;
        }
        Ok(schema)
    }

    fn state(&mut self) -> Result<DatabaseState> {
        let mut state = DatabaseState::new();
        for _ in 0..self.count()? {
            let name = self.str()?;
            let header = self.attrs()?;
            let rows: Result<Vec<Tuple>> = (0..self.count()?).map(|_| self.tuple()).collect();
            state.set_relation(name, Relation::with_rows(header, rows?)?);
        }
        Ok(state)
    }

    fn versions(&mut self) -> Result<Vec<(String, u64)>> {
        (0..self.count()?)
            .map(|_| Ok((self.str()?, self.u64()?)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Record payloads
// ---------------------------------------------------------------------------

fn encode_batch_payload(stmts: &[Statement]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(REC_BATCH);
    e.u32(stmts.len() as u32);
    for s in stmts {
        e.statement(s);
    }
    e.buf
}

fn encode_migration_payload(
    schema: &RelationalSchema,
    state: &DatabaseState,
    versions: &[(String, u64)],
) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(REC_MIGRATION);
    e.schema(schema);
    e.state(state);
    e.versions(versions);
    e.buf
}

/// Everything a snapshot persists: the logical catalog plus the data.
struct SnapshotBody {
    profile: DbmsProfile,
    schema: RelationalSchema,
    state: DatabaseState,
    versions: Vec<(String, u64)>,
}

fn encode_snapshot(db: &Database) -> Result<Vec<u8>> {
    let mut e = Enc::new();
    e.profile(db.profile());
    e.schema(db.schema());
    e.state(&db.snapshot()?);
    e.versions(&db.relation_versions());
    Ok(e.buf)
}

fn decode_snapshot(payload: &[u8]) -> Result<SnapshotBody> {
    let mut d = Dec::new(payload);
    let profile = d.profile()?;
    let schema = d.schema()?;
    let state = d.state()?;
    let versions = d.versions()?;
    d.done()?;
    Ok(SnapshotBody {
        profile,
        schema,
        state,
        versions,
    })
}

// ---------------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------------

/// State behind the [`Wal`] mutex: the open log file and its bookkeeping.
struct WalInner {
    file: File,
    generation: u64,
    /// Bytes of valid log written so far (magic included).
    offset: u64,
    /// Committed batches since the generation began (drives the snapshot
    /// cadence).
    batches_since_snapshot: u64,
    /// Set when a failed append could not be scrubbed back off the file;
    /// further appends refuse rather than write after junk.
    poisoned: bool,
}

/// The write-ahead log of one durable [`Database`]. Interior-mutable
/// (appends happen from `&self` inside the batch machinery); never cloned
/// — a [`Database::clone`] is an in-memory fork and carries no log.
pub(crate) struct Wal {
    cfg: DurabilityConfig,
    inner: Mutex<WalInner>,
    /// Set while a migration runs so its internal `apply_batch` chunks are
    /// not logged individually (the migration record captures them all).
    suspended: AtomicBool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("cfg", &self.cfg).finish()
    }
}

impl Wal {
    /// Initializes a fresh data directory for `db`: creates it, writes the
    /// generation-0 snapshot of the (typically empty) current state, and
    /// opens an empty generation-0 log. Refuses a directory that already
    /// holds a snapshot — that data belongs to [`Database::recover`].
    pub(crate) fn initialize(cfg: DurabilityConfig, db: &Database) -> Result<Wal> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("cannot create data dir", &cfg.dir, &e))?;
        if is_initialized(&cfg.dir) {
            return Err(Error::Durability {
                detail: format!(
                    "data dir `{}` already holds a snapshot; use Database::recover",
                    cfg.dir.display()
                ),
            });
        }
        let payload = encode_snapshot(db)?;
        write_snapshot_file(&cfg, 0, &payload)?;
        let file = create_log_file(&cfg, 0)?;
        Ok(Wal {
            cfg,
            inner: Mutex::new(WalInner {
                file,
                generation: 0,
                offset: WAL_MAGIC.len() as u64,
                batches_since_snapshot: 0,
                poisoned: false,
            }),
            suspended: AtomicBool::new(false),
        })
    }

    /// The durability knobs this log runs under.
    pub(crate) fn config(&self) -> &DurabilityConfig {
        &self.cfg
    }

    /// The current generation and valid byte offset — `(gen, offset)`.
    /// Exposed for the crash-torture harness, which truncates the literal
    /// file at every offset below this.
    pub(crate) fn position(&self) -> (u64, u64) {
        let g = self.lock();
        (g.generation, g.offset)
    }

    pub(crate) fn suspend(&self, on: bool) {
        self.suspended.store(on, Ordering::Relaxed);
    }

    pub(crate) fn is_suspended(&self) -> bool {
        self.suspended.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, WalInner> {
        // Poisoning is ignored deliberately: the inner state is kept
        // consistent before any operation can panic, and the `poisoned`
        // flag (not the mutex) is what gates a damaged log.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends one framed record. Returns whether the snapshot cadence is
    /// due. On a write error the partial frame is scrubbed back off the
    /// file (or the log is poisoned if even that fails), so the log never
    /// carries junk *between* valid records — only at the tail.
    fn append_payload(&self, payload: &[u8]) -> Result<bool> {
        let t0 = Instant::now();
        let mut g = self.lock();
        if g.poisoned {
            return Err(Error::Durability {
                detail: "write-ahead log poisoned by an earlier failed append".to_owned(),
            });
        }
        check_payload_size("record", payload)?;
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let path = wal_path(&self.cfg.dir, g.generation);
        let written = g
            .file
            .write_all(&frame)
            .and_then(|()| match self.cfg.fsync {
                FsyncPolicy::Always => g.file.sync_data(),
                FsyncPolicy::Never => Ok(()),
            });
        match written {
            Ok(()) => {
                g.offset += frame.len() as u64;
                g.batches_since_snapshot += 1;
                let registry = obs::global();
                registry.counter("engine.wal.appends").inc();
                registry
                    .counter("engine.wal.append_bytes")
                    .add(frame.len() as u64);
                registry
                    .histogram("engine.wal.append_ns")
                    .record(obs::elapsed_ns(t0));
                Ok(self.cfg.snapshot_every > 0
                    && g.batches_since_snapshot >= self.cfg.snapshot_every)
            }
            Err(e) => {
                let offset = g.offset;
                let scrubbed = g
                    .file
                    .set_len(offset)
                    .and_then(|()| g.file.seek(SeekFrom::Start(offset)).map(|_| ()));
                if scrubbed.is_err() {
                    g.poisoned = true;
                }
                Err(io_err("write-ahead log append failed on", &path, &e))
            }
        }
    }

    /// Appends a committed statement batch.
    pub(crate) fn append_batch(&self, stmts: &[Statement]) -> Result<bool> {
        self.append_payload(&encode_batch_payload(stmts))
    }

    /// Appends a committed migration: the new schema, the full
    /// post-migration state, and the version floors the swap established.
    pub(crate) fn append_migration(
        &self,
        schema: &RelationalSchema,
        state: &DatabaseState,
        versions: &[(String, u64)],
    ) -> Result<bool> {
        self.append_payload(&encode_migration_payload(schema, state, versions))
    }

    /// Installs `payload` as the next snapshot generation and switches the
    /// log over to a fresh, empty file. The new log is created *before*
    /// the snapshot rename makes generation `N+1` authoritative: if either
    /// step fails, generation `N` (snapshot + log) is still the newest
    /// valid pair on disk and appends keep landing in `wal-N.log`, which
    /// recovery will replay. The reverse order has a silent-loss mode —
    /// snapshot-`(N+1)` durably installed, `create_log_file` failing, and
    /// every commit acked into `wal-N.log` afterwards invisible to a
    /// recovery that picks snapshot `N+1` and finds no matching log. The
    /// previous generation is deleted only after the new one is fully
    /// durable; a crash mid-install leaves the old generation (plus at
    /// most a `.tmp` or unmatched-log leftover) to recover from.
    pub(crate) fn install_snapshot(&self, payload: &[u8]) -> Result<()> {
        let mut g = self.lock();
        let next = g.generation + 1;
        let file = create_log_file(&self.cfg, next)?;
        if let Err(e) = write_snapshot_file(&self.cfg, next, payload) {
            // Generation `next` never became authoritative — recovery keys
            // off snapshots — so the orphan log is cleanup, best effort.
            drop(file);
            let _ = fs::remove_file(wal_path(&self.cfg.dir, next));
            return Err(e);
        }
        let old = g.generation;
        g.file = file;
        g.generation = next;
        g.offset = WAL_MAGIC.len() as u64;
        g.batches_since_snapshot = 0;
        g.poisoned = false;
        // Best-effort cleanup: a leftover old generation is ignored by
        // recovery (it picks the newest valid snapshot).
        let _ = fs::remove_file(snap_path(&self.cfg.dir, old));
        let _ = fs::remove_file(wal_path(&self.cfg.dir, old));
        Ok(())
    }
}

/// Writes `snapshot-<gen>.snap` atomically: `.tmp` → fsync → rename →
/// fsync the directory.
fn write_snapshot_file(cfg: &DurabilityConfig, generation: u64, payload: &[u8]) -> Result<()> {
    check_payload_size("snapshot", payload)?;
    let final_path = snap_path(&cfg.dir, generation);
    let tmp_path = final_path.with_extension("snap.tmp");
    let mut body = Vec::with_capacity(SNAP_MAGIC.len() + FRAME_HEADER as usize + payload.len());
    body.extend_from_slice(SNAP_MAGIC);
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(&fnv1a(payload).to_le_bytes());
    body.extend_from_slice(payload);
    let written = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&body)?;
        if cfg.fsync == FsyncPolicy::Always {
            f.sync_all()?;
        }
        Ok(())
    })();
    if let Err(e) = written {
        let _ = fs::remove_file(&tmp_path);
        return Err(io_err("cannot write snapshot", &tmp_path, &e));
    }
    if let Err(e) = fs::rename(&tmp_path, &final_path) {
        let _ = fs::remove_file(&tmp_path);
        return Err(io_err("cannot install snapshot", &final_path, &e));
    }
    if cfg.fsync == FsyncPolicy::Always {
        // Make the rename itself durable. Directory fsync is advisory on
        // some filesystems; failure to open the dir is not fatal.
        if let Ok(d) = File::open(&cfg.dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Creates `wal-<gen>.log` holding just the magic header.
fn create_log_file(cfg: &DurabilityConfig, generation: u64) -> Result<File> {
    let path = wal_path(&cfg.dir, generation);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)
        .map_err(|e| io_err("cannot create write-ahead log", &path, &e))?;
    file.write_all(WAL_MAGIC)
        .and_then(|()| match cfg.fsync {
            FsyncPolicy::Always => file.sync_all(),
            FsyncPolicy::Never => Ok(()),
        })
        .map_err(|e| io_err("cannot initialize write-ahead log", &path, &e))?;
    Ok(file)
}

// ---------------------------------------------------------------------------
// Database wiring
// ---------------------------------------------------------------------------

impl Database {
    /// Per-relation modification versions, sorted by relation name.
    pub(crate) fn relation_versions(&self) -> Vec<(String, u64)> {
        self.tables
            .iter()
            .map(|(name, t)| (name.clone(), t.version))
            .collect()
    }

    /// Logs a committed statement batch to the WAL, if this database is
    /// durable. Called from inside the batch machinery's `catch_unwind`
    /// forward path *after* every check has passed — an error or injected
    /// panic here (site [`site::WAL_APPEND`]) takes the same rollback path
    /// a constraint violation does, so nothing un-logged ever becomes
    /// visible. Also drives the snapshot cadence.
    pub(crate) fn wal_append_batch(&mut self, stmts: &[Statement]) -> Result<()> {
        let Some(wal) = self.wal() else {
            return Ok(());
        };
        if wal.is_suspended() {
            return Ok(());
        }
        self.fault_check(site::WAL_APPEND)?;
        let snapshot_due = self.wal().expect("checked above").append_batch(stmts)?;
        if snapshot_due {
            self.wal_snapshot_contained();
        }
        Ok(())
    }

    /// Logs a committed migration (catalog record) to the WAL. Runs while
    /// the log is suspended for the migration's internal chunks — the one
    /// record captures the whole swap.
    pub(crate) fn wal_append_migration(&mut self) -> Result<()> {
        if self.wal().is_none() {
            return Ok(());
        }
        self.fault_check(site::WAL_APPEND)?;
        let schema = self.schema().clone();
        let state = self.snapshot()?;
        let versions = self.relation_versions();
        let snapshot_due = self
            .wal()
            .expect("checked above")
            .append_migration(&schema, &state, &versions)?;
        if snapshot_due {
            self.wal_snapshot_contained();
        }
        Ok(())
    }

    /// Installs a snapshot of the current state, *contained*: a failure —
    /// IO, injected error, or injected panic at [`site::SNAPSHOT_WRITE`] —
    /// is caught, counted (`engine.wal.snapshot_failures`), and swallowed.
    /// The committed batch that triggered the cadence is already durable
    /// in the log, and the previous generation stays intact, so a failed
    /// snapshot costs replay time, never correctness.
    pub(crate) fn wal_snapshot_contained(&self) {
        let Some(wal) = self.wal() else { return };
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
            self.fault_check(site::SNAPSHOT_WRITE)?;
            let payload = encode_snapshot(self)?;
            wal.install_snapshot(&payload)
        }))
        .unwrap_or_else(|payload| {
            Err(Error::ExecutionPanic {
                context: panic_message(payload),
            })
        });
        let registry = obs::global();
        match outcome {
            Ok(()) => {
                registry.counter("engine.wal.snapshots").inc();
                registry
                    .histogram("engine.wal.snapshot_ns")
                    .record(obs::elapsed_ns(t0));
            }
            Err(_) => {
                registry.counter("engine.wal.snapshot_failures").inc();
            }
        }
    }

    /// The write-ahead log's current position as `(generation, offset)` —
    /// the offset is the exact byte length of durably-acked log, so
    /// truncating the file anywhere below it simulates a crash mid-append
    /// (the crash-torture harness does exactly that). `None` on an
    /// in-memory database.
    #[must_use]
    pub fn wal_position(&self) -> Option<(u64, u64)> {
        self.wal().map(Wal::position)
    }

    /// Recovers a durable database from `config`'s data directory (the
    /// `durability` knob must be set): newest valid snapshot + WAL-suffix
    /// replay, tolerating a torn tail. See the module docs for the
    /// protocol and [`RecoveryReport`] for what comes back alongside the
    /// database.
    pub fn recover(config: EngineConfig) -> Result<(Database, RecoveryReport)> {
        Self::recover_with_faults(config, None)
    }

    /// [`Database::recover`] with a fault plan armed *for the recovery
    /// itself*: the plan's [`site::RECOVERY_REPLAY`] arms fire once per
    /// replayed record (error or panic mode). A fired fault aborts
    /// recovery before anything on disk has been modified, so the next
    /// attempt sees the same bytes — the torture harness asserts exactly
    /// that.
    pub fn recover_with_faults(
        config: EngineConfig,
        fault: Option<Arc<FaultPlan>>,
    ) -> Result<(Database, RecoveryReport)> {
        let registry = obs::global();
        registry.counter("engine.recovery.attempts").inc();
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            recover_inner(&config, fault.as_deref())
        }))
        .unwrap_or_else(|payload| {
            Err(Error::ExecutionPanic {
                context: panic_message(payload),
            })
        });
        match outcome {
            Ok((db, mut report)) => {
                report.replay_ns = obs::elapsed_ns(t0);
                registry
                    .counter("engine.recovery.replayed_records")
                    .add(report.records_replayed());
                registry
                    .histogram("engine.recovery.replay_ns")
                    .record(report.replay_ns);
                if report.torn_tail {
                    registry.counter("engine.recovery.torn_tails").inc();
                }
                Ok((db, report))
            }
            Err(e) => {
                registry.counter("engine.recovery.failures").inc();
                Err(e)
            }
        }
    }
}

/// The recovery body: everything here either succeeds completely or
/// leaves the on-disk files byte-identical to how it found them.
fn recover_inner(
    config: &EngineConfig,
    fault: Option<&FaultPlan>,
) -> Result<(Database, RecoveryReport)> {
    let cfg = config
        .get_durability()
        .cloned()
        .ok_or_else(|| corrupt("Database::recover requires EngineConfig::durability"))?;
    let generations = list_generations(&cfg.dir)?;
    if generations.is_empty() {
        return Err(Error::Durability {
            detail: format!(
                "data dir `{}` holds no snapshot; nothing to recover",
                cfg.dir.display()
            ),
        });
    }
    // Newest snapshot that verifies; fall back past invalid ones (an
    // interrupted install can leave at most damaged *newest* files).
    let mut picked: Option<(u64, SnapshotBody)> = None;
    for g in &generations {
        match read_snapshot(&snap_path(&cfg.dir, *g)) {
            Ok(body) => {
                picked = Some((*g, body));
                break;
            }
            Err(_) => {
                obs::global()
                    .counter("engine.recovery.invalid_snapshots")
                    .inc();
            }
        }
    }
    let Some((generation, body)) = picked else {
        return Err(Error::Durability {
            detail: format!(
                "data dir `{}`: no snapshot passed its checksum",
                cfg.dir.display()
            ),
        });
    };

    let mem_config = config.clone().durability(None);
    let mut db = Database::new_with_config(body.schema, body.profile, mem_config)?;
    // Unverified: recovery runs `verify_integrity` exactly once, after
    // the whole log suffix has replayed, instead of per load.
    db.load_state_unverified(&body.state)?;
    for (name, floor) in &body.versions {
        db.raise_relation_version(name, *floor);
    }

    // Replay the log suffix. The file is read fully up front; replay never
    // writes, so a fault fired mid-replay leaves the bytes untouched.
    let log_path = wal_path(&cfg.dir, generation);
    let bytes = match fs::read(&log_path) {
        Ok(b) => b,
        // The log is created before the snapshot rename, but its
        // directory entry can still be lost to a crash before the dir
        // fsync lands — no appends can have happened before the install
        // returned, so a missing log is an empty suffix.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("cannot read write-ahead log", &log_path, &e)),
    };
    let magic_len = WAL_MAGIC.len();
    let header_ok = bytes.len() >= magic_len && &bytes[..magic_len] == WAL_MAGIC;
    let mut pos = magic_len.min(bytes.len());
    let mut torn_tail = !header_ok && !bytes.is_empty() && bytes.len() < magic_len;
    if !header_ok && bytes.len() >= magic_len {
        return Err(corrupt(format!(
            "write-ahead log `{}` has a foreign header",
            log_path.display()
        )));
    }
    let mut batches = 0u64;
    let mut migrations = 0u64;
    if header_ok {
        loop {
            let remaining = bytes.len() - pos;
            if remaining == 0 {
                break;
            }
            if (remaining as u64) < FRAME_HEADER {
                torn_tail = true;
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4"));
            let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8"));
            let body_start = pos + FRAME_HEADER as usize;
            if len > MAX_RECORD_BYTES || body_start + len as usize > bytes.len() {
                torn_tail = true;
                break;
            }
            let payload = &bytes[body_start..body_start + len as usize];
            if fnv1a(payload) != sum {
                // A corrupted checksum ends the valid prefix exactly like
                // a short tail does.
                torn_tail = true;
                break;
            }
            if let Some(plan) = fault {
                plan.check(site::RECOVERY_REPLAY)?;
            }
            replay_record(&mut db, payload, &mut batches, &mut migrations)?;
            pos = body_start + len as usize;
        }
    }

    let report_integrity = db.verify_integrity();
    if !report_integrity.is_clean() {
        return Err(Error::Durability {
            detail: format!("recovered state failed integrity verification: {report_integrity}"),
        });
    }

    // Replay verified — only now touch the disk: drop the torn tail and
    // reopen the log for appending.
    let valid_offset = pos.max(magic_len) as u64;
    let truncated_bytes = (bytes.len() as u64).saturating_sub(valid_offset);
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(&log_path)
        .map_err(|e| io_err("cannot reopen write-ahead log", &log_path, &e))?;
    file.set_len(valid_offset)
        .map_err(|e| io_err("cannot truncate torn tail of", &log_path, &e))?;
    if !header_ok {
        file.write_all(WAL_MAGIC)
            .map_err(|e| io_err("cannot rewrite header of", &log_path, &e))?;
    }
    file.seek(SeekFrom::Start(valid_offset))
        .map_err(|e| io_err("cannot seek in", &log_path, &e))?;
    if cfg.fsync == FsyncPolicy::Always {
        file.sync_data()
            .map_err(|e| io_err("cannot fsync", &log_path, &e))?;
    }
    let wal = Wal {
        cfg,
        inner: Mutex::new(WalInner {
            file,
            generation,
            offset: valid_offset,
            batches_since_snapshot: 0,
            poisoned: false,
        }),
        suspended: AtomicBool::new(false),
    };
    db.set_wal(Some(wal));
    let report = RecoveryReport {
        generation,
        batches_replayed: batches,
        migrations_replayed: migrations,
        torn_tail,
        truncated_bytes,
        wal_bytes_replayed: valid_offset - magic_len as u64,
        replay_ns: 0, // stamped by the caller
    };
    Ok((db, report))
}

/// Applies one decoded WAL record to the database being rebuilt — through
/// the same execution paths that produced it.
fn replay_record(
    db: &mut Database,
    payload: &[u8],
    batches: &mut u64,
    migrations: &mut u64,
) -> Result<()> {
    let mut d = Dec::new(payload);
    match d.u8()? {
        REC_BATCH => {
            let stmts: Result<Vec<Statement>> = (0..d.count()?).map(|_| d.statement()).collect();
            let stmts = stmts?;
            d.done()?;
            // The profile is the one the record was committed under, so
            // `apply_batch` re-runs the exact mode (deferred or immediate)
            // the original commit used.
            db.apply_batch(&stmts).map_err(Error::from)?;
            *batches += 1;
        }
        REC_MIGRATION => {
            let schema = d.schema()?;
            let state = d.state()?;
            let versions = d.versions()?;
            d.done()?;
            // Mirror the live migration protocol: shared `compile_catalog`,
            // cache purge, atomic swap, version floors, then the data.
            let catalog = compile_catalog(&schema, &db.profile().clone(), "Database::recover")?;
            db.clear_build_cache();
            db.swap_catalog(schema, catalog);
            for (name, floor) in &versions {
                db.raise_relation_version(name, *floor);
            }
            // Unverified: auditing here would make replay O(records ×
            // state size); `recover_inner` deep-checks once at the end.
            db.load_state_unverified(&state)?;
            for (name, floor) in &versions {
                db.raise_relation_version(name, *floor);
            }
            *migrations += 1;
        }
        other => {
            return Err(corrupt(format!(
                "unknown record tag {other} (checksum valid — incompatible log format?)"
            )))
        }
    }
    Ok(())
}

/// Reads and verifies one snapshot file.
fn read_snapshot(path: &Path) -> Result<SnapshotBody> {
    let mut f = File::open(path).map_err(|e| io_err("cannot open snapshot", path, &e))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(|e| io_err("cannot read snapshot", path, &e))?;
    let magic_len = SNAP_MAGIC.len();
    let header = magic_len + FRAME_HEADER as usize;
    if bytes.len() < header || &bytes[..magic_len] != SNAP_MAGIC {
        return Err(corrupt(format!(
            "snapshot `{}` is truncated or foreign",
            path.display()
        )));
    }
    let len = u32::from_le_bytes(bytes[magic_len..magic_len + 4].try_into().expect("4"));
    let sum = u64::from_le_bytes(bytes[magic_len + 4..magic_len + 12].try_into().expect("8"));
    if len > MAX_RECORD_BYTES || header + len as usize != bytes.len() {
        return Err(corrupt(format!(
            "snapshot `{}` length field disagrees with the file",
            path.display()
        )));
    }
    let payload = &bytes[header..];
    if fnv1a(payload) != sum {
        return Err(corrupt(format!(
            "snapshot `{}` failed its checksum",
            path.display()
        )));
    }
    decode_snapshot(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DmlError;
    use crate::fault::FaultMode;
    use relmerge_relational::{Attribute, Domain};

    fn attr(name: &str) -> Attribute {
        Attribute::new(name, Domain::Int)
    }

    /// P(P.K) ← C(C.K, C.FK): enough structure to exercise every codec arm
    /// that the university schema doesn't.
    fn schema() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("P", vec![attr("P.K")], &["P.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("C", vec![attr("C.K"), attr("C.FK")], &["C.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("P", &["P.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("C", &["C.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("C", &["C.FK"], "P", &["P.K"]))
            .unwrap();
        rs
    }

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
    }

    fn durable_config(dir: &Path) -> EngineConfig {
        EngineConfig::default()
            .parallelism(1)
            .durability(Some(DurabilityConfig::new(dir).snapshot_every(4)))
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("relmerge-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn statement_codec_round_trips() {
        let stmts = vec![
            Statement::insert(
                "R",
                Tuple::new([Value::Null, Value::text("x"), Value::Int(-7)]),
            ),
            Statement::delete("S", Tuple::new([Value::Bool(true), Value::Date(11_111)])),
            Statement::update("T", tup(&[1]), tup(&[1, 2])),
        ];
        let payload = encode_batch_payload(&stmts);
        let mut d = Dec::new(&payload);
        assert_eq!(d.u8().unwrap(), REC_BATCH);
        let n = d.count().unwrap();
        let back: Vec<Statement> = (0..n).map(|_| d.statement().unwrap()).collect();
        d.done().unwrap();
        assert_eq!(back, stmts);
    }

    #[test]
    fn schema_and_profile_codec_round_trip() {
        let mut rs = schema();
        rs.add_null_constraint(NullConstraint::ns("C", &["C.K", "C.FK"]))
            .unwrap();
        rs.add_fd(Fd::new("C", &["C.K"], &["C.FK"])).unwrap();
        let mut e = Enc::new();
        e.schema(&rs);
        let mut d = Dec::new(&e.buf);
        let back = d.schema().unwrap();
        d.done().unwrap();
        assert_eq!(back, rs);
        for profile in [
            DbmsProfile::db2(),
            DbmsProfile::sybase40(),
            DbmsProfile::ingres63(),
            DbmsProfile::ideal(),
        ] {
            let mut e = Enc::new();
            e.profile(&profile);
            let mut d = Dec::new(&e.buf);
            assert_eq!(d.profile().unwrap(), profile);
        }
    }

    #[test]
    fn corrupt_payloads_decode_to_typed_errors_not_panics() {
        // Truncations and bit flips of a valid payload must all fail
        // gracefully.
        let stmts = vec![Statement::insert("R", tup(&[1, 2, 3]))];
        let payload = encode_batch_payload(&stmts);
        for cut in 0..payload.len() {
            let mut d = Dec::new(&payload[..cut]);
            let r = (|| -> Result<()> {
                d.u8()?;
                for _ in 0..d.count()? {
                    d.statement()?;
                }
                d.done()
            })();
            assert!(r.is_err(), "prefix of {cut} bytes decoded");
        }
        for i in 0..payload.len() {
            let mut broken = payload.clone();
            broken[i] ^= 0xFF;
            let mut d = Dec::new(&broken);
            let _ = (|| -> Result<Vec<Statement>> {
                d.u8()?;
                (0..d.count()?).map(|_| d.statement()).collect()
            })(); // may succeed (data bytes) or fail (structure bytes) — must not panic
        }
    }

    #[test]
    fn initialize_append_recover_round_trips() {
        let dir = tempdir("roundtrip");
        // Cadence high enough that no snapshot fires: all three commits
        // must come back from the log itself.
        let cfg = EngineConfig::default()
            .parallelism(1)
            .durability(Some(DurabilityConfig::new(&dir).snapshot_every(100)));
        let mut db =
            Database::new_with_config(schema(), DbmsProfile::ideal(), cfg.clone()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        db.insert("C", tup(&[10, 1])).unwrap();
        db.apply_batch(&[
            Statement::insert("P", tup(&[2])),
            Statement::insert("C", tup(&[20, 2])),
        ])
        .unwrap();
        db.transaction(|tx| {
            tx.insert("P", tup(&[3]))?;
            tx.update_by_key("C", &tup(&[20]), tup(&[20, 3]))?;
            Ok(())
        })
        .unwrap();
        let expect = db.snapshot().unwrap();
        drop(db); // "crash": nothing flushed beyond what append made durable

        let (recovered, report) = Database::recover(cfg).unwrap();
        assert_eq!(recovered.snapshot().unwrap(), expect);
        assert!(recovered.verify_integrity().is_clean());
        assert!(!report.torn_tail);
        // Two single inserts + one batch + one transaction = 4 records.
        assert_eq!(report.batches_replayed, 4, "{report}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_cadence_truncates_log_and_recovers() {
        let dir = tempdir("cadence");
        let mut db =
            Database::new_with_config(schema(), DbmsProfile::ideal(), durable_config(&dir))
                .unwrap();
        for k in 0..10 {
            db.insert("P", tup(&[k])).unwrap();
        }
        // snapshot_every = 4 → at least two generations have passed.
        let (generation, _) = db.wal().unwrap().position();
        assert!(generation >= 2, "generation {generation}");
        let expect = db.snapshot().unwrap();
        drop(db);
        let (recovered, report) = Database::recover(durable_config(&dir)).unwrap();
        assert_eq!(recovered.snapshot().unwrap(), expect);
        assert_eq!(report.generation, generation);
        assert!(
            report.batches_replayed < 10,
            "snapshots must bound replay, got {report}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_to_last_acked_prefix() {
        let dir = tempdir("torn");
        let cfg = EngineConfig::default()
            .parallelism(1)
            .durability(Some(DurabilityConfig::new(&dir).snapshot_every(0)));
        let mut db =
            Database::new_with_config(schema(), DbmsProfile::ideal(), cfg.clone()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        let after_first = db.snapshot().unwrap();
        let (generation, acked) = db.wal().unwrap().position();
        db.insert("P", tup(&[2])).unwrap();
        drop(db);
        // Tear the second record in half.
        let log = wal_path(&dir, generation);
        let f = OpenOptions::new().write(true).open(&log).unwrap();
        f.set_len(acked + 5).unwrap();
        drop(f);
        let (recovered, report) = Database::recover(cfg.clone()).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.truncated_bytes, 5);
        assert_eq!(recovered.snapshot().unwrap(), after_first);
        // The torn bytes are gone: appending and recovering again works.
        let mut recovered = recovered;
        recovered.insert("P", tup(&[3])).unwrap();
        let expect = recovered.snapshot().unwrap();
        drop(recovered);
        let (again, report) = Database::recover(cfg).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(again.snapshot().unwrap(), expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_append_fault_rolls_batch_back_error_and_panic() {
        for mode in [FaultMode::Error, FaultMode::Panic] {
            let dir = tempdir(&format!("appendfault-{}", mode.label()));
            let cfg = durable_config(&dir);
            let mut db =
                Database::new_with_config(schema(), DbmsProfile::ideal(), cfg.clone()).unwrap();
            db.insert("P", tup(&[1])).unwrap();
            let pre = db.snapshot().unwrap();
            let plan = db.set_fault_plan(FaultPlan::new().fail_at(site::WAL_APPEND, 0, mode));
            let err = db
                .apply_batch(&[Statement::insert("P", tup(&[2]))])
                .unwrap_err();
            match mode {
                FaultMode::Error => assert!(matches!(
                    err.root_cause(),
                    DmlError::Schema(Error::Injected { .. })
                )),
                FaultMode::Panic => assert!(matches!(
                    err.root_cause(),
                    DmlError::Schema(Error::ExecutionPanic { .. })
                )),
            }
            assert_eq!(plan.total_fired(), 1);
            assert_eq!(
                db.snapshot().unwrap(),
                pre,
                "un-logged commit became visible"
            );
            assert!(db.verify_integrity().is_clean());
            db.clear_fault_plan();
            drop(db);
            // And the log carries only the first insert.
            let (recovered, _) = Database::recover(cfg).unwrap();
            assert_eq!(recovered.snapshot().unwrap(), pre);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn snapshot_fault_is_contained_error_and_panic() {
        for mode in [FaultMode::Error, FaultMode::Panic] {
            let dir = tempdir(&format!("snapfault-{}", mode.label()));
            let cfg = EngineConfig::default()
                .parallelism(1)
                .durability(Some(DurabilityConfig::new(&dir).snapshot_every(1)));
            let mut db =
                Database::new_with_config(schema(), DbmsProfile::ideal(), cfg.clone()).unwrap();
            let plan = db.set_fault_plan(FaultPlan::new().fail_at(site::SNAPSHOT_WRITE, 0, mode));
            // The batch still commits: snapshot failure costs replay, not data.
            db.insert("P", tup(&[1])).unwrap();
            assert_eq!(plan.fired(site::SNAPSHOT_WRITE), 1);
            db.clear_fault_plan();
            db.insert("P", tup(&[2])).unwrap(); // this one snapshots fine
            let expect = db.snapshot().unwrap();
            drop(db);
            let (recovered, _) = Database::recover(cfg).unwrap();
            assert_eq!(recovered.snapshot().unwrap(), expect);
            assert!(recovered.verify_integrity().is_clean());
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn recovery_fault_leaves_retry_clean_error_and_panic() {
        for mode in [FaultMode::Error, FaultMode::Panic] {
            let dir = tempdir(&format!("recfault-{}", mode.label()));
            let cfg = EngineConfig::default()
                .parallelism(1)
                .durability(Some(DurabilityConfig::new(&dir).snapshot_every(0)));
            let mut db =
                Database::new_with_config(schema(), DbmsProfile::ideal(), cfg.clone()).unwrap();
            db.insert("P", tup(&[1])).unwrap();
            db.insert("P", tup(&[2])).unwrap();
            let expect = db.snapshot().unwrap();
            drop(db);
            let plan = Arc::new(FaultPlan::new().fail_at(site::RECOVERY_REPLAY, 1, mode));
            let err = Database::recover_with_faults(cfg.clone(), Some(Arc::clone(&plan)))
                .err()
                .expect("recovery must fail while the fault is armed");
            match mode {
                FaultMode::Error => assert!(matches!(err, Error::Injected { .. }), "{err}"),
                FaultMode::Panic => {
                    assert!(matches!(err, Error::ExecutionPanic { .. }), "{err}");
                }
            }
            assert_eq!(plan.total_fired(), 1);
            // The failed attempt modified nothing on disk: retry succeeds.
            let (recovered, report) = Database::recover(cfg).unwrap();
            assert_eq!(recovered.snapshot().unwrap(), expect);
            assert!(recovered.verify_integrity().is_clean());
            assert_eq!(report.batches_replayed, 2);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn failed_log_creation_aborts_the_snapshot_install() {
        let dir = tempdir("badlog");
        let cfg = EngineConfig::default()
            .parallelism(1)
            .durability(Some(DurabilityConfig::new(&dir).snapshot_every(2)));
        let mut db =
            Database::new_with_config(schema(), DbmsProfile::ideal(), cfg.clone()).unwrap();
        db.insert("P", tup(&[1])).unwrap();
        // Block generation 1's log with a directory of the same name: the
        // cadence install must now fail *before* snapshot-1 exists. With
        // the reverse order, a durable snapshot-1 without wal-1.log would
        // make recovery silently drop every commit acked after it.
        fs::create_dir_all(wal_path(&dir, 1)).unwrap();
        db.insert("P", tup(&[2])).unwrap(); // cadence fires; install fails, contained
        db.insert("P", tup(&[3])).unwrap(); // still acked into wal-0
        assert!(
            !snap_path(&dir, 1).exists(),
            "snapshot-1 must not be installed without its log"
        );
        let expect = db.snapshot().unwrap();
        drop(db);
        let _ = fs::remove_dir(wal_path(&dir, 1));
        let (recovered, report) = Database::recover(cfg).unwrap();
        assert_eq!(report.generation, 0);
        assert_eq!(recovered.snapshot().unwrap(), expect);
        assert!(recovered.verify_integrity().is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payloads_are_rejected_at_write_time() {
        let dir = tempdir("oversized");
        let cfg = DurabilityConfig::new(&dir);
        let db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
        let wal = Wal::initialize(cfg.clone(), &db).unwrap();
        // Zero-filled, so the allocation is cheap; the guard fires before
        // any checksum or frame is built.
        let huge = vec![0u8; MAX_RECORD_BYTES as usize + 1];
        let err = wal.append_payload(&huge).unwrap_err();
        assert!(matches!(err, Error::Durability { .. }), "{err}");
        // The rejection is clean — nothing was written, the log is not
        // poisoned, and normal-sized appends still work.
        assert!(wal.append_payload(b"ok").is_ok());
        let err = write_snapshot_file(&cfg, 1, &huge).unwrap_err();
        assert!(matches!(err, Error::Durability { .. }), "{err}");
        assert!(!snap_path(&dir, 1).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn initialize_refuses_an_initialized_dir() {
        let dir = tempdir("refuse");
        let cfg = durable_config(&dir);
        let db = Database::new_with_config(schema(), DbmsProfile::ideal(), cfg.clone()).unwrap();
        drop(db);
        assert!(is_initialized(&dir));
        let err = Database::new_with_config(schema(), DbmsProfile::ideal(), cfg)
            .err()
            .expect("an initialized dir must be refused");
        assert!(matches!(err, Error::Durability { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clone_is_an_in_memory_fork() {
        let dir = tempdir("clone");
        let mut db =
            Database::new_with_config(schema(), DbmsProfile::ideal(), durable_config(&dir))
                .unwrap();
        db.insert("P", tup(&[1])).unwrap();
        let mut fork = db.clone();
        assert!(fork.wal().is_none());
        fork.insert("P", tup(&[99])).unwrap(); // not logged
        drop(fork);
        let expect = db.snapshot().unwrap();
        drop(db);
        let (recovered, _) = Database::recover(durable_config(&dir)).unwrap();
        assert_eq!(recovered.snapshot().unwrap(), expect);
        let _ = fs::remove_dir_all(&dir);
    }
}
