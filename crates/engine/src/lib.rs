//! A constraint-enforcing in-memory storage engine with DBMS capability
//! profiles and a costed query executor.
//!
//! This crate stands in for the proprietary systems the paper targets
//! (DB2, SYBASE 4.0, INGRES 6.3): each is modelled as a [`DbmsProfile`]
//! describing which constraint classes it maintains and through which
//! mechanism ([`capability`]); [`Database`] enforces a schema's
//! dependencies and null constraints on DML through the corresponding tier,
//! counting the work ([`database`]); and [`query`] executes point lookups
//! and joins with cost counters, quantifying the paper's §1 claim that
//! merging reduces joins and improves access performance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capability;
pub mod database;
pub mod planner;
pub mod query;
pub mod txn;

pub use capability::{DbmsProfile, Mechanism};
pub use database::{Database, DmlError, MaintenanceStats};
pub use planner::{plan, LogicalQuery};
pub use query::{
    execute, execute_traced, Access, JoinStep, OpKind, OpStats, OpTrace, Predicate, QueryPlan,
    QueryStats, QueryTrace,
};
pub use txn::Transaction;
