//! A constraint-enforcing in-memory storage engine with DBMS capability
//! profiles and a costed query executor.
//!
//! This crate stands in for the proprietary systems the paper targets
//! (DB2, SYBASE 4.0, INGRES 6.3): each is modelled as a [`DbmsProfile`]
//! describing which constraint classes it maintains and through which
//! mechanism ([`capability`]); [`Database`] enforces a schema's
//! dependencies and null constraints on DML through the corresponding tier,
//! counting the work ([`database`]); [`query`] executes point lookups
//! and joins with cost counters, quantifying the paper's §1 claim that
//! merging reduces joins and improves access performance — every
//! successful execution also folds into the database's shared workload
//! profiler, keyed by the canonical plan fingerprint
//! ([`planner::fingerprint`]), feeding the hot-join report the merge
//! advisor consumes; and [`batch`]
//! provides the unified [`Statement`] DML path with all-or-nothing batches
//! and deferred, group-validated constraint checking. The [`fault`] module
//! makes failure itself testable: deterministic fault injection, query
//! budgets, and the deep integrity checker behind
//! [`Database::verify_integrity`]. The [`predopt`] module is the boolean
//! predicate optimizer whose canonical conjunct partition drives
//! cross-operator pushdown in the executor. The [`wal`] module adds
//! durability: a checksummed write-ahead log plus periodic snapshots
//! (opt in via [`EngineConfig::durability`]), with crash recovery through
//! [`Database::recover`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod build;
pub mod capability;
pub mod database;
pub mod fault;
pub mod migrate;
pub mod planner;
pub mod predopt;
pub mod query;
pub mod session;
pub mod txn;
pub mod wal;

pub use batch::{BatchOutcome, Statement, StatementOutcome};
pub use capability::{DbmsProfile, Mechanism};
pub use database::{
    Database, DmlError, EngineConfig, MaintenanceStats, DEFAULT_BUILD_CACHE_BYTES,
    DEFAULT_BUILD_PARALLEL_THRESHOLD, DEFAULT_HASH_JOIN_THRESHOLD, DEFAULT_MORSEL_ROWS,
};
pub use fault::{
    FaultMode, FaultPlan, IntegrityKind, IntegrityReport, IntegrityViolation, QueryBudget,
};
pub use migrate::{AdvisedMigration, MigrationReport};
pub use planner::{choose_join_strategy, fingerprint, plan, JoinStrategy, LogicalQuery};
pub use predopt::{canonical_shape, conjoin, conjuncts, optimize, Optimized};
#[allow(deprecated)]
pub use query::{execute, execute_traced};
pub use query::{
    Access, CompiledPredicate, JoinStep, OpKind, OpStats, OpTrace, Predicate, QueryPlan,
    QueryStats, QueryTrace,
};
pub use session::{Session, Snapshot, Store};
pub use txn::Transaction;
pub use wal::{DurabilityConfig, FsyncPolicy, RecoveryReport, DEFAULT_SNAPSHOT_EVERY};
