//! Mixed DML/query operation streams for the university workload — the
//! B6 experiment's input: the same logical operation sequence executed
//! against the unmerged (Figure 3) and merged (`COURSE_M`) databases.

use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge_obs as obs;

/// One logical operation on the university domain, schema-independent.
#[derive(Debug, Clone, PartialEq)]
pub enum UniversityOp {
    /// Read one course with its offer/teacher/assistant.
    CourseDetail {
        /// The course number probed.
        nr: i64,
    },
    /// Reverse lookup: all courses taught by a faculty member.
    ByFaculty {
        /// The faculty SSN probed.
        ssn: i64,
    },
    /// Register a new course, offered by a department, optionally taught.
    AddCourse {
        /// The new course number.
        nr: i64,
        /// The offering department (index into the generated departments).
        dept: usize,
        /// Teacher SSN, if taught.
        teacher: Option<i64>,
    },
    /// Withdraw a course entirely.
    DropCourse {
        /// The course number dropped.
        nr: i64,
    },
}

/// Ratios of the operation mix (need not sum to 1; they are weighted).
#[derive(Debug, Clone, Copy)]
pub struct MixSpec {
    /// Weight of [`UniversityOp::CourseDetail`].
    pub point_reads: f64,
    /// Weight of [`UniversityOp::ByFaculty`].
    pub reverse_reads: f64,
    /// Weight of [`UniversityOp::AddCourse`].
    pub inserts: f64,
    /// Weight of [`UniversityOp::DropCourse`].
    pub deletes: f64,
}

impl Default for MixSpec {
    /// A read-mostly mix (80/10/7/3).
    fn default() -> Self {
        MixSpec {
            point_reads: 0.80,
            reverse_reads: 0.10,
            inserts: 0.07,
            deletes: 0.03,
        }
    }
}

/// Generates `n` operations over a university instance with `courses`
/// base courses, `departments` departments, and `faculty` teachers
/// (SSNs starting at 10 000). New course numbers start above the base
/// range so inserts never collide with generated data.
pub fn university_ops(
    spec: &MixSpec,
    n: usize,
    courses: usize,
    departments: usize,
    faculty: usize,
    rng: &mut StdRng,
) -> Vec<UniversityOp> {
    let _span = obs::span("workload.university_ops").field("n", n);
    obs::global()
        .counter("workload.ops_generated")
        .add(n as u64);
    let total = spec.point_reads + spec.reverse_reads + spec.inserts + spec.deletes;
    let mut next_new = 1_000_000i64;
    let mut added: Vec<i64> = Vec::new();
    (0..n)
        .map(|_| {
            let roll = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            if roll < spec.point_reads {
                UniversityOp::CourseDetail {
                    nr: rng.gen_range(0..courses.max(1) as i64),
                }
            } else if roll < spec.point_reads + spec.reverse_reads {
                UniversityOp::ByFaculty {
                    ssn: 10_000 + rng.gen_range(0..faculty.max(1) as i64),
                }
            } else if roll < spec.point_reads + spec.reverse_reads + spec.inserts {
                let nr = next_new;
                next_new += 1;
                added.push(nr);
                UniversityOp::AddCourse {
                    nr,
                    dept: rng.gen_range(0..departments.max(1)),
                    teacher: if rng.gen_bool(0.5) {
                        Some(10_000 + rng.gen_range(0..faculty.max(1) as i64))
                    } else {
                        None
                    },
                }
            } else {
                // Prefer dropping something we added (known droppable).
                match added.pop() {
                    Some(nr) => UniversityOp::DropCourse { nr },
                    None => UniversityOp::CourseDetail {
                        nr: rng.gen_range(0..courses.max(1) as i64),
                    },
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_ratios_roughly_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        let ops = university_ops(&MixSpec::default(), 10_000, 100, 10, 40, &mut rng);
        let reads = ops
            .iter()
            .filter(|o| matches!(o, UniversityOp::CourseDetail { .. }))
            .count();
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, UniversityOp::AddCourse { .. }))
            .count();
        assert!((7_600..8_400).contains(&reads), "{reads}");
        assert!((500..900).contains(&inserts), "{inserts}");
    }

    #[test]
    fn drops_only_follow_adds() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = MixSpec {
            point_reads: 0.0,
            reverse_reads: 0.0,
            inserts: 0.5,
            deletes: 0.5,
        };
        let ops = university_ops(&spec, 1_000, 10, 2, 5, &mut rng);
        let mut live: std::collections::HashSet<i64> = std::collections::HashSet::new();
        for op in &ops {
            match op {
                UniversityOp::AddCourse { nr, .. } => {
                    assert!(live.insert(*nr), "fresh course numbers only");
                }
                UniversityOp::DropCourse { nr } => {
                    assert!(live.remove(nr), "drop only what was added");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let spec = MixSpec::default();
        let a = university_ops(&spec, 100, 50, 5, 10, &mut StdRng::seed_from_u64(9));
        let b = university_ops(&spec, 100, 50, 5, 10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
