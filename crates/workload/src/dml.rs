//! Mixed DML/query operation streams for the university workload — the
//! B6 experiment's input: the same logical operation sequence executed
//! against the unmerged (Figure 3) and merged (`COURSE_M`) databases —
//! plus lowering of the write operations into engine [`Statement`]
//! batches for the batched-DML experiment.

use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge_engine::Statement;
use relmerge_obs as obs;
use relmerge_relational::{Tuple, Value};

/// One logical operation on the university domain, schema-independent.
#[derive(Debug, Clone, PartialEq)]
pub enum UniversityOp {
    /// Read one course with its offer/teacher/assistant.
    CourseDetail {
        /// The course number probed.
        nr: i64,
    },
    /// Reverse lookup: all courses taught by a faculty member.
    ByFaculty {
        /// The faculty SSN probed.
        ssn: i64,
    },
    /// Register a new course, offered by a department, optionally taught.
    AddCourse {
        /// The new course number.
        nr: i64,
        /// The offering department (index into the generated departments).
        dept: usize,
        /// Teacher SSN, if taught.
        teacher: Option<i64>,
    },
    /// Withdraw a course entirely.
    DropCourse {
        /// The course number dropped.
        nr: i64,
    },
}

/// Ratios of the operation mix (need not sum to 1; they are weighted).
#[derive(Debug, Clone, Copy)]
pub struct MixSpec {
    /// Weight of [`UniversityOp::CourseDetail`].
    pub point_reads: f64,
    /// Weight of [`UniversityOp::ByFaculty`].
    pub reverse_reads: f64,
    /// Weight of [`UniversityOp::AddCourse`].
    pub inserts: f64,
    /// Weight of [`UniversityOp::DropCourse`].
    pub deletes: f64,
}

impl Default for MixSpec {
    /// A read-mostly mix (80/10/7/3).
    fn default() -> Self {
        MixSpec {
            point_reads: 0.80,
            reverse_reads: 0.10,
            inserts: 0.07,
            deletes: 0.03,
        }
    }
}

impl MixSpec {
    /// A write-only mix (70% inserts, 30% deletes) — every operation
    /// lowers to statements, so torture harnesses get a dense statement
    /// stream without read-op padding.
    #[must_use]
    pub fn write_only() -> Self {
        MixSpec {
            point_reads: 0.0,
            reverse_reads: 0.0,
            inserts: 0.70,
            deletes: 0.30,
        }
    }
}

/// Parameters of a Zipf-skewed read-only stream ([`skewed_reads`]).
#[derive(Debug, Clone, Copy)]
pub struct SkewSpec {
    /// Zipf exponent: rank-`i` keys draw with weight `1/(i+1)^theta`.
    /// `0.0` degenerates to a uniform mix; `~1.0` is classic Zipf.
    pub theta: f64,
    /// Fraction of the stream that are [`UniversityOp::CourseDetail`]
    /// probes; the remainder are [`UniversityOp::ByFaculty`].
    pub point_share: f64,
}

impl Default for SkewSpec {
    /// Hot-key heavy: Zipf `theta = 1.1`, 75% point reads.
    fn default() -> Self {
        SkewSpec {
            theta: 1.1,
            point_share: 0.75,
        }
    }
}

/// Cumulative Zipf weights over ranks `0..k`: `w(i) = 1/(i+1)^theta`.
fn zipf_cdf(k: usize, theta: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (0..k.max(1))
        .map(|i| {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            acc
        })
        .collect()
}

/// Draws a rank from the distribution described by `cdf`.
fn sample_rank(cdf: &[f64], rng: &mut StdRng) -> usize {
    let total = *cdf.last().expect("cdf is non-empty");
    let roll = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    cdf.partition_point(|&c| c <= roll).min(cdf.len() - 1)
}

/// Generates `n` read-only operations whose key popularity is
/// Zipf-skewed: low course numbers and low faculty SSNs are hot, with
/// rank-`i` keys drawn with weight `1/(i+1)^theta`. This is the B14
/// profiler workload — a skewed mix makes the hot-join ranking
/// non-trivial while staying deterministic under the seed.
pub fn skewed_reads(
    spec: &SkewSpec,
    n: usize,
    courses: usize,
    faculty: usize,
    rng: &mut StdRng,
) -> Vec<UniversityOp> {
    let _span = obs::span("workload.skewed_reads").field("n", n);
    obs::global()
        .counter("workload.ops_generated")
        .add(n as u64);
    let course_cdf = zipf_cdf(courses, spec.theta);
    let faculty_cdf = zipf_cdf(faculty, spec.theta);
    (0..n)
        .map(|_| {
            if rng.gen_bool(spec.point_share.clamp(0.0, 1.0)) {
                UniversityOp::CourseDetail {
                    nr: sample_rank(&course_cdf, rng) as i64,
                }
            } else {
                UniversityOp::ByFaculty {
                    ssn: 10_000 + sample_rank(&faculty_cdf, rng) as i64,
                }
            }
        })
        .collect()
}

/// Generates `n` operations over a university instance with `courses`
/// base courses, `departments` departments, and `faculty` teachers
/// (SSNs starting at 10 000). New course numbers start above the base
/// range so inserts never collide with generated data.
pub fn university_ops(
    spec: &MixSpec,
    n: usize,
    courses: usize,
    departments: usize,
    faculty: usize,
    rng: &mut StdRng,
) -> Vec<UniversityOp> {
    let _span = obs::span("workload.university_ops").field("n", n);
    obs::global()
        .counter("workload.ops_generated")
        .add(n as u64);
    let total = spec.point_reads + spec.reverse_reads + spec.inserts + spec.deletes;
    let mut next_new = 1_000_000i64;
    let mut added: Vec<i64> = Vec::new();
    (0..n)
        .map(|_| {
            let roll = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            if roll < spec.point_reads {
                UniversityOp::CourseDetail {
                    nr: rng.gen_range(0..courses.max(1) as i64),
                }
            } else if roll < spec.point_reads + spec.reverse_reads {
                UniversityOp::ByFaculty {
                    ssn: 10_000 + rng.gen_range(0..faculty.max(1) as i64),
                }
            } else if roll < spec.point_reads + spec.reverse_reads + spec.inserts {
                let nr = next_new;
                next_new += 1;
                added.push(nr);
                UniversityOp::AddCourse {
                    nr,
                    dept: rng.gen_range(0..departments.max(1)),
                    teacher: if rng.gen_bool(0.5) {
                        Some(10_000 + rng.gen_range(0..faculty.max(1) as i64))
                    } else {
                        None
                    },
                }
            } else {
                // Prefer dropping something we added (known droppable).
                match added.pop() {
                    Some(nr) => UniversityOp::DropCourse { nr },
                    None => UniversityOp::CourseDetail {
                        nr: rng.gen_range(0..courses.max(1) as i64),
                    },
                }
            }
        })
        .collect()
}

/// Lowers one logical write op into its statements against the unmerged
/// (Figure 3) schema, parent-first: a course bundle is `COURSE`, `OFFER`,
/// and optionally `TEACH`; a drop deletes children before the course.
/// Read operations lower to no statements.
#[must_use]
pub fn unmerged_statements(op: &UniversityOp) -> Vec<Statement> {
    match op {
        UniversityOp::CourseDetail { .. } | UniversityOp::ByFaculty { .. } => Vec::new(),
        UniversityOp::AddCourse { nr, dept, teacher } => {
            let nrv = Value::Int(*nr);
            let mut stmts = vec![
                Statement::insert("COURSE", Tuple::new([nrv.clone()])),
                Statement::insert(
                    "OFFER",
                    Tuple::new([nrv.clone(), Value::text(format!("dept{dept}"))]),
                ),
            ];
            if let Some(t) = teacher {
                stmts.push(Statement::insert(
                    "TEACH",
                    Tuple::new([nrv, Value::Int(*t)]),
                ));
            }
            stmts
        }
        UniversityOp::DropCourse { nr } => {
            let key = Tuple::new([Value::Int(*nr)]);
            vec![
                Statement::delete("TEACH", key.clone()),
                Statement::delete("ASSIST", key.clone()),
                Statement::delete("OFFER", key.clone()),
                Statement::delete("COURSE", key),
            ]
        }
    }
}

/// Lowers one logical write op into its statements against the merged
/// `COURSE_M` schema: a course bundle is a single wide insert (assistant
/// always null — `AddCourse` does not assign one), a drop a single delete.
#[must_use]
pub fn merged_statements(op: &UniversityOp) -> Vec<Statement> {
    match op {
        UniversityOp::CourseDetail { .. } | UniversityOp::ByFaculty { .. } => Vec::new(),
        UniversityOp::AddCourse { nr, dept, teacher } => {
            vec![Statement::insert(
                "COURSE_M",
                Tuple::new([
                    Value::Int(*nr),
                    Value::text(format!("dept{dept}")),
                    teacher.map_or(Value::Null, Value::Int),
                    Value::Null,
                ]),
            )]
        }
        UniversityOp::DropCourse { nr } => {
            vec![Statement::delete("COURSE_M", Tuple::new([Value::Int(*nr)]))]
        }
    }
}

/// Splits the write statements of `ops` into batches of at most
/// `batch_size` statements (minimum 1), lowering through `merged` or
/// unmerged form. A logical operation's statements are never split across
/// batches, so every batch is applicable atomically; statement order is
/// preserved, keeping the stream equivalent to per-statement execution.
#[must_use]
pub fn write_batches(ops: &[UniversityOp], merged: bool, batch_size: usize) -> Vec<Vec<Statement>> {
    let mut span = obs::span("workload.write_batches");
    span.add_field("ops", ops.len());
    let cap = batch_size.max(1);
    let mut batches: Vec<Vec<Statement>> = Vec::new();
    let mut current: Vec<Statement> = Vec::new();
    for op in ops {
        let stmts = if merged {
            merged_statements(op)
        } else {
            unmerged_statements(op)
        };
        if stmts.is_empty() {
            continue;
        }
        if !current.is_empty() && current.len() + stmts.len() > cap {
            batches.push(std::mem::take(&mut current));
        }
        current.extend(stmts);
    }
    if !current.is_empty() {
        batches.push(current);
    }
    span.add_field("batches", batches.len());
    obs::global()
        .counter("workload.batches_generated")
        .add(batches.len() as u64);
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_ratios_roughly_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        let ops = university_ops(&MixSpec::default(), 10_000, 100, 10, 40, &mut rng);
        let reads = ops
            .iter()
            .filter(|o| matches!(o, UniversityOp::CourseDetail { .. }))
            .count();
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, UniversityOp::AddCourse { .. }))
            .count();
        assert!((7_600..8_400).contains(&reads), "{reads}");
        assert!((500..900).contains(&inserts), "{inserts}");
    }

    #[test]
    fn drops_only_follow_adds() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = MixSpec {
            point_reads: 0.0,
            reverse_reads: 0.0,
            inserts: 0.5,
            deletes: 0.5,
        };
        let ops = university_ops(&spec, 1_000, 10, 2, 5, &mut rng);
        let mut live: std::collections::HashSet<i64> = std::collections::HashSet::new();
        for op in &ops {
            match op {
                UniversityOp::AddCourse { nr, .. } => {
                    assert!(live.insert(*nr), "fresh course numbers only");
                }
                UniversityOp::DropCourse { nr } => {
                    assert!(live.remove(nr), "drop only what was added");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn skewed_reads_are_read_only_skewed_and_deterministic() {
        let spec = SkewSpec::default();
        let ops = skewed_reads(&spec, 4_000, 64, 16, &mut StdRng::seed_from_u64(14));
        assert_eq!(ops.len(), 4_000);
        let mut course_hits = vec![0usize; 64];
        for op in &ops {
            match op {
                UniversityOp::CourseDetail { nr } => {
                    assert!((0..64).contains(nr), "{nr}");
                    course_hits[*nr as usize] += 1;
                }
                UniversityOp::ByFaculty { ssn } => {
                    assert!((10_000..10_016).contains(ssn), "{ssn}");
                }
                other => panic!("write op in read stream: {other:?}"),
            }
        }
        // Zipf theta=1.1 over 64 keys gives the rank-0 key ~21% of the
        // mass; a uniform draw would give ~1.6%.
        let total: usize = course_hits.iter().sum();
        assert!(
            course_hits[0] * 10 > total,
            "hot key got {}/{total}",
            course_hits[0]
        );
        assert!(course_hits[0] > course_hits[63], "skew is rank-ordered");
        let again = skewed_reads(&spec, 4_000, 64, 16, &mut StdRng::seed_from_u64(14));
        assert_eq!(ops, again);
        // theta = 0 degenerates to uniform: the hot key loses its edge.
        let flat = SkewSpec {
            theta: 0.0,
            point_share: 1.0,
        };
        let uops = skewed_reads(&flat, 4_000, 64, 16, &mut StdRng::seed_from_u64(14));
        let hot = uops
            .iter()
            .filter(|o| matches!(o, UniversityOp::CourseDetail { nr: 0 }))
            .count();
        assert!(hot * 10 < 4_000, "uniform hot key got {hot}/4000");
    }

    #[test]
    fn deterministic_under_seed() {
        let spec = MixSpec::default();
        let a = university_ops(&spec, 100, 50, 5, 10, &mut StdRng::seed_from_u64(9));
        let b = university_ops(&spec, 100, 50, 5, 10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn statement_lowering_shapes() {
        let add = UniversityOp::AddCourse {
            nr: 7,
            dept: 3,
            teacher: Some(10_001),
        };
        let unm = unmerged_statements(&add);
        assert_eq!(unm.len(), 3);
        assert_eq!(unm[0].rel(), "COURSE");
        assert_eq!(unm[1].rel(), "OFFER");
        assert_eq!(unm[2].rel(), "TEACH");
        let mrg = merged_statements(&add);
        assert_eq!(mrg.len(), 1);
        assert_eq!(mrg[0].rel(), "COURSE_M");
        // Untaught course: no TEACH statement.
        let untaught = UniversityOp::AddCourse {
            nr: 8,
            dept: 0,
            teacher: None,
        };
        assert_eq!(unmerged_statements(&untaught).len(), 2);
        // Drops delete children before the course.
        let drop = UniversityOp::DropCourse { nr: 7 };
        let dropped = unmerged_statements(&drop);
        let rels: Vec<&str> = dropped.iter().map(Statement::rel).collect();
        assert_eq!(rels, ["TEACH", "ASSIST", "OFFER", "COURSE"]);
        // Reads lower to nothing.
        assert!(unmerged_statements(&UniversityOp::CourseDetail { nr: 1 }).is_empty());
        assert!(merged_statements(&UniversityOp::ByFaculty { ssn: 1 }).is_empty());
    }

    #[test]
    fn write_batches_respect_size_and_op_atomicity() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = MixSpec {
            point_reads: 0.2,
            reverse_reads: 0.0,
            inserts: 0.6,
            deletes: 0.2,
        };
        let ops = university_ops(&spec, 500, 50, 5, 10, &mut rng);
        let batches = write_batches(&ops, false, 16);
        assert!(!batches.is_empty());
        let total: usize = batches.iter().map(Vec::len).sum();
        let expected: usize = ops.iter().map(|o| unmerged_statements(o).len()).sum();
        assert_eq!(total, expected, "no statement lost or duplicated");
        for b in &batches {
            // An op lowers to at most 4 statements, so a batch can only
            // overflow the cap when a whole op would not fit.
            assert!(b.len() <= 16, "batch of {}", b.len());
            assert!(!b.is_empty());
        }
        // Order is preserved across the concatenation.
        let flat: Vec<Statement> = batches.into_iter().flatten().collect();
        let direct: Vec<Statement> = ops.iter().flat_map(unmerged_statements).collect();
        assert_eq!(flat, direct);
        // Degenerate cap still yields whole-op batches.
        let tiny = write_batches(&ops, true, 0);
        assert!(
            tiny.iter().all(|b| b.len() == 1),
            "merged ops are single statements"
        );
    }
}
