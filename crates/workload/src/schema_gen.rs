//! Parameterized synthetic relational schemas shaped like the structures
//! the paper merges: stars (Figure 8(iv)), chains (Figure 3's
//! COURSE←OFFER←{TEACH,ASSIST}), and mixtures with external reference
//! targets.

use relmerge_relational::{
    Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema,
};

/// Parameters for a star-shaped schema: one root scheme whose key every
/// satellite's key references directly.
#[derive(Debug, Clone, Copy)]
pub struct StarSpec {
    /// Number of satellite schemes referencing the root.
    pub satellites: usize,
    /// Non-key attributes per satellite.
    pub non_key_attrs: usize,
    /// External entity schemes; satellite non-key attribute `j` of
    /// satellite `i` references external `(i + j) % externals` when
    /// `externals > 0`.
    pub externals: usize,
}

impl Default for StarSpec {
    fn default() -> Self {
        StarSpec {
            satellites: 3,
            non_key_attrs: 1,
            externals: 0,
        }
    }
}

/// Builds a star schema per `spec`. Scheme names: root `ROOT`, satellites
/// `S0…`, externals `E0…`; every attribute is nulls-not-allowed, so the
/// whole star is mergeable (Definition 4.1's assumption holds).
#[must_use]
pub fn star_schema(spec: &StarSpec) -> RelationalSchema {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new(
            "ROOT",
            vec![Attribute::new("ROOT.K", Domain::Int)],
            &["ROOT.K"],
        )
        .expect("static scheme"),
    )
    .expect("fresh name");
    rs.add_null_constraint(NullConstraint::nna("ROOT", &["ROOT.K"]))
        .expect("valid constraint");
    for e in 0..spec.externals {
        let name = format!("E{e}");
        let attr = format!("{name}.K");
        rs.add_scheme(
            RelationScheme::new(
                &name,
                vec![Attribute::new(attr.clone(), Domain::Int)],
                &[&attr],
            )
            .expect("static scheme"),
        )
        .expect("fresh name");
        rs.add_null_constraint(NullConstraint::nna(&name, &[&attr]))
            .expect("valid constraint");
    }
    for s in 0..spec.satellites {
        let name = format!("S{s}");
        let key = format!("{name}.K");
        let mut attrs = vec![Attribute::new(key.clone(), Domain::Int)];
        let mut nna = vec![key.clone()];
        for j in 0..spec.non_key_attrs {
            let a = format!("{name}.V{j}");
            attrs.push(Attribute::new(a.clone(), Domain::Int));
            nna.push(a);
        }
        rs.add_scheme(RelationScheme::new(&name, attrs, &[&key]).expect("static scheme"))
            .expect("fresh name");
        let nna_refs: Vec<&str> = nna.iter().map(String::as_str).collect();
        rs.add_null_constraint(NullConstraint::nna(&name, &nna_refs))
            .expect("valid constraint");
        rs.add_ind(InclusionDep::new(&name, &[&key], "ROOT", &["ROOT.K"]))
            .expect("valid ind");
        if spec.externals > 0 {
            for j in 0..spec.non_key_attrs {
                let target = format!("E{}", (s + j) % spec.externals);
                let target_attr = format!("{target}.K");
                let fk = format!("{name}.V{j}");
                rs.add_ind(InclusionDep::new(&name, &[&fk], &target, &[&target_attr]))
                    .expect("valid ind");
            }
        }
    }
    rs
}

/// Parameters for a chain-shaped schema: `C0 ← C1 ← … ← C(depth−1)`, each
/// scheme's key referencing its predecessor's key.
#[derive(Debug, Clone, Copy)]
pub struct ChainSpec {
    /// Number of schemes in the chain (≥ 2).
    pub depth: usize,
    /// Non-key attributes per non-root scheme.
    pub non_key_attrs: usize,
}

impl Default for ChainSpec {
    fn default() -> Self {
        ChainSpec {
            depth: 3,
            non_key_attrs: 1,
        }
    }
}

/// Builds a chain schema per `spec` (the Figure 4/5 shape generalized).
#[must_use]
pub fn chain_schema(spec: &ChainSpec) -> RelationalSchema {
    assert!(spec.depth >= 2, "a chain needs at least two schemes");
    let mut rs = RelationalSchema::new();
    for d in 0..spec.depth {
        let name = format!("C{d}");
        let key = format!("{name}.K");
        let mut attrs = vec![Attribute::new(key.clone(), Domain::Int)];
        let mut nna = vec![key.clone()];
        if d > 0 {
            for j in 0..spec.non_key_attrs {
                let a = format!("{name}.V{j}");
                attrs.push(Attribute::new(a.clone(), Domain::Int));
                nna.push(a);
            }
        }
        rs.add_scheme(RelationScheme::new(&name, attrs, &[&key]).expect("static scheme"))
            .expect("fresh name");
        let nna_refs: Vec<&str> = nna.iter().map(String::as_str).collect();
        rs.add_null_constraint(NullConstraint::nna(&name, &nna_refs))
            .expect("valid constraint");
        if d > 0 {
            let prev = format!("C{}", d - 1);
            let prev_key = format!("{prev}.K");
            rs.add_ind(InclusionDep::new(&name, &[&key], &prev, &[&prev_key]))
                .expect("valid ind");
        }
    }
    rs
}

/// Parameters for a random *forest* schema: a DAG of key-to-key references
/// (each scheme's key optionally references one earlier scheme's key) plus
/// non-key foreign keys — the general shape the advisor confronts.
#[derive(Debug, Clone, Copy)]
pub struct ForestSpec {
    /// Number of relation-schemes.
    pub schemes: usize,
    /// Probability a scheme's key references an earlier scheme's key
    /// (making it mergeable into that scheme's cluster).
    pub key_ref_prob: f64,
    /// Maximum non-key attributes per scheme.
    pub max_non_key: usize,
    /// Probability a non-key attribute is a foreign key to an earlier
    /// scheme.
    pub fk_prob: f64,
}

impl Default for ForestSpec {
    fn default() -> Self {
        ForestSpec {
            schemes: 6,
            key_ref_prob: 0.6,
            max_non_key: 2,
            fk_prob: 0.3,
        }
    }
}

/// Builds a random forest schema per `spec`, using `rng`. Scheme `Fi` has
/// key `Fi.K`; all attributes are nulls-not-allowed.
pub fn forest_schema(spec: &ForestSpec, rng: &mut impl rand::Rng) -> RelationalSchema {
    let mut rs = RelationalSchema::new();
    for i in 0..spec.schemes.max(1) {
        let name = format!("F{i}");
        let key = format!("{name}.K");
        let mut attrs = vec![Attribute::new(key.clone(), Domain::Int)];
        let mut nna = vec![key.clone()];
        let mut inds: Vec<InclusionDep> = Vec::new();
        if i > 0 && rng.gen_bool(spec.key_ref_prob) {
            let parent = rng.gen_range(0..i);
            inds.push(InclusionDep::new(
                &name,
                &[&key],
                format!("F{parent}"),
                &[&format!("F{parent}.K")],
            ));
        }
        let n_non_key = rng.gen_range(0..=spec.max_non_key);
        for j in 0..n_non_key {
            let a = format!("{name}.V{j}");
            attrs.push(Attribute::new(a.clone(), Domain::Int));
            nna.push(a.clone());
            if i > 0 && rng.gen_bool(spec.fk_prob) {
                let target = rng.gen_range(0..i);
                inds.push(InclusionDep::new(
                    &name,
                    &[&a],
                    format!("F{target}"),
                    &[&format!("F{target}.K")],
                ));
            }
        }
        rs.add_scheme(RelationScheme::new(&name, attrs, &[&key]).expect("static scheme"))
            .expect("fresh name");
        let nna_refs: Vec<&str> = nna.iter().map(String::as_str).collect();
        rs.add_null_constraint(NullConstraint::nna(&name, &nna_refs))
            .expect("valid constraint");
        for ind in inds {
            rs.add_ind(ind).expect("valid ind");
        }
    }
    rs
}

/// The merge-set names of a star schema (root first) — ready for
/// `Merge::plan`.
#[must_use]
pub fn star_merge_set(spec: &StarSpec) -> Vec<String> {
    let mut v = vec!["ROOT".to_owned()];
    v.extend((0..spec.satellites).map(|s| format!("S{s}")));
    v
}

/// The merge-set names of a chain schema (root first).
#[must_use]
pub fn chain_merge_set(spec: &ChainSpec) -> Vec<String> {
    (0..spec.depth).map(|d| format!("C{d}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmerge_core::{prop52_nna_only, Merge};

    #[test]
    fn star_is_mergeable_and_nna_clean() {
        let spec = StarSpec {
            satellites: 4,
            non_key_attrs: 1,
            externals: 0,
        };
        let rs = star_schema(&spec);
        rs.validate().unwrap();
        let set = star_merge_set(&spec);
        let refs: Vec<&str> = set.iter().map(String::as_str).collect();
        // Single non-key attribute, direct references: Prop 5.2 holds.
        assert!(prop52_nna_only(&rs, &refs).unwrap().is_empty());
        let mut m = Merge::plan(&rs, &refs, "MERGED").unwrap();
        m.remove_all_removable().unwrap();
        assert!(m.schema().is_bcnf());
        assert!(m.generated_null_constraints().iter().all(|c| c.is_nna()));
    }

    #[test]
    fn star_with_externals_keeps_foreign_keys() {
        let spec = StarSpec {
            satellites: 2,
            non_key_attrs: 2,
            externals: 2,
        };
        let rs = star_schema(&spec);
        rs.validate().unwrap();
        // 2 satellites × (1 root + 2 externals) = 6 INDs.
        assert_eq!(rs.inds().len(), 6);
        let m = Merge::plan(&rs, &["ROOT", "S0", "S1"], "MERGED").unwrap();
        // External references survive on the merged scheme.
        assert!(m
            .schema()
            .inds()
            .iter()
            .any(|i| i.lhs_rel == "MERGED" && i.rhs_rel.starts_with('E')));
    }

    #[test]
    fn chain_shape() {
        let spec = ChainSpec {
            depth: 4,
            non_key_attrs: 2,
        };
        let rs = chain_schema(&spec);
        rs.validate().unwrap();
        assert_eq!(rs.schemes().len(), 4);
        assert_eq!(rs.inds().len(), 3);
        let set = chain_merge_set(&spec);
        let refs: Vec<&str> = set.iter().map(String::as_str).collect();
        let mut m = Merge::plan(&rs, &refs, "MERGED").unwrap();
        assert_eq!(m.km(), ["C0.K"]);
        m.remove_all_removable().unwrap();
        // Chains need general null constraints (the Figure 4/6 situation).
        assert!(!m.generated_null_constraints().iter().all(|c| c.is_nna()));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn chain_depth_validated() {
        let _ = chain_schema(&ChainSpec {
            depth: 1,
            non_key_attrs: 0,
        });
    }
}
