//! Random EER schemas for property-testing the translation pipeline.
//!
//! The generator produces structurally valid schemas with a mix of strong
//! entities, ISA specializations, weak entities, and binary relationship
//! sets of every cardinality pattern — the whole input space of §5.2.

use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge_eer::model::{Card, EerAttribute, EerSchema, EntitySet, Participant, RelationshipSet};
use relmerge_relational::Domain;

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EerSpec {
    /// Strong entity sets.
    pub entities: usize,
    /// ISA specializations (each under a random strong entity).
    pub specializations: usize,
    /// Weak entity sets (each owned by a random strong entity).
    pub weak_entities: usize,
    /// Binary relationship sets.
    pub relationships: usize,
    /// Maximum non-identifier attributes per object-set.
    pub max_attrs: usize,
    /// Probability that a generated attribute is optional.
    pub optional_prob: f64,
}

impl Default for EerSpec {
    fn default() -> Self {
        EerSpec {
            entities: 4,
            specializations: 2,
            weak_entities: 1,
            relationships: 4,
            max_attrs: 2,
            optional_prob: 0.3,
        }
    }
}

fn attrs(rng: &mut StdRng, spec: &EerSpec, prefix: &str, n: usize) -> Vec<EerAttribute> {
    (0..n)
        .map(|i| {
            let name = format!("{prefix}{i}");
            let domain = match rng.gen_range(0..3) {
                0 => Domain::Int,
                1 => Domain::Text,
                _ => Domain::Date,
            };
            if rng.gen_bool(spec.optional_prob) {
                EerAttribute::optional(name, domain)
            } else {
                EerAttribute::required(name, domain)
            }
        })
        .collect()
}

/// Generates a valid random EER schema.
pub fn random_eer(spec: &EerSpec, rng: &mut StdRng) -> EerSchema {
    let mut eer = EerSchema::new();
    let mut strong: Vec<String> = Vec::new();
    for i in 0..spec.entities.max(1) {
        let name = format!("ENT{i}");
        let mut a = vec![EerAttribute::required("ID", Domain::Int)];
        let n = rng.gen_range(0..=spec.max_attrs);
        a.extend(attrs(rng, spec, "V", n));
        eer.add_entity(EntitySet::new(&name, a, &["ID"]).with_abbrev(format!("E{i}")));
        strong.push(name);
    }
    for i in 0..spec.specializations {
        let parent = strong.choose(rng).expect("entities exist").clone();
        let name = format!("SPEC{i}");
        // 1..=max(1,max_attrs) own attributes (≥1 keeps the scheme useful).
        let n = rng.gen_range(1..=spec.max_attrs.max(1));
        eer.add_entity(
            EntitySet::new(&name, attrs(rng, spec, "S", n), &[]).with_abbrev(format!("SP{i}")),
        );
        eer.add_isa(&name, parent);
    }
    for i in 0..spec.weak_entities {
        let owner = strong.choose(rng).expect("entities exist").clone();
        let name = format!("WEAK{i}");
        let mut a = vec![EerAttribute::required("DISC", Domain::Int)];
        let n = rng.gen_range(0..=spec.max_attrs);
        a.extend(attrs(rng, spec, "W", n));
        eer.add_entity(
            EntitySet::new(&name, a, &["DISC"])
                .weak(owner)
                .with_abbrev(format!("WK{i}")),
        );
    }
    for i in 0..spec.relationships {
        let a = strong.choose(rng).expect("entities exist").clone();
        let b = strong.choose(rng).expect("entities exist").clone();
        let (ca, cb) = match rng.gen_range(0..4) {
            0 => (Card::Many, Card::One),
            1 => (Card::One, Card::Many),
            2 => (Card::Many, Card::Many),
            _ => (Card::One, Card::One),
        };
        let name = format!("REL{i}");
        let n = rng.gen_range(0..=spec.max_attrs);
        eer.add_relationship(
            RelationshipSet::new(
                &name,
                vec![Participant::new(a, ca), Participant::new(b, cb)],
            )
            .with_abbrev(format!("R{i}"))
            .with_attrs(attrs(rng, spec, "RA", n)),
        );
    }
    eer
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use relmerge_eer::translate;

    #[test]
    fn generated_schemas_validate_and_translate() {
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let eer = random_eer(&EerSpec::default(), &mut rng);
            eer.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let rs = translate::translate(&eer)
                .unwrap_or_else(|e| panic!("seed {seed} translation: {e}"));
            // The translation invariants of [11]: BCNF, key-based INDs,
            // NNA-only null constraints.
            assert!(rs.is_bcnf(), "seed {seed}");
            assert!(rs.key_based_inds_only(), "seed {seed}");
            assert!(rs.nna_only(), "seed {seed}");
            // One relation-scheme per object-set.
            assert_eq!(
                rs.schemes().len(),
                eer.entities.len() + eer.relationships.len(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let spec = EerSpec::default();
        let a = random_eer(&spec, &mut StdRng::seed_from_u64(5));
        let b = random_eer(&spec, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn extreme_specs_still_valid() {
        for spec in [
            EerSpec {
                entities: 1,
                specializations: 0,
                weak_entities: 0,
                relationships: 0,
                max_attrs: 0,
                optional_prob: 0.0,
            },
            EerSpec {
                entities: 10,
                specializations: 8,
                weak_entities: 5,
                relationships: 15,
                max_attrs: 4,
                optional_prob: 1.0,
            },
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            let eer = random_eer(&spec, &mut rng);
            eer.validate().unwrap();
            translate::translate(&eer).unwrap();
        }
    }
}
