//! Random consistent states of a *merged* schema, built directly — not
//! through η — so the backward direction of Definition 2.1 (η′ then η must
//! reproduce the state) is exercised on states the forward mapping did not
//! construct.

use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge_core::Merged;
use relmerge_relational::{DatabaseState, Result, Tuple, Value};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct MergedStateSpec {
    /// Tuples in the merged relation.
    pub rows: usize,
    /// Probability that a (non-key-relation) group is present in a tuple,
    /// before null-existence dependencies are enforced.
    pub presence: f64,
}

impl Default for MergedStateSpec {
    fn default() -> Self {
        MergedStateSpec {
            rows: 48,
            presence: 0.6,
        }
    }
}

/// Generates a consistent state of `merged.schema()` directly.
///
/// Every tuple gets a fresh key; each group is independently present or
/// absent; the null-existence constraints `Merge` generated (group `j`
/// present ⇒ group `i` present, from intra-set inclusion dependencies) are
/// honored by forcing the required groups present; total-equality copies
/// key values into present groups' key columns. Non-merged relations stay
/// empty except where the merged relation's external foreign keys need
/// targets — those are disallowed here (use schemas without external
/// references, e.g. the star/chain generators).
pub fn merged_state(
    merged: &Merged,
    spec: &MergedStateSpec,
    rng: &mut StdRng,
) -> Result<DatabaseState> {
    let schema = merged.schema();
    let mut state = DatabaseState::empty_for(schema)?;
    let scheme = merged.merged_scheme();
    let attr_names: Vec<&str> = scheme.attr_names();
    let km: Vec<&str> = merged.km();

    // Group presence dependencies from the generated null-existence
    // constraints: lhs-group present ⇒ rhs-group present. Recover them by
    // matching NE constraints' attribute sets against group attribute sets.
    let groups: Vec<_> = merged.groups().to_vec();
    let group_of = |attr: &str| -> Option<usize> {
        groups
            .iter()
            .position(|g| g.original_attrs.iter().any(|a| a == attr))
    };
    let mut requires: Vec<(usize, usize)> = Vec::new(); // (i present ⇒ j present)
    for c in schema.null_constraints() {
        if c.rel() != merged.merged_name() {
            continue;
        }
        if let relmerge_relational::NullConstraint::NullExistence { lhs, rhs, .. } = c {
            if lhs.is_empty() {
                continue;
            }
            if let (Some(gl), Some(gr)) = (
                lhs.first().and_then(|a| group_of(a)),
                rhs.first().and_then(|a| group_of(a)),
            ) {
                if gl != gr {
                    requires.push((gl, gr));
                }
            }
        }
    }

    let mut next_key: i64 = 1;
    for _ in 0..spec.rows {
        // Decide presence per group (key-relation group always present).
        let mut present: Vec<bool> = groups
            .iter()
            .map(|g| g.is_key_relation || rng.gen_bool(spec.presence))
            .collect();
        // Enforce presence dependencies to a fixed point.
        loop {
            let mut changed = false;
            for &(i, j) in &requires {
                if present[i] && !present[j] {
                    present[j] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Synthetic key-relation: some group must be present (part-null).
        if !present.iter().any(|&p| p) {
            present[0] = true;
        }
        // Build the tuple.
        let key_vals: Vec<Value> = km
            .iter()
            .map(|_| {
                let v = Value::Int(next_key);
                next_key += 1;
                v
            })
            .collect();
        let mut values: Vec<Value> = vec![Value::Null; attr_names.len()];
        for (k, v) in km.iter().zip(&key_vals) {
            if let Some(pos) = attr_names.iter().position(|a| a == k) {
                values[pos] = v.clone();
            }
        }
        for (gi, g) in groups.iter().enumerate() {
            if !present[gi] {
                continue;
            }
            for a in g.surviving_attrs() {
                let pos = attr_names
                    .iter()
                    .position(|x| *x == a)
                    .expect("surviving attrs are in the merged header");
                if values[pos].is_null() {
                    // Key columns copy Km (total equality); payloads random.
                    if let Some(kp) = g.key.iter().position(|k| k == a) {
                        values[pos] = key_vals[kp].clone();
                    } else {
                        values[pos] = Value::Int(rng.gen_range(0..1_000_000));
                    }
                }
            }
        }
        state.insert(merged.merged_name(), Tuple::new(values))?;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::{chain_schema, star_merge_set, star_schema, ChainSpec, StarSpec};
    use rand::SeedableRng;
    use relmerge_core::Merge;

    #[test]
    fn star_merged_states_consistent() {
        let spec = StarSpec {
            satellites: 3,
            non_key_attrs: 2,
            externals: 0,
        };
        let schema = star_schema(&spec);
        let set = star_merge_set(&spec);
        let refs: Vec<&str> = set.iter().map(String::as_str).collect();
        for remove in [false, true] {
            let mut m = Merge::plan(&schema, &refs, "M").unwrap();
            if remove {
                m.remove_all_removable().unwrap();
            }
            let mut rng = StdRng::seed_from_u64(3);
            let st = merged_state(&m, &MergedStateSpec::default(), &mut rng).unwrap();
            assert!(
                st.is_consistent(m.schema()).unwrap(),
                "remove={remove}: {:?}",
                st.violations(m.schema()).unwrap()
            );
            assert_eq!(st.relation("M").unwrap().len(), 48);
        }
    }

    #[test]
    fn chain_merged_states_respect_ne_dependencies() {
        let spec = ChainSpec {
            depth: 3,
            non_key_attrs: 1,
        };
        let schema = chain_schema(&spec);
        let m = Merge::plan(&schema, &["C0", "C1", "C2"], "M").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let st = merged_state(
            &m,
            &MergedStateSpec {
                rows: 100,
                presence: 0.5,
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            st.is_consistent(m.schema()).unwrap(),
            "{:?}",
            st.violations(m.schema()).unwrap()
        );
        // Some tuples must have absent groups for the test to mean much.
        let rm = st.relation("M").unwrap();
        assert!(rm.iter().any(|t| t.values().iter().any(Value::is_null)));
    }
}
