//! Synthetic workload generators for the ICDE'92 relation-merging
//! reproduction: parameterized schemas shaped like the paper's merge
//! candidates ([`schema_gen`]), random consistent database states for
//! property testing ([`state_gen`]), and a scalable instance of the
//! paper's university domain for the benches ([`university`]).
//!
//! The paper needs no external data — it is a pure schema-design technique
//! — so every dataset here is synthetic by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dml;
pub mod eer_gen;
pub mod merged_state_gen;
pub mod schema_gen;
pub mod state_gen;
pub mod university;

pub use dml::{
    merged_statements, skewed_reads, university_ops, unmerged_statements, write_batches, MixSpec,
    SkewSpec, UniversityOp,
};
pub use eer_gen::{random_eer, EerSpec};
pub use merged_state_gen::{merged_state, MergedStateSpec};
pub use schema_gen::{
    chain_merge_set, chain_schema, forest_schema, star_merge_set, star_schema, ChainSpec,
    ForestSpec, StarSpec,
};
pub use state_gen::{consistent_state, dependency_order, StateSpec};
pub use university::{generate as generate_university, University, UniversitySpec};
