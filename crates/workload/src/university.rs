//! A scalable instance of the paper's university domain (Figures 3/7):
//! the workload behind the query-speedup and maintenance-cost benches.

use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge_eer::figures;
use relmerge_obs as obs;
use relmerge_relational::{DatabaseState, RelationalSchema, Result, Tuple, Value};

/// Scale parameters for the university workload.
#[derive(Debug, Clone, Copy)]
pub struct UniversitySpec {
    /// Number of courses.
    pub courses: usize,
    /// Number of departments.
    pub departments: usize,
    /// Number of persons; 40% become faculty, 60% students.
    pub persons: usize,
    /// Fraction of courses that are offered.
    pub offer_ratio: f64,
    /// Fraction of offered courses that are taught.
    pub teach_ratio: f64,
    /// Fraction of offered courses with assistants.
    pub assist_ratio: f64,
}

impl Default for UniversitySpec {
    fn default() -> Self {
        UniversitySpec {
            courses: 1000,
            departments: 20,
            persons: 500,
            offer_ratio: 0.8,
            teach_ratio: 0.7,
            assist_ratio: 0.4,
        }
    }
}

/// A generated university instance: the Figure 3 schema plus a consistent
/// state at the requested scale.
#[derive(Debug)]
pub struct University {
    /// The Figure 3 relational schema (translated from Figure 7).
    pub schema: RelationalSchema,
    /// A consistent state.
    pub state: DatabaseState,
    /// Course numbers that are offered (for query key sampling).
    pub offered_courses: Vec<i64>,
}

/// Generates the university instance.
pub fn generate(spec: &UniversitySpec, rng: &mut StdRng) -> Result<University> {
    let _span = obs::span("workload.university.generate")
        .field("courses", spec.courses)
        .field("persons", spec.persons);
    let schema = relmerge_eer::translate(&figures::fig7_eer())?;
    let mut state = DatabaseState::empty_for(&schema)?;

    let dept_names: Vec<Value> = (0..spec.departments)
        .map(|d| Value::text(format!("dept{d}")))
        .collect();
    for d in &dept_names {
        state.insert("DEPARTMENT", Tuple::new([d.clone()]))?;
    }
    let n_faculty = (spec.persons * 2) / 5;
    let mut faculty_ssns: Vec<i64> = Vec::new();
    let mut student_ssns: Vec<i64> = Vec::new();
    for p in 0..spec.persons {
        let ssn = 10_000 + p as i64;
        state.insert("PERSON", Tuple::new([Value::Int(ssn)]))?;
        if p < n_faculty {
            state.insert("FACULTY", Tuple::new([Value::Int(ssn)]))?;
            faculty_ssns.push(ssn);
        } else {
            state.insert("STUDENT", Tuple::new([Value::Int(ssn)]))?;
            student_ssns.push(ssn);
        }
    }
    let mut offered_courses = Vec::new();
    for c in 0..spec.courses {
        let nr = c as i64;
        state.insert("COURSE", Tuple::new([Value::Int(nr)]))?;
        if rng.gen_bool(spec.offer_ratio) {
            let dept = dept_names.choose(rng).expect("departments nonempty");
            state.insert("OFFER", Tuple::new([Value::Int(nr), dept.clone()]))?;
            offered_courses.push(nr);
            if !faculty_ssns.is_empty() && rng.gen_bool(spec.teach_ratio) {
                let f = *faculty_ssns.choose(rng).expect("nonempty");
                state.insert("TEACH", Tuple::new([Value::Int(nr), Value::Int(f)]))?;
            }
            if !student_ssns.is_empty() && rng.gen_bool(spec.assist_ratio) {
                let s = *student_ssns.choose(rng).expect("nonempty");
                state.insert("ASSIST", Tuple::new([Value::Int(nr), Value::Int(s)]))?;
            }
        }
    }
    Ok(University {
        schema,
        state,
        offered_courses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use relmerge_core::Merge;

    #[test]
    fn generated_state_is_consistent() {
        let mut rng = StdRng::seed_from_u64(42);
        let u = generate(
            &UniversitySpec {
                courses: 200,
                departments: 5,
                persons: 100,
                ..UniversitySpec::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(u.state.is_consistent(&u.schema).unwrap());
        assert_eq!(u.state.relation("COURSE").unwrap().len(), 200);
        let offers = u.state.relation("OFFER").unwrap().len();
        assert_eq!(offers, u.offered_courses.len());
        assert!(offers > 100 && offers < 200);
        assert!(u.state.relation("TEACH").unwrap().len() <= offers);
    }

    #[test]
    fn merges_cleanly_at_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = generate(
            &UniversitySpec {
                courses: 300,
                ..UniversitySpec::default()
            },
            &mut rng,
        )
        .unwrap();
        let mut m = Merge::plan(
            &u.schema,
            &["COURSE", "OFFER", "TEACH", "ASSIST"],
            "COURSE_M",
        )
        .unwrap();
        m.remove_all_removable().unwrap();
        let merged_state = m.apply(&u.state).unwrap();
        assert!(merged_state.is_consistent(m.schema()).unwrap());
        assert_eq!(
            merged_state.relation("COURSE_M").unwrap().len(),
            u.state.relation("COURSE").unwrap().len()
        );
        assert_eq!(m.invert(&merged_state).unwrap(), u.state);
    }
}
