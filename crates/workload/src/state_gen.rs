//! Random *consistent* database states for generated schemas.
//!
//! The generator fills relations in dependency order: a scheme is populated
//! only after every scheme it references, and foreign-key subtuples are
//! drawn from the already-generated target keys — so key dependencies,
//! inclusion dependencies, and the all-NNA null constraints hold by
//! construction. Property tests rely on this to exercise `Merge`'s
//! information-capacity guarantees on arbitrary consistent inputs.

use std::collections::BTreeMap;

use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge_relational::{DatabaseState, Domain, Error, RelationalSchema, Result, Tuple, Value};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct StateSpec {
    /// Rows per root scheme (schemes nothing references transitively
    /// draw fresh keys).
    pub root_rows: usize,
    /// For a scheme whose key references another scheme, the fraction of
    /// the target's keys it covers (0.0–1.0).
    pub coverage: f64,
}

impl Default for StateSpec {
    fn default() -> Self {
        StateSpec {
            root_rows: 64,
            coverage: 0.6,
        }
    }
}

/// Generates a consistent state for `schema` (all-NNA schemas with
/// key-based inclusion dependencies, as produced by the generators and the
/// EER translation).
pub fn consistent_state(
    schema: &RelationalSchema,
    spec: &StateSpec,
    rng: &mut StdRng,
) -> Result<DatabaseState> {
    let order = dependency_order(schema)?;
    let mut state = DatabaseState::empty_for(schema)?;
    // Fresh-value counter keeps keys globally unique and deterministic.
    let mut next_value: i64 = 1;
    // scheme -> its generated primary-key tuples.
    let mut keys: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();

    for name in order {
        let scheme = schema.scheme_required(&name)?;
        let pk: Vec<&str> = scheme.primary_key();
        // Which outgoing IND covers the key (the "satellite" pattern)?
        let key_ref = schema.inds().iter().find(|ind| {
            ind.lhs_rel == name && {
                let lhs: Vec<&str> = ind.lhs_attrs.iter().map(String::as_str).collect();
                lhs.len() == pk.len() && lhs.iter().all(|a| pk.contains(a))
            }
        });
        // Decide this relation's key tuples.
        let key_tuples: Vec<Tuple> = match key_ref {
            Some(ind) => {
                let parent = keys.get(&ind.rhs_rel).ok_or_else(|| Error::StateMismatch {
                    detail: format!("`{}` generated before `{}`", name, ind.rhs_rel),
                })?;
                let take = ((parent.len() as f64) * spec.coverage).round() as usize;
                let mut sampled: Vec<Tuple> = parent
                    .choose_multiple(rng, take.min(parent.len()))
                    .cloned()
                    .collect();
                sampled.shuffle(rng);
                sampled
            }
            None => {
                let pk_domains: Vec<Domain> = pk
                    .iter()
                    .map(|k| {
                        scheme
                            .attrs()
                            .iter()
                            .find(|a| a.name() == *k)
                            .expect("key attr exists")
                            .domain()
                    })
                    .collect();
                (0..spec.root_rows)
                    .map(|_| {
                        Tuple::new(
                            pk_domains
                                .iter()
                                .map(|d| fresh_value(*d, &mut next_value))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect()
            }
        };
        // Non-key foreign keys (disjoint from the primary key).
        let other_fks: Vec<(Vec<String>, String)> = schema
            .inds()
            .iter()
            .filter(|ind| ind.lhs_rel == name)
            .filter(|ind| {
                let lhs: Vec<&str> = ind.lhs_attrs.iter().map(String::as_str).collect();
                !(lhs.len() == pk.len() && lhs.iter().all(|a| pk.contains(a)))
            })
            .map(|ind| (ind.lhs_attrs.clone(), ind.rhs_rel.clone()))
            .collect();
        // If any non-key foreign key points at an empty target, no row of
        // this scheme can exist (all attributes are NNA in generated
        // schemas): the relation stays empty, which is consistent.
        let fk_target_empty = other_fks
            .iter()
            .any(|(_, target)| keys.get(target).is_none_or(|k| k.is_empty()));
        let key_tuples = if fk_target_empty {
            Vec::new()
        } else {
            key_tuples
        };
        // Assemble tuples.
        let attr_names: Vec<&str> = scheme.attr_names();
        for key_tuple in &key_tuples {
            let mut values: Vec<Value> = vec![Value::Null; attr_names.len()];
            for (i, k) in pk.iter().enumerate() {
                let pos = attr_names.iter().position(|a| a == k).expect("key attr");
                values[pos] = key_tuple.get(i).clone();
            }
            for (fk_attrs, target) in &other_fks {
                let target_keys = keys.get(target).ok_or_else(|| Error::StateMismatch {
                    detail: format!("`{name}` references ungenerated `{target}`"),
                })?;
                let choice = target_keys
                    .choose(rng)
                    .expect("empty targets handled above")
                    .clone();
                for (i, a) in fk_attrs.iter().enumerate() {
                    let pos = attr_names
                        .iter()
                        .position(|x| x == a)
                        .expect("fk attr exists");
                    values[pos] = choice.get(i).clone();
                }
            }
            // Remaining attributes: random payloads in the right domain.
            for (v, a) in values.iter_mut().zip(scheme.attrs()) {
                if v.is_null() {
                    *v = random_value(a.domain(), rng);
                }
            }
            state.insert(&name, Tuple::new(values))?;
        }
        keys.insert(name.clone(), key_tuples);
    }
    Ok(state)
}

/// A globally-unique value of `domain` (drawn from the shared counter, so
/// generated keys never collide). Booleans cannot be unique; bool-keyed
/// schemes are not produced by any generator here.
fn fresh_value(domain: Domain, next: &mut i64) -> Value {
    let v = *next;
    *next += 1;
    match domain {
        Domain::Int => Value::Int(v),
        Domain::Text => Value::text(format!("k{v}")),
        Domain::Bool => Value::Bool(v % 2 == 0),
        Domain::Date => Value::Date(v),
    }
}

/// A random payload value of `domain`.
fn random_value(domain: Domain, rng: &mut StdRng) -> Value {
    match domain {
        Domain::Int => Value::Int(rng.gen_range(0..1_000_000)),
        Domain::Text => Value::text(format!("v{}", rng.gen_range(0..1_000_000i64))),
        Domain::Bool => Value::Bool(rng.gen_range(0..2) == 0),
        Domain::Date => Value::Date(rng.gen_range(0..40_000)),
    }
}

/// Orders scheme names so that every scheme follows everything it
/// references through inclusion dependencies.
pub fn dependency_order(schema: &RelationalSchema) -> Result<Vec<String>> {
    let mut remaining: Vec<&str> = schema.schemes().iter().map(|s| s.name()).collect();
    let mut done: Vec<String> = Vec::new();
    while !remaining.is_empty() {
        let ready: Vec<&str> = remaining
            .iter()
            .copied()
            .filter(|name| {
                schema
                    .inds()
                    .iter()
                    .filter(|ind| ind.lhs_rel == *name && ind.rhs_rel != *name)
                    .all(|ind| done.iter().any(|d| d == &ind.rhs_rel))
            })
            .collect();
        if ready.is_empty() {
            return Err(Error::MalformedConstraint {
                detail: format!("cyclic inclusion dependencies among: {remaining:?}"),
            });
        }
        for r in &ready {
            done.push((*r).to_owned());
        }
        remaining.retain(|n| !ready.contains(n));
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::{chain_schema, star_schema, ChainSpec, StarSpec};
    use rand::SeedableRng;

    #[test]
    fn star_states_consistent() {
        let spec = StarSpec {
            satellites: 3,
            non_key_attrs: 2,
            externals: 2,
        };
        let schema = star_schema(&spec);
        let mut rng = StdRng::seed_from_u64(7);
        let state = consistent_state(
            &schema,
            &StateSpec {
                root_rows: 40,
                coverage: 0.5,
            },
            &mut rng,
        )
        .unwrap();
        assert!(state.is_consistent(&schema).unwrap());
        assert_eq!(state.relation("ROOT").unwrap().len(), 40);
        assert_eq!(state.relation("S0").unwrap().len(), 20);
    }

    #[test]
    fn chain_states_consistent_and_shrinking() {
        let schema = chain_schema(&ChainSpec {
            depth: 4,
            non_key_attrs: 1,
        });
        let mut rng = StdRng::seed_from_u64(11);
        let state = consistent_state(
            &schema,
            &StateSpec {
                root_rows: 100,
                coverage: 0.5,
            },
            &mut rng,
        )
        .unwrap();
        assert!(state.is_consistent(&schema).unwrap());
        let sizes: Vec<usize> = (0..4)
            .map(|d| state.relation(&format!("C{d}")).unwrap().len())
            .collect();
        assert_eq!(sizes, [100, 50, 25, 13]);
    }

    #[test]
    fn deterministic_under_seed() {
        let schema = star_schema(&StarSpec::default());
        let spec = StateSpec::default();
        let a = consistent_state(&schema, &spec, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = consistent_state(&schema, &spec, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
        let c = consistent_state(&schema, &spec, &mut StdRng::seed_from_u64(4)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn dependency_order_respects_inds() {
        let schema = chain_schema(&ChainSpec {
            depth: 3,
            non_key_attrs: 0,
        });
        let order = dependency_order(&schema).unwrap();
        assert_eq!(order, ["C0", "C1", "C2"]);
    }
}
