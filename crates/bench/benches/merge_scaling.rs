//! B3: cost of the `Merge`/`Remove` procedures themselves as the merge set
//! grows, and of the η state mapping as the data grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_core::Merge;
use relmerge_workload::{consistent_state, star_merge_set, star_schema, StarSpec, StateSpec};

fn bench_merge_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_plan");
    for &satellites in &[2usize, 8, 32, 128] {
        let spec = StarSpec {
            satellites,
            non_key_attrs: 2,
            externals: 0,
        };
        let schema = star_schema(&spec);
        let set = star_merge_set(&spec);
        let refs: Vec<&str> = set.iter().map(String::as_str).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(satellites),
            &satellites,
            |b, _| b.iter(|| Merge::plan(&schema, &refs, "MERGED").expect("merge")),
        );
    }
    group.finish();
}

fn bench_remove_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("remove_all");
    for &satellites in &[2usize, 8, 32] {
        let spec = StarSpec {
            satellites,
            non_key_attrs: 2,
            externals: 0,
        };
        let schema = star_schema(&spec);
        let set = star_merge_set(&spec);
        let refs: Vec<&str> = set.iter().map(String::as_str).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(satellites),
            &satellites,
            |b, _| {
                b.iter_batched(
                    || Merge::plan(&schema, &refs, "MERGED").expect("merge"),
                    |mut m| m.remove_all_removable().expect("remove"),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_eta_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("eta_state_mapping");
    group.sample_size(20);
    let spec = StarSpec {
        satellites: 3,
        non_key_attrs: 2,
        externals: 0,
    };
    let schema = star_schema(&spec);
    let set = star_merge_set(&spec);
    let refs: Vec<&str> = set.iter().map(String::as_str).collect();
    let merged = Merge::plan(&schema, &refs, "MERGED").expect("merge");
    for &rows in &[100usize, 1_000, 10_000] {
        let mut rng = StdRng::seed_from_u64(13);
        let state = consistent_state(
            &schema,
            &StateSpec {
                root_rows: rows,
                coverage: 0.7,
            },
            &mut rng,
        )
        .expect("state");
        group.bench_with_input(BenchmarkId::new("apply", rows), &rows, |b, _| {
            b.iter(|| merged.apply(&state).expect("apply"));
        });
        let merged_state = merged.apply(&state).expect("apply");
        group.bench_with_input(BenchmarkId::new("invert", rows), &rows, |b, _| {
            b.iter(|| merged.invert(&merged_state).expect("invert"));
        });
    }
    group.finish();
}

fn bench_advisor_and_planner(c: &mut Criterion) {
    use relmerge_core::{Advisor, AdvisorConfig};
    use relmerge_engine::LogicalQuery;

    let mut group = c.benchmark_group("advisor");
    for &satellites in &[4usize, 16, 64] {
        let spec = StarSpec {
            satellites,
            non_key_attrs: 1,
            externals: 2,
        };
        let schema = star_schema(&spec);
        group.bench_with_input(
            BenchmarkId::new("propose", satellites),
            &satellites,
            |b, _| {
                b.iter(|| {
                    Advisor::new(AdvisorConfig::declarative_only())
                        .propose_static(&schema)
                        .expect("propose")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("apply_greedy", satellites),
            &satellites,
            |b, _| {
                b.iter(|| {
                    Advisor::new(AdvisorConfig::declarative_only())
                        .greedy(&schema)
                        .expect("apply")
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("planner");
    for &satellites in &[4usize, 16, 64] {
        let spec = StarSpec {
            satellites,
            non_key_attrs: 1,
            externals: 0,
        };
        let schema = star_schema(&spec);
        // A query touching the root and the last satellite.
        let last = format!("S{}.V0", satellites - 1);
        let q = LogicalQuery::select(&["ROOT.K", &last]);
        group.bench_with_input(BenchmarkId::new("plan", satellites), &satellites, |b, _| {
            b.iter(|| relmerge_engine::plan(&schema, &q).expect("plan"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merge_plan,
    bench_remove_all,
    bench_eta_mapping,
    bench_advisor_and_planner
);
criterion_main!(benches);
