//! B13 micro-benchmarks: the cost of the online migration itself — plan
//! compilation plus catalog swap plus chunked data apply — as the state
//! grows, the advisor's profile-driven proposal pass, and the point-query
//! payoff before and after a live merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_bench::experiments;
use relmerge_core::{Advisor, AdvisorConfig, Merge};
use relmerge_engine::{Database, DbmsProfile};
use relmerge_workload::{generate_university, UniversitySpec};

/// A loaded unmerged university database plus the COURSE-chain plan.
fn instance(courses: usize) -> (relmerge_workload::University, relmerge_core::Merged) {
    experiments::university_merge(courses, 42).expect("instance")
}

fn live_db(u: &relmerge_workload::University) -> Database {
    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("db");
    db.load_state(&u.state).expect("load");
    db
}

fn bench_migrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_migrate");
    group.sample_size(10);
    for &courses in &[500usize, 2_000, 8_000] {
        let (u, m) = instance(courses);
        group.bench_with_input(BenchmarkId::from_parameter(courses), &courses, |b, _| {
            b.iter_batched(
                || live_db(&u),
                |mut db| db.migrate(&m).expect("migrate"),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_propose_from_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("advise_from_profile");
    let (u, _) = instance(2_000);
    let db = live_db(&u);
    // Populate the profiler with a representative read mix.
    for nr in u.offered_courses.iter().take(256) {
        let _ = db
            .execute(&experiments::unmerged_point_query(*nr))
            .expect("probe");
    }
    let snapshot = db.profile_snapshot();
    let advisor = Advisor::new(AdvisorConfig::permissive());
    group.bench_function("propose", |b| {
        b.iter(|| {
            advisor
                .propose_from_profile(&snapshot, &u.schema)
                .expect("propose")
        });
    });
    group.finish();
}

fn bench_point_query_pre_post(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query_live");
    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses: 2_000,
            ..UniversitySpec::default()
        },
        &mut rng,
    )
    .expect("university");
    let nr = u.offered_courses[0];
    let mut db = live_db(&u);
    group.bench_function("pre_merge", |b| {
        b.iter(|| {
            db.execute(&experiments::unmerged_point_query(nr))
                .expect("q")
        });
    });
    let mut plan = Merge::plan(
        &u.schema,
        &["COURSE", "OFFER", "TEACH", "ASSIST"],
        "COURSE_M",
    )
    .expect("plan");
    plan.remove_all_removable().expect("remove");
    db.migrate(&plan).expect("migrate");
    group.bench_function("post_merge", |b| {
        b.iter(|| db.execute(&experiments::merged_point_query(nr)).expect("q"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_migrate,
    bench_propose_from_profile,
    bench_point_query_pre_post
);
criterion_main!(benches);
