//! B1: point-query and scan latency, merged vs. unmerged university schema
//! (the paper's §1 motivation: merging reduces joins → better access
//! performance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge_bench::experiments::{
    merged_by_faculty_query, merged_point_query, merged_scan_query, university_databases,
    university_merge, unmerged_by_faculty_query, unmerged_point_query, unmerged_scan_query,
};

fn bench_point_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query");
    for &courses in &[100usize, 1_000, 10_000] {
        let (u, m) = university_merge(courses, 42).expect("setup");
        let (unmerged, merged) = university_databases(&u, &m).expect("databases");
        let mut rng = StdRng::seed_from_u64(7);
        let keys: Vec<i64> = (0..256)
            .map(|_| *u.offered_courses.choose(&mut rng).expect("offers"))
            .collect();
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("unmerged_3joins", courses),
            &courses,
            |b, _| {
                b.iter(|| {
                    let k = keys[i % keys.len()];
                    i += 1;
                    unmerged.execute(&unmerged_point_query(k)).expect("query")
                });
            },
        );
        let mut j = 0usize;
        group.bench_with_input(
            BenchmarkId::new("merged_single_probe", courses),
            &courses,
            |b, _| {
                b.iter(|| {
                    let k = keys[j % keys.len()];
                    j += 1;
                    merged.execute(&merged_point_query(k)).expect("query")
                });
            },
        );
    }
    group.finish();
}

fn bench_scan_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_query");
    group.sample_size(20);
    for &courses in &[100usize, 1_000, 10_000] {
        let (u, m) = university_merge(courses, 42).expect("setup");
        let (unmerged, merged) = university_databases(&u, &m).expect("databases");
        group.bench_with_input(
            BenchmarkId::new("unmerged_3joins", courses),
            &courses,
            |b, _| b.iter(|| unmerged.execute(&unmerged_scan_query()).expect("query")),
        );
        group.bench_with_input(
            BenchmarkId::new("merged_scan", courses),
            &courses,
            |b, _| b.iter(|| merged.execute(&merged_scan_query()).expect("query")),
        );
    }
    group.finish();
}

fn bench_reverse_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("reverse_lookup_by_faculty");
    for &courses in &[1_000usize, 10_000] {
        let (u, m) = university_merge(courses, 42).expect("setup");
        let (unmerged, merged) = university_databases(&u, &m).expect("databases");
        let mut rng = StdRng::seed_from_u64(11);
        let ssns: Vec<i64> = (0..256).map(|_| 10_000 + rng.gen_range(0..200)).collect();
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("unmerged_chain_walk", courses),
            &courses,
            |b, _| {
                b.iter(|| {
                    let ssn = ssns[i % ssns.len()];
                    i += 1;
                    unmerged
                        .execute(&unmerged_by_faculty_query(ssn))
                        .expect("query")
                });
            },
        );
        let mut j = 0usize;
        group.bench_with_input(
            BenchmarkId::new("merged_secondary_index", courses),
            &courses,
            |b, _| {
                b.iter(|| {
                    let ssn = ssns[j % ssns.len()];
                    j += 1;
                    merged
                        .execute(&merged_by_faculty_query(ssn))
                        .expect("query")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_point_queries,
    bench_scan_queries,
    bench_reverse_lookup
);
criterion_main!(benches);
