//! B10: the versioned build-side cache — cold rebuild versus warm hit on
//! the no-covering-index composite join — and the partitioned parallel
//! hash build at each swept worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_bench::experiments::{composite_no_index_query, worker_sweep};
use relmerge_engine::{Database, DbmsProfile};
use relmerge_workload::{generate_university, UniversitySpec};

fn build_db(courses: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )
    .expect("university");
    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("database");
    db.load_state(&u.state).expect("load");
    db
}

/// Cold (cache cleared before every execution, so each one pays the full
/// transient hash build) versus warm (every execution hits the cache).
fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_cache");
    group.sample_size(20);
    for &courses in &[1_000usize, 10_000] {
        let mut db = build_db(courses);
        db.configure(db.config().parallelism(1));
        let plan = composite_no_index_query();
        group.bench_with_input(BenchmarkId::new("cold", courses), &courses, |b, _| {
            b.iter(|| {
                db.clear_build_cache();
                db.execute(&plan).expect("query")
            })
        });
        let _ = db.execute(&plan).expect("populate");
        group.bench_with_input(BenchmarkId::new("warm", courses), &courses, |b, _| {
            b.iter(|| db.execute(&plan).expect("query"))
        });
    }
    group.finish();
}

/// The partitioned parallel build at each swept worker count, cache off
/// so every execution measures the build itself.
fn bench_partitioned_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioned_build");
    group.sample_size(20);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let courses = 10_000usize;
    let mut db = build_db(courses);
    db.configure(db.config().build_cache_capacity(0));
    db.configure(db.config().build_parallel_threshold(0));
    let plan = composite_no_index_query();
    for w in worker_sweep(cores) {
        db.configure(db.config().parallelism(w));
        group.bench_with_input(
            BenchmarkId::new(format!("workers_{w}"), courses),
            &courses,
            |b, _| b.iter(|| db.execute(&plan).expect("query")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_partitioned_build);
criterion_main!(benches);
