//! B2: constraint-maintenance cost per inserted "course bundle" —
//! four declarative statements on the unmerged schema (DB2 profile) versus
//! one trigger-checked statement on the merged schema (SYBASE profile).
//! Quantifies §5.1's trade-off.

use std::cell::Cell;

use criterion::{criterion_group, criterion_main, Criterion};

use relmerge_bench::experiments::university_merge;
use relmerge_engine::{Database, DbmsProfile};
use relmerge_relational::{Tuple, Value};

fn bench_inserts(c: &mut Criterion) {
    let (u, m) = university_merge(10, 1).expect("setup");
    let mut group = c.benchmark_group("insert_course_bundle");

    {
        let mut db = Database::new(u.schema.clone(), DbmsProfile::db2()).expect("db");
        db.load_state(&u.state).expect("load");
        let next = Cell::new(1_000_000i64);
        let dept = Value::text("dept0");
        let faculty = Value::Int(10_000);
        let student = Value::Int(10_400);
        group.bench_function("unmerged_db2_4stmts", |b| {
            b.iter(|| {
                let nr = Value::Int(next.get());
                next.set(next.get() + 1);
                db.insert("COURSE", Tuple::new([nr.clone()]))
                    .expect("course");
                db.insert("OFFER", Tuple::new([nr.clone(), dept.clone()]))
                    .expect("offer");
                db.insert("TEACH", Tuple::new([nr.clone(), faculty.clone()]))
                    .expect("teach");
                db.insert("ASSIST", Tuple::new([nr, student.clone()]))
                    .expect("assist");
            });
        });
    }

    {
        let merged_state = m.apply(&u.state).expect("apply");
        let mut db = Database::new(m.schema().clone(), DbmsProfile::sybase40()).expect("db");
        db.load_state(&merged_state).expect("load");
        let next = Cell::new(1_000_000i64);
        let dept = Value::text("dept0");
        let faculty = Value::Int(10_000);
        let student = Value::Int(10_400);
        group.bench_function("merged_sybase_1stmt_triggers", |b| {
            b.iter(|| {
                let nr = Value::Int(next.get());
                next.set(next.get() + 1);
                db.insert(
                    "COURSE_M",
                    Tuple::new([nr, dept.clone(), faculty.clone(), student.clone()]),
                )
                .expect("merged insert");
            });
        });
    }

    {
        // The same merged insert on the ideal profile, to isolate the
        // trigger-vs-native cost split from the statement-count effect.
        let merged_state = m.apply(&u.state).expect("apply");
        let mut db = Database::new(m.schema().clone(), DbmsProfile::ideal()).expect("db");
        db.load_state(&merged_state).expect("load");
        let next = Cell::new(1_000_000i64);
        let dept = Value::text("dept0");
        let faculty = Value::Int(10_000);
        let student = Value::Int(10_400);
        group.bench_function("merged_ideal_1stmt", |b| {
            b.iter(|| {
                let nr = Value::Int(next.get());
                next.set(next.get() + 1);
                db.insert(
                    "COURSE_M",
                    Tuple::new([nr, dept.clone(), faculty.clone(), student.clone()]),
                )
                .expect("merged insert");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inserts);
criterion_main!(benches);
