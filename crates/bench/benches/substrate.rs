//! B5: micro-benchmarks of the relational substrate the technique is built
//! on — the outer-equi-join of §2, null-constraint satisfaction of §3, and
//! the FD machinery behind the BCNF test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use relmerge_relational::nullcon::ne_closure;
use relmerge_relational::{
    algebra, Attribute, Domain, Fd, FdSet, NullConstraint, Relation, RelationScheme, Tuple, Value,
};

fn int_relation(prefix: &str, rows: usize, width: usize, match_stride: i64) -> Relation {
    let header: Vec<Attribute> = (0..width)
        .map(|i| Attribute::new(format!("{prefix}.A{i}"), Domain::Int))
        .collect();
    Relation::with_rows(
        header,
        (0..rows).map(|r| {
            Tuple::new(
                (0..width)
                    .map(|c| Value::Int(r as i64 * match_stride + c as i64))
                    .collect::<Vec<_>>(),
            )
        }),
    )
    .expect("static relation")
}

fn bench_outer_equi_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("outer_equi_join");
    group.sample_size(20);
    for &rows in &[1_000usize, 10_000] {
        // Key columns align on even rows: half match, half pad.
        let left = int_relation("L", rows, 3, 2);
        let right = int_relation("R", rows, 3, 4);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| algebra::outer_equi_join(&left, &right, &[("L.A0", "R.A0")]).expect("join"));
        });
    }
    group.finish();
}

fn bench_total_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("total_projection");
    let rows = 10_000;
    let left = int_relation("L", rows, 3, 2);
    let right = int_relation("R", rows, 3, 4);
    let joined = algebra::outer_equi_join(&left, &right, &[("L.A0", "R.A0")]).expect("join");
    group.bench_function("reconstruct_left", |b| {
        b.iter(|| algebra::total_project(&joined, &["L.A0", "L.A1", "L.A2"]).expect("project"));
    });
    group.finish();
}

fn bench_null_constraints(c: &mut Criterion) {
    let mut group = c.benchmark_group("null_constraint_check");
    let rows = 10_000;
    let header: Vec<Attribute> = (0..4)
        .map(|i| Attribute::new(format!("M.A{i}"), Domain::Int))
        .collect();
    let relation = Relation::with_rows(
        header,
        (0..rows).map(|r| {
            // Alternate total and half-null tuples (all constraint-legal).
            if r % 2 == 0 {
                Tuple::new([
                    Value::Int(r),
                    Value::Int(r),
                    Value::Int(r + 1),
                    Value::Int(r + 2),
                ])
            } else {
                Tuple::new([Value::Int(r), Value::Int(r), Value::Null, Value::Null])
            }
        }),
    )
    .expect("static relation");
    let constraints = [
        ("nna", NullConstraint::nna("M", &["M.A0"])),
        ("null_sync", NullConstraint::ns("M", &["M.A2", "M.A3"])),
        (
            "null_existence",
            NullConstraint::ne("M", &["M.A2"], &["M.A3"]),
        ),
        (
            "total_equality",
            NullConstraint::te("M", &["M.A0"], &["M.A1"]),
        ),
        (
            "part_null",
            NullConstraint::pn("M", &[&["M.A0", "M.A1"], &["M.A2", "M.A3"]]),
        ),
    ];
    for (name, constraint) in &constraints {
        group.bench_function(*name, |b| {
            b.iter(|| {
                assert!(constraint.satisfied_by(&relation).expect("check"));
            });
        });
    }
    group.finish();
}

fn bench_fd_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_machinery");
    for &width in &[8usize, 32] {
        let attrs: Vec<Attribute> = (0..width)
            .map(|i| Attribute::new(format!("R.A{i}"), Domain::Int))
            .collect();
        let names: Vec<String> = attrs.iter().map(|a| a.name().to_owned()).collect();
        let scheme = RelationScheme::new("R", attrs, &[&names[0]]).expect("scheme");
        let mut fds = FdSet::from_schemes([&scheme]);
        // A chain A0 -> A1 -> … -> A(n-1), closure must walk it.
        for i in 0..width - 1 {
            fds.push(Fd::new("R", &[&names[i]], &[&names[i + 1]]));
        }
        group.bench_with_input(BenchmarkId::new("closure", width), &width, |b, _| {
            b.iter(|| fds.closure("R", &[&names[0]]));
        });
        group.bench_with_input(BenchmarkId::new("bcnf", width), &width, |b, _| {
            b.iter(|| fds.is_bcnf(&scheme));
        });
    }
    group.finish();
}

fn bench_ne_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("ne_inference");
    for &n in &[8usize, 64] {
        let constraints: Vec<NullConstraint> = (0..n)
            .map(|i| NullConstraint::ne("R", &[&format!("A{i}")], &[&format!("A{}", i + 1)]))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ne_closure(&constraints, "R", &["A0"]));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_outer_equi_join,
    bench_total_projection,
    bench_null_constraints,
    bench_fd_machinery,
    bench_ne_inference
);
criterion_main!(benches);
