//! B4: what `Remove` buys at runtime — materialization and scan cost of the
//! merged relation before and after redundant attributes are dropped
//! (paper §4.2: removal "reduces the size of the relations").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_core::Merge;
use relmerge_engine::{Database, DbmsProfile, QueryPlan};
use relmerge_workload::{generate_university, UniversitySpec};

fn bench_remove_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("remove_effect");
    group.sample_size(20);
    for &courses in &[1_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(5);
        let u = generate_university(
            &UniversitySpec {
                courses,
                ..UniversitySpec::default()
            },
            &mut rng,
        )
        .expect("university");
        let plan_merge = || {
            Merge::plan(
                &u.schema,
                &["COURSE", "OFFER", "TEACH", "ASSIST"],
                "COURSE_M",
            )
            .expect("merge")
        };

        // Materialization (η) cost with all 7 columns vs the removed 4.
        let wide = plan_merge();
        group.bench_with_input(
            BenchmarkId::new("materialize_wide7", courses),
            &courses,
            |b, _| b.iter(|| wide.apply(&u.state).expect("apply")),
        );
        let mut narrow = plan_merge();
        narrow.remove_all_removable().expect("remove");
        group.bench_with_input(
            BenchmarkId::new("materialize_removed4", courses),
            &courses,
            |b, _| b.iter(|| narrow.apply(&u.state).expect("apply")),
        );

        // Scan cost over the stored merged relation, wide vs narrow.
        let wide_state = wide.apply(&u.state).expect("apply");
        let mut wide_db = Database::new(wide.schema().clone(), DbmsProfile::ideal()).expect("db");
        wide_db.load_state(&wide_state).expect("load");
        group.bench_with_input(BenchmarkId::new("scan_wide7", courses), &courses, |b, _| {
            b.iter(|| wide_db.execute(&QueryPlan::scan("COURSE_M")).expect("scan"))
        });
        let narrow_state = narrow.apply(&u.state).expect("apply");
        let mut narrow_db =
            Database::new(narrow.schema().clone(), DbmsProfile::ideal()).expect("db");
        narrow_db.load_state(&narrow_state).expect("load");
        group.bench_with_input(
            BenchmarkId::new("scan_removed4", courses),
            &courses,
            |b, _| {
                b.iter(|| {
                    narrow_db
                        .execute(&QueryPlan::scan("COURSE_M"))
                        .expect("scan")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_remove_effect);
criterion_main!(benches);
