//! B8: the morsel-parallel executor versus serial execution on the large
//! unmerged university chain, plus the cost-based hash join versus the
//! forced index-nested-loop strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_bench::experiments::{composite_no_index_query, unmerged_scan_query};
use relmerge_engine::{Database, DbmsProfile};
use relmerge_workload::{generate_university, UniversitySpec};

fn build_db(courses: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )
    .expect("university");
    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("database");
    db.load_state(&u.state).expect("load");
    db
}

/// Serial vs parallel execution of the B1 chain scan (3 outer joins) at
/// every worker count up to the machine's parallelism.
fn bench_chain_scan_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_chain_scan");
    group.sample_size(20);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for &courses in &[10_000usize, 40_000] {
        let mut db = build_db(courses);
        let plan = unmerged_scan_query();
        let mut workers: Vec<usize> = (0..).map(|i| 1 << i).take_while(|&w| w < cores).collect();
        workers.push(cores);
        for w in workers {
            db.configure(db.config().parallelism(w));
            group.bench_with_input(
                BenchmarkId::new(format!("workers_{w}"), courses),
                &courses,
                |b, _| b.iter(|| db.execute(&plan).expect("query")),
            );
        }
    }
    group.finish();
}

/// Cost-based hash join vs forced index-nested-loop on the chain scan
/// (serial, so the join strategy is the only variable).
fn bench_join_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_strategy_serial");
    group.sample_size(20);
    for &courses in &[1_000usize, 10_000] {
        let mut db = build_db(courses);
        db.configure(db.config().parallelism(1));
        let plan = unmerged_scan_query();
        db.configure(db.config().hash_join_threshold(usize::MAX));
        group.bench_with_input(BenchmarkId::new("forced_inl", courses), &courses, |b, _| {
            b.iter(|| db.execute(&plan).expect("query"))
        });
        db.configure(
            db.config()
                .hash_join_threshold(relmerge_engine::DEFAULT_HASH_JOIN_THRESHOLD),
        );
        group.bench_with_input(
            BenchmarkId::new("cost_based_hash", courses),
            &courses,
            |b, _| b.iter(|| db.execute(&plan).expect("query")),
        );
    }
    group.finish();
}

/// The no-covering-index composite join: one transient hash build versus
/// the quadratic per-row scan fallback (small scale — the fallback is
/// O(|ASSIST| x |TEACH|)).
fn bench_composite_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("composite_join_no_index");
    group.sample_size(20);
    let courses = 1_000usize;
    let mut db = build_db(courses);
    db.configure(db.config().parallelism(1));
    let plan = composite_no_index_query();
    db.configure(db.config().hash_join_threshold(usize::MAX));
    group.bench_with_input(
        BenchmarkId::new("per_row_scan", courses),
        &courses,
        |b, _| b.iter(|| db.execute(&plan).expect("query")),
    );
    db.configure(
        db.config()
            .hash_join_threshold(relmerge_engine::DEFAULT_HASH_JOIN_THRESHOLD),
    );
    group.bench_with_input(
        BenchmarkId::new("transient_hash_build", courses),
        &courses,
        |b, _| b.iter(|| db.execute(&plan).expect("query")),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_chain_scan_workers,
    bench_join_strategy,
    bench_composite_join
);
criterion_main!(benches);
