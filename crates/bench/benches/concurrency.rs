//! B12: session-layer cost — pinned-snapshot read latency against the
//! plain-`Database` read path, writer-path commit latency, and the
//! shared build cache serving a second session's identical join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_bench::experiments::{composite_no_index_query, unmerged_point_query};
use relmerge_engine::{Database, DbmsProfile, Statement, Store};
use relmerge_relational::{Tuple, Value};
use relmerge_workload::{generate_university, UniversitySpec};

const COURSES: usize = 1_000;

fn base_db() -> Database {
    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses: COURSES,
            ..UniversitySpec::default()
        },
        &mut rng,
    )
    .expect("university");
    let mut db = Database::new(u.schema, DbmsProfile::ideal()).expect("database");
    db.load_state(&u.state).expect("load");
    db
}

/// Point-read latency: plain `Database::execute` versus a session pin
/// plus execute on the pinned snapshot — the session layer's whole read
/// overhead is the pin.
fn bench_point_read(c: &mut Criterion) {
    let db = base_db();
    let store = Store::new(db.fork());
    let session = store.session();
    let plan = unmerged_point_query(7);
    let mut group = c.benchmark_group("session_point_read");
    group.bench_with_input(BenchmarkId::from_parameter("database"), &(), |b, ()| {
        b.iter(|| db.execute(&plan).expect("read"));
    });
    group.bench_with_input(BenchmarkId::from_parameter("session_pin"), &(), |b, ()| {
        b.iter(|| {
            session
                .pin()
                .expect("pin")
                .execute(&plan)
                .expect("pinned read")
        });
    });
    group.finish();
}

/// Writer-path commit latency: an insert/delete pair straight on a
/// `Database` versus through the store's serialized writer (lock, fault
/// gate, commit-sequence publish).
fn bench_writer_commit(c: &mut Criterion) {
    let mut db = base_db();
    let store = Store::new(db.fork());
    let session = store.session();
    let batch = |nr: i64| {
        vec![
            Statement::insert("COURSE", Tuple::new([Value::Int(nr)])),
            Statement::delete("COURSE", Tuple::new([Value::Int(nr)])),
        ]
    };
    let mut group = c.benchmark_group("writer_commit");
    group.bench_with_input(BenchmarkId::from_parameter("database"), &(), |b, ()| {
        b.iter(|| db.apply_batch(&batch(5_000_000)).expect("batch"));
    });
    group.bench_with_input(BenchmarkId::from_parameter("store_writer"), &(), |b, ()| {
        b.iter(|| session.apply_batch(&batch(6_000_000)).expect("batch"));
    });
    group.finish();
}

/// The shared cache across sessions: the composite join's transient
/// build measured on a session that must build it (cache cleared via a
/// fresh store each iteration would dominate, so cold is approximated by
/// capacity 0) versus a session hitting the build another session
/// inserted.
fn bench_shared_cache(c: &mut Criterion) {
    let db = base_db();
    let plan = composite_no_index_query();
    let mut group = c.benchmark_group("shared_cache_composite");
    group.sample_size(20);

    let cold_store = Store::new(db.fork());
    cold_store.configure(cold_store.config().build_cache_capacity(0));
    let cold = cold_store.session();
    group.bench_with_input(BenchmarkId::from_parameter("cache_off"), &(), |b, ()| {
        b.iter(|| {
            cold.pin()
                .expect("pin")
                .execute(&plan)
                .expect("composite read")
        });
    });

    let warm_store = Store::new(db.fork());
    let first = warm_store.session();
    let _ = first
        .pin()
        .expect("pin")
        .execute(&plan)
        .expect("populate the shared cache");
    let second = warm_store.session();
    group.bench_with_input(
        BenchmarkId::from_parameter("cross_session_hit"),
        &(),
        |b, ()| {
            b.iter(|| {
                second
                    .pin()
                    .expect("pin")
                    .execute(&plan)
                    .expect("composite read")
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_point_read,
    bench_writer_commit,
    bench_shared_cache
);
criterion_main!(benches);
