//! B6: a read-mostly operation mix executed end to end against the
//! unmerged and merged university databases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use relmerge_bench::experiments::mixed_workload;

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_workload_2k_ops");
    group.sample_size(10);
    for &courses in &[1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(courses),
            &courses,
            |b, &courses| {
                b.iter(|| mixed_workload(courses, 2_000).expect("workload"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
