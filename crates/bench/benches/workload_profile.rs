//! B14: the workload profiler's overhead — the same skewed read mix
//! executed with profiling inherent to the engine, measured per query,
//! plus the cost of the snapshot/report path itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_bench::experiments::{unmerged_by_faculty_query, unmerged_point_query};
use relmerge_engine::{Database, DbmsProfile};
use relmerge_obs as obs;
use relmerge_workload::{
    generate_university, skewed_reads, SkewSpec, UniversityOp, UniversitySpec,
};

fn build_db(courses: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )
    .expect("university");
    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("database");
    db.load_state(&u.state).expect("load");
    db
}

/// The skewed read mix end to end: every execution folds into the
/// profiler, so this measures query cost *with* attribution.
fn bench_skewed_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_profile");
    group.sample_size(20);
    for &courses in &[1_000usize, 10_000] {
        let db = build_db(courses);
        let mut rng = StdRng::seed_from_u64(14);
        let ops = skewed_reads(&SkewSpec::default(), 256, courses, 200, &mut rng);
        group.bench_with_input(BenchmarkId::new("skewed_mix", courses), &courses, |b, _| {
            b.iter(|| {
                for op in &ops {
                    match op {
                        UniversityOp::CourseDetail { nr } => {
                            db.execute(&unmerged_point_query(*nr)).expect("point")
                        }
                        UniversityOp::ByFaculty { ssn } => {
                            db.execute(&unmerged_by_faculty_query(*ssn)).expect("rev")
                        }
                        other => panic!("write op in read stream: {other:?}"),
                    };
                }
            })
        });
    }
    group.finish();
}

/// Snapshotting the profiler and ranking its hot joins — the report path
/// a monitoring loop would poll.
fn bench_snapshot_and_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_report");
    group.sample_size(20);
    let courses = 1_000usize;
    let db = build_db(courses);
    let mut rng = StdRng::seed_from_u64(14);
    for op in skewed_reads(&SkewSpec::default(), 512, courses, 200, &mut rng) {
        match op {
            UniversityOp::CourseDetail { nr } => {
                db.execute(&unmerged_point_query(nr)).expect("point")
            }
            UniversityOp::ByFaculty { ssn } => {
                db.execute(&unmerged_by_faculty_query(ssn)).expect("rev")
            }
            other => panic!("write op in read stream: {other:?}"),
        };
    }
    group.bench_function("snapshot", |b| b.iter(|| db.profile_snapshot()));
    let snap = db.profile_snapshot();
    group.bench_function("report", |b| b.iter(|| obs::report(&snap)));
    group.bench_function("report_json", |b| {
        b.iter(|| obs::report_to_json(&obs::report(&snap)))
    });
    group.finish();
}

criterion_group!(benches, bench_skewed_mix, bench_snapshot_and_report);
criterion_main!(benches);
