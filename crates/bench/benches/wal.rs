//! B11: write-ahead-log cost — per-batch commit latency with the log on
//! versus the in-memory engine, and crash-recovery time against the
//! number of records in the log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_bench::experiments::university_merge;
use relmerge_engine::{
    Database, DbmsProfile, DurabilityConfig, EngineConfig, FsyncPolicy, Statement,
};
use relmerge_workload::{university_ops, write_batches, MixSpec};

const COURSES: usize = 1_000;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("relmerge-walbench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path) -> EngineConfig {
    EngineConfig::default().durability(Some(
        DurabilityConfig::new(dir)
            .snapshot_every(0)
            .fsync(FsyncPolicy::Never),
    ))
}

/// The write stream both sides of the comparison commit.
fn workload(n_batches: usize, batch_size: usize) -> Vec<Vec<Statement>> {
    let mut rng = StdRng::seed_from_u64(0xB11);
    let ops = university_ops(
        &MixSpec::write_only(),
        n_batches * batch_size,
        COURSES,
        20,
        200,
        &mut rng,
    );
    write_batches(&ops, false, batch_size)
}

/// Per-batch commit latency: the same write stream against a durable
/// database (every commit framed, checksummed, and appended) and the
/// plain in-memory engine.
fn bench_append(c: &mut Criterion) {
    let (u, _) = university_merge(COURSES, 42).expect("university");
    let batches = workload(32, 16);
    let mut group = c.benchmark_group("wal_append_32x16");
    group.sample_size(10);
    for durable in [false, true] {
        let label = if durable { "durable" } else { "in-memory" };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &durable,
            |b, &durable| {
                b.iter(|| {
                    let dir = fresh_dir("append");
                    let mut db = if durable {
                        Database::new_with_config(
                            u.schema.clone(),
                            DbmsProfile::ideal(),
                            durable_config(&dir),
                        )
                        .expect("durable db")
                    } else {
                        Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("db")
                    };
                    let seed: Vec<Statement> = u
                        .state
                        .iter()
                        .flat_map(|(name, rel)| {
                            rel.iter().map(move |t| Statement::insert(name, t.clone()))
                        })
                        .collect();
                    db.apply_batch(&seed).expect("seed");
                    for batch in &batches {
                        let _ = db.apply_batch(batch);
                    }
                    drop(db);
                    let _ = std::fs::remove_dir_all(&dir);
                });
            },
        );
    }
    group.finish();
}

/// Crash-recovery time (newest snapshot + full WAL-suffix replay) as the
/// log grows.
fn bench_recover(c: &mut Criterion) {
    let (u, _) = university_merge(COURSES, 42).expect("university");
    let mut group = c.benchmark_group("wal_recover");
    group.sample_size(10);
    for &n_batches in &[8usize, 64] {
        let dir = fresh_dir(&format!("recover-{n_batches}"));
        let cfg = durable_config(&dir);
        let mut db = Database::new_with_config(u.schema.clone(), DbmsProfile::ideal(), cfg.clone())
            .expect("durable db");
        let seed: Vec<Statement> = u
            .state
            .iter()
            .flat_map(|(name, rel)| rel.iter().map(move |t| Statement::insert(name, t.clone())))
            .collect();
        db.apply_batch(&seed).expect("seed");
        for batch in &workload(n_batches, 16) {
            let _ = db.apply_batch(batch);
        }
        drop(db);
        group.bench_with_input(
            BenchmarkId::from_parameter(n_batches),
            &n_batches,
            |b, _| {
                b.iter(|| {
                    let (db, report) = Database::recover(cfg.clone()).expect("recover");
                    assert!(!report.torn_tail);
                    drop(db);
                });
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_recover);
criterion_main!(benches);
