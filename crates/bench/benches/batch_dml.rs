//! B7: the same write stream applied per-statement vs through
//! `Database::apply_batch` with deferred group validation, across batch
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use relmerge_bench::experiments::batch_dml;

fn bench_batch_dml(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_dml_2k_ops");
    group.sample_size(10);
    for &batch_size in &[8usize, 64, 512] {
        group.bench_with_input(
            BenchmarkId::from_parameter(batch_size),
            &batch_size,
            |b, &batch_size| {
                b.iter(|| batch_dml(1_000, 2_000, batch_size).expect("batch dml"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_dml);
criterion_main!(benches);
