//! B15: optimizer-driven predicate pushdown versus the legacy
//! top-of-plan filter, plus the compile-once predicate evaluation path
//! versus the deprecated per-tuple `Predicate::eval` entry point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_engine::{Database, DbmsProfile, JoinStep, Predicate, QueryPlan};
use relmerge_workload::{generate_university, University, UniversitySpec};

fn build_university(courses: usize) -> University {
    let mut rng = StdRng::seed_from_u64(42);
    generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )
    .expect("university")
}

fn build_db(u: &University) -> Database {
    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("database");
    db.load_state(&u.state).expect("load");
    db
}

/// The B15 selective chain: the pushed `Eq(T.F.SSN, ssn)` prunes the
/// stream at the TEACH probe, before the composite non-indexed ASSIST
/// join scans per surviving row (strategy pinned to index-nested-loop so
/// filter placement is the only variable).
fn bench_selective_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushdown_selective_chain");
    group.sample_size(20);
    let plan = QueryPlan::scan("COURSE")
        .join(JoinStep::inner("TEACH", &["C.NR"], &["T.C.NR"]))
        .join(JoinStep::inner(
            "ASSIST",
            &["T.C.NR", "T.F.SSN"],
            &["A.C.NR", "A.S.SSN"],
        ))
        .filter(Predicate::eq("T.F.SSN", 10_000_i64));
    for &courses in &[1_000usize, 4_000] {
        let u = build_university(courses);
        let mut db = build_db(&u);
        db.configure(db.config().hash_join_threshold(usize::MAX));
        db.configure(db.config().predicate_pushdown(false));
        group.bench_with_input(
            BenchmarkId::new("filter_at_top", courses),
            &courses,
            |b, _| b.iter(|| db.execute(&plan).expect("query")),
        );
        db.configure(db.config().predicate_pushdown(true));
        group.bench_with_input(
            BenchmarkId::new("pushed_to_probe", courses),
            &courses,
            |b, _| b.iter(|| db.execute(&plan).expect("query")),
        );
    }
    group.finish();
}

/// The B15 root upgrade: `Eq` on the root key turns the full scan into
/// an index point lookup.
fn bench_root_eq_upgrade(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushdown_root_eq_upgrade");
    group.sample_size(20);
    for &courses in &[10_000usize, 40_000] {
        let u = build_university(courses);
        let mut db = build_db(&u);
        let offered = *u.offered_courses.first().expect("offered course");
        let plan = QueryPlan::scan("COURSE")
            .join(JoinStep::outer("OFFER", &["C.NR"], &["O.C.NR"]))
            .filter(Predicate::eq("C.NR", offered));
        db.configure(db.config().predicate_pushdown(false));
        group.bench_with_input(
            BenchmarkId::new("prefiltered_scan", courses),
            &courses,
            |b, _| b.iter(|| db.execute(&plan).expect("query")),
        );
        db.configure(db.config().predicate_pushdown(true));
        group.bench_with_input(
            BenchmarkId::new("point_lookup", courses),
            &courses,
            |b, _| b.iter(|| db.execute(&plan).expect("query")),
        );
    }
    group.finish();
}

/// Compile-once evaluation ([`relmerge_engine::CompiledPredicate`])
/// versus the deprecated per-tuple [`Predicate::eval`], which re-resolved
/// every attribute against the header on every tuple.
fn bench_compile_vs_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicate_eval_path");
    group.sample_size(20);
    let u = build_university(4_000);
    let header = u
        .schema
        .scheme("TEACH")
        .expect("TEACH scheme")
        .attrs()
        .to_vec();
    let rows: Vec<_> = u
        .state
        .relation("TEACH")
        .expect("TEACH relation")
        .rows()
        .to_vec();
    let pred = Predicate::eq("T.F.SSN", 10_050_i64).and(Predicate::not_null("T.C.NR"));
    group.bench_function(BenchmarkId::new("compiled_matches", rows.len()), |b| {
        b.iter(|| {
            let cp = pred.compile(&header).expect("compile");
            rows.iter().filter(|t| cp.matches(t.values())).count()
        })
    });
    #[allow(deprecated)]
    group.bench_function(BenchmarkId::new("per_tuple_eval", rows.len()), |b| {
        b.iter(|| {
            rows.iter()
                .filter(|t| pred.eval(&header, t).expect("eval"))
                .count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selective_chain,
    bench_root_eq_upgrade,
    bench_compile_vs_eval
);
criterion_main!(benches);
