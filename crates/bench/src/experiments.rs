//! The measured experiments: B1 (query speedup), B2 (maintenance cost),
//! and B4 (the effect of `Remove` on relation size).

use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge_core::{Merge, Merged};
use relmerge_engine::{
    Database, DbmsProfile, DmlError, JoinStep, Predicate, QueryPlan, Statement, Store,
};
use relmerge_obs as obs;
use relmerge_relational::{DatabaseState, Error, Result, Tuple, Value};
use relmerge_workload::{generate_university, University, UniversitySpec};

/// The university COURSE-chain merge used by B1/B2/B4: merge
/// {COURSE, OFFER, TEACH, ASSIST} and remove every redundant key.
pub fn university_merge(courses: usize, seed: u64) -> Result<(University, Merged)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )?;
    let mut m = Merge::plan(
        &u.schema,
        &["COURSE", "OFFER", "TEACH", "ASSIST"],
        "COURSE_M",
    )?;
    m.remove_all_removable()?;
    Ok((u, m))
}

/// Builds the two engine databases of the comparison: the unmerged Figure 3
/// schema and the merged/removed one, loaded with equivalent states.
pub fn university_databases(u: &University, m: &Merged) -> Result<(Database, Database)> {
    let mut unmerged = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
    unmerged.load_state(&u.state)?;
    let merged_state = m.apply(&u.state)?;
    let mut merged = Database::new(m.schema().clone(), DbmsProfile::ideal())?;
    merged.load_state(&merged_state)?;
    Ok((unmerged, merged))
}

/// The unmerged "course detail" point query: course → offer → teach →
/// assist (3 joins, the paper's motivating join chain).
#[must_use]
pub fn unmerged_point_query(nr: i64) -> QueryPlan {
    QueryPlan::lookup("COURSE", &["C.NR"], Tuple::new([Value::Int(nr)]))
        .join(JoinStep::outer("OFFER", &["C.NR"], &["O.C.NR"]))
        .join(JoinStep::outer("TEACH", &["O.C.NR"], &["T.C.NR"]))
        .join(JoinStep::outer("ASSIST", &["O.C.NR"], &["A.C.NR"]))
}

/// The merged equivalent: one index probe.
#[must_use]
pub fn merged_point_query(nr: i64) -> QueryPlan {
    QueryPlan::lookup("COURSE_M", &["C.NR"], Tuple::new([Value::Int(nr)]))
}

/// Reverse lookup — "courses taught by faculty member F" — against the
/// unmerged schema: probe TEACH's secondary index, then walk up the chain.
#[must_use]
pub fn unmerged_by_faculty_query(ssn: i64) -> QueryPlan {
    QueryPlan::lookup("TEACH", &["T.F.SSN"], Tuple::new([Value::Int(ssn)]))
        .join(JoinStep::inner("OFFER", &["T.C.NR"], &["O.C.NR"]))
        .join(JoinStep::inner("COURSE", &["O.C.NR"], &["C.NR"]))
        .select(&["C.NR", "O.D.NAME"])
}

/// The merged equivalent: one secondary-index probe (the index exists
/// because the merged scheme's `T.F.SSN` column is a foreign key).
#[must_use]
pub fn merged_by_faculty_query(ssn: i64) -> QueryPlan {
    QueryPlan::lookup("COURSE_M", &["T.F.SSN"], Tuple::new([Value::Int(ssn)]))
        .select(&["C.NR", "O.D.NAME"])
}

/// The unmerged analytical query: full course listing with department,
/// teacher, and assistant.
#[must_use]
pub fn unmerged_scan_query() -> QueryPlan {
    QueryPlan::scan("COURSE")
        .join(JoinStep::outer("OFFER", &["C.NR"], &["O.C.NR"]))
        .join(JoinStep::outer("TEACH", &["O.C.NR"], &["T.C.NR"]))
        .join(JoinStep::outer("ASSIST", &["O.C.NR"], &["A.C.NR"]))
}

/// The merged equivalent: one scan.
#[must_use]
pub fn merged_scan_query() -> QueryPlan {
    QueryPlan::scan("COURSE_M")
}

/// One row of the B1 query-speedup table.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Courses in the instance.
    pub courses: usize,
    /// Index probes per unmerged point query.
    pub unmerged_probes: u64,
    /// Index probes per merged point query.
    pub merged_probes: u64,
    /// Mean unmerged point-query latency (ns).
    pub unmerged_ns: f64,
    /// Mean merged point-query latency (ns).
    pub merged_ns: f64,
    /// Point-query latency ratio (unmerged / merged).
    pub point_speedup: f64,
    /// Unmerged scan-query latency (ns).
    pub scan_unmerged_ns: f64,
    /// Merged scan-query latency (ns).
    pub scan_merged_ns: f64,
    /// Scan latency ratio.
    pub scan_speedup: f64,
}

/// B1: merged-vs-unmerged retrieval cost across instance scales.
pub fn query_speedup(scales: &[usize], queries_per_scale: usize) -> Result<Vec<SpeedupRow>> {
    let mut rows = Vec::new();
    for &courses in scales {
        let _scale_span = obs::span("bench.b1.scale").field("courses", courses);
        let (u, m) = university_merge(courses, 42)?;
        let (unmerged, merged) = university_databases(&u, &m)?;
        let mut rng = StdRng::seed_from_u64(7);
        let keys: Vec<i64> = (0..queries_per_scale)
            .map(|_| *u.offered_courses.choose(&mut rng).expect("offers exist"))
            .collect();

        // Warm-up + correctness cross-check on one key.
        let probe_key = keys[0];
        let (r1, s1) = unmerged.execute(&unmerged_point_query(probe_key))?;
        let (r2, s2) = merged.execute(&merged_point_query(probe_key))?;
        assert_eq!(r1.len(), r2.len(), "result cardinality must agree");

        let t = obs::timer("bench.b1.point.unmerged").field("queries", keys.len());
        for &k in &keys {
            let _ = unmerged.execute(&unmerged_point_query(k))?;
        }
        let unmerged_ns = t.stop() as f64 / keys.len() as f64;
        let t = obs::timer("bench.b1.point.merged").field("queries", keys.len());
        for &k in &keys {
            let _ = merged.execute(&merged_point_query(k))?;
        }
        let merged_ns = t.stop() as f64 / keys.len() as f64;

        // Scans: warm up once, then average several iterations (a single
        // cold measurement is dominated by first-touch page faults).
        let (scan1, _) = unmerged.execute(&unmerged_scan_query())?;
        let (scan2, _) = merged.execute(&merged_scan_query())?;
        assert_eq!(scan1.len(), scan2.len(), "scan cardinality must agree");
        const SCAN_ITERS: u32 = 5;
        let t = obs::timer("bench.b1.scan.unmerged");
        for _ in 0..SCAN_ITERS {
            let _ = unmerged.execute(&unmerged_scan_query())?;
        }
        let scan_unmerged_ns = t.stop() as f64 / f64::from(SCAN_ITERS);
        let t = obs::timer("bench.b1.scan.merged");
        for _ in 0..SCAN_ITERS {
            let _ = merged.execute(&merged_scan_query())?;
        }
        let scan_merged_ns = t.stop() as f64 / f64::from(SCAN_ITERS);

        rows.push(SpeedupRow {
            courses,
            unmerged_probes: s1.index_probes,
            merged_probes: s2.index_probes,
            unmerged_ns,
            merged_ns,
            point_speedup: unmerged_ns / merged_ns,
            scan_unmerged_ns,
            scan_merged_ns,
            scan_speedup: scan_unmerged_ns / scan_merged_ns,
        });
    }
    Ok(rows)
}

/// One row of the B2 maintenance-cost table.
#[derive(Debug, Clone)]
pub struct MaintenanceRow {
    /// Scenario label.
    pub scenario: String,
    /// Logical entities inserted (one course with offer/teach/assist).
    pub entities: u64,
    /// Physical insert statements issued.
    pub statements: u64,
    /// Declarative-tier checks.
    pub declarative: u64,
    /// Procedural-tier (trigger/rule) checks.
    pub procedural: u64,
    /// Mean wall time per logical entity (ns).
    pub ns_per_entity: f64,
}

/// B2: constraint-maintenance cost of inserting course bundles into the
/// unmerged schema (fully declarative on DB2) versus the merged schema
/// (general null constraints → SYBASE-style triggers).
pub fn maintenance_cost(entities: usize) -> Result<Vec<MaintenanceRow>> {
    let (u, m) = university_merge(10, 1)?;
    let mut rows = Vec::new();

    // Unmerged: DB2 profile — every constraint is declarative.
    {
        let mut db = Database::new(u.schema.clone(), DbmsProfile::db2())?;
        db.load_state(&u.state)?;
        // Seed references.
        let dept = Value::text("dept0");
        let faculty = Value::Int(10_000);
        let student = Value::Int(10_400);
        let _ = db.take_stats(); // discard the load phase
        let t = obs::timer("bench.b2.insert").field("scenario", "unmerged");
        for i in 0..entities {
            let nr = Value::Int(1_000_000 + i as i64);
            db.insert("COURSE", Tuple::new([nr.clone()]))
                .expect("course insert");
            db.insert("OFFER", Tuple::new([nr.clone(), dept.clone()]))
                .expect("offer insert");
            db.insert("TEACH", Tuple::new([nr.clone(), faculty.clone()]))
                .expect("teach insert");
            db.insert("ASSIST", Tuple::new([nr, student.clone()]))
                .expect("assist insert");
        }
        let elapsed = t.stop() as f64;
        let stats = db.take_stats();
        rows.push(MaintenanceRow {
            scenario: "unmerged (DB2, declarative)".to_owned(),
            entities: entities as u64,
            statements: stats.inserts,
            declarative: stats.declarative_checks,
            procedural: stats.procedural_checks,
            ns_per_entity: elapsed / entities as f64,
        });
    }

    // Merged: SYBASE profile — NS/NE constraints through triggers, but a
    // course bundle is a single statement.
    {
        let merged_state = m.apply(&u.state)?;
        let mut db = Database::new(m.schema().clone(), DbmsProfile::sybase40())?;
        db.load_state(&merged_state)?;
        let dept = Value::text("dept0");
        let faculty = Value::Int(10_000);
        let student = Value::Int(10_400);
        let _ = db.take_stats(); // discard the load phase
        let t = obs::timer("bench.b2.insert").field("scenario", "merged");
        for i in 0..entities {
            let nr = Value::Int(1_000_000 + i as i64);
            db.insert(
                "COURSE_M",
                Tuple::new([nr, dept.clone(), faculty.clone(), student.clone()]),
            )
            .expect("merged insert");
        }
        let elapsed = t.stop() as f64;
        let stats = db.take_stats();
        rows.push(MaintenanceRow {
            scenario: "merged (SYBASE 4.0, triggers)".to_owned(),
            entities: entities as u64,
            statements: stats.inserts,
            declarative: stats.declarative_checks,
            procedural: stats.procedural_checks,
            ns_per_entity: elapsed / entities as f64,
        });
    }
    Ok(rows)
}

/// One row of the B6 mixed-workload table.
#[derive(Debug, Clone)]
pub struct MixedRow {
    /// Scenario label.
    pub scenario: String,
    /// Operations executed.
    pub ops: usize,
    /// Read operations (point + reverse).
    pub reads: usize,
    /// Write operations (adds + drops).
    pub writes: usize,
    /// Total wall time (ns).
    pub total_ns: f64,
    /// Mean ns per operation.
    pub ns_per_op: f64,
}

/// B6: the same read-mostly operation stream executed against the
/// unmerged and merged databases — the whole-workload view of the §1
/// trade-off (reads get cheaper, writes bundle up).
pub fn mixed_workload(courses: usize, n_ops: usize) -> Result<Vec<MixedRow>> {
    use relmerge_workload::{university_ops, MixSpec, UniversityOp};

    let (u, m) = university_merge(courses, 21)?;
    let mut rng = StdRng::seed_from_u64(77);
    // Defaults: 20 departments, 200 faculty (persons 500 × 2/5).
    let ops = university_ops(&MixSpec::default(), n_ops, courses, 20, 200, &mut rng);
    let reads = ops
        .iter()
        .filter(|o| {
            matches!(
                o,
                UniversityOp::CourseDetail { .. } | UniversityOp::ByFaculty { .. }
            )
        })
        .count();
    let writes = n_ops - reads;
    let mut rows = Vec::new();

    // Unmerged execution.
    {
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
        db.load_state(&u.state)?;
        let t = obs::timer("bench.b6.run").field("scenario", "unmerged");
        for op in &ops {
            match op {
                UniversityOp::CourseDetail { nr } => {
                    let _ = db.execute(&unmerged_point_query(*nr))?;
                }
                UniversityOp::ByFaculty { ssn } => {
                    let _ = db.execute(&unmerged_by_faculty_query(*ssn))?;
                }
                UniversityOp::AddCourse { nr, dept, teacher } => {
                    db.insert("COURSE", Tuple::new([Value::Int(*nr)]))
                        .expect("fresh course");
                    db.insert(
                        "OFFER",
                        Tuple::new([Value::Int(*nr), Value::text(format!("dept{dept}"))]),
                    )
                    .expect("valid offer");
                    if let Some(t) = teacher {
                        db.insert("TEACH", Tuple::new([Value::Int(*nr), Value::Int(*t)]))
                            .expect("valid teach");
                    }
                }
                UniversityOp::DropCourse { nr } => {
                    let key = Tuple::new([Value::Int(*nr)]);
                    let _ = db.delete_by_key("TEACH", &key).expect("restrict-free");
                    let _ = db.delete_by_key("ASSIST", &key).expect("restrict-free");
                    let _ = db.delete_by_key("OFFER", &key).expect("restrict-free");
                    let _ = db.delete_by_key("COURSE", &key).expect("restrict-free");
                }
            }
        }
        let total_ns = t.stop() as f64;
        rows.push(MixedRow {
            scenario: "unmerged (4 relations)".to_owned(),
            ops: n_ops,
            reads,
            writes,
            total_ns,
            ns_per_op: total_ns / n_ops as f64,
        });
    }

    // Merged execution.
    {
        let merged_state = m.apply(&u.state)?;
        let mut db = Database::new(m.schema().clone(), DbmsProfile::ideal())?;
        db.load_state(&merged_state)?;
        let t = obs::timer("bench.b6.run").field("scenario", "merged");
        for op in &ops {
            match op {
                UniversityOp::CourseDetail { nr } => {
                    let _ = db.execute(&merged_point_query(*nr))?;
                }
                UniversityOp::ByFaculty { ssn } => {
                    let _ = db.execute(&merged_by_faculty_query(*ssn))?;
                }
                UniversityOp::AddCourse { nr, dept, teacher } => {
                    db.insert(
                        "COURSE_M",
                        Tuple::new([
                            Value::Int(*nr),
                            Value::text(format!("dept{dept}")),
                            teacher.map_or(Value::Null, Value::Int),
                            Value::Null,
                        ]),
                    )
                    .expect("valid merged insert");
                }
                UniversityOp::DropCourse { nr } => {
                    let _ = db
                        .delete_by_key("COURSE_M", &Tuple::new([Value::Int(*nr)]))
                        .expect("restrict-free");
                }
            }
        }
        let total_ns = t.stop() as f64;
        rows.push(MixedRow {
            scenario: "merged (COURSE_M)".to_owned(),
            ops: n_ops,
            reads,
            writes,
            total_ns,
            ns_per_op: total_ns / n_ops as f64,
        });
    }
    Ok(rows)
}

/// One row of the B7 batched-DML table: the same write stream applied
/// per-statement versus through [`Database::apply_batch`].
#[derive(Debug, Clone)]
pub struct BatchDmlRow {
    /// Scenario label ("unmerged" / "merged").
    pub scenario: String,
    /// Write statements in the stream.
    pub statements: usize,
    /// Batches the stream was chunked into.
    pub batches: usize,
    /// Constraint checks, per-statement application.
    pub eager_checks: u64,
    /// Constraint checks, batched application.
    pub batched_checks: u64,
    /// Index probes, per-statement application.
    pub eager_probes: u64,
    /// Index probes, batched application.
    pub batched_probes: u64,
    /// Group validations that ran deferred at batch commit.
    pub deferred_checks: u64,
    /// Wall time of the per-statement run (ns).
    pub eager_ns: f64,
    /// Wall time of the batched run (ns).
    pub batched_ns: f64,
}

/// Applies one statement through the immediate per-statement API — the
/// baseline the batch path is measured against.
fn apply_single(db: &mut Database, stmt: &Statement) -> Result<()> {
    match stmt {
        Statement::Insert { rel, tuple } => {
            db.insert(rel, tuple.clone())?;
        }
        Statement::Delete { rel, key } => {
            db.delete_by_key(rel, key)?;
        }
        Statement::Update { rel, key, tuple } => {
            db.update_by_key(rel, key, tuple.clone())?;
        }
    }
    Ok(())
}

/// B7: batched DML with deferred group validation versus per-statement
/// application of the identical write stream. Both runs must end in the
/// same [`relmerge_relational::DatabaseState`]; the batched run performs
/// strictly fewer constraint checks and index probes because commit-time
/// validation checks each constraint once over the touched rows of a
/// relation instead of once per statement.
pub fn batch_dml(courses: usize, n_ops: usize, batch_size: usize) -> Result<Vec<BatchDmlRow>> {
    use relmerge_workload::{university_ops, write_batches, MixSpec};

    let _span = obs::span("bench.b7.batch_dml")
        .field("ops", n_ops)
        .field("batch_size", batch_size);
    let (u, m) = university_merge(courses, 21)?;
    let mut rng = StdRng::seed_from_u64(77);
    // A write-only mix: reads lower to no statements anyway.
    let spec = MixSpec {
        point_reads: 0.0,
        reverse_reads: 0.0,
        inserts: 0.7,
        deletes: 0.3,
    };
    let ops = university_ops(&spec, n_ops, courses, 20, 200, &mut rng);
    let merged_state = m.apply(&u.state)?;

    let mut rows = Vec::new();
    for (scenario, merged) in [("unmerged (Figure 3)", false), ("merged (COURSE_M)", true)] {
        let batches = write_batches(&ops, merged, batch_size);
        let statements: usize = batches.iter().map(Vec::len).sum();
        let build = || -> Result<Database> {
            let mut db = if merged {
                Database::new(m.schema().clone(), DbmsProfile::ideal())?
            } else {
                Database::new(u.schema.clone(), DbmsProfile::ideal())?
            };
            db.load_state(if merged { &merged_state } else { &u.state })?;
            Ok(db)
        };

        // Per-statement baseline: every statement validated on its own.
        let mut eager_db = build()?;
        let _ = eager_db.take_stats(); // discard the load phase
        let t = obs::timer("bench.b7.eager").field("scenario", scenario);
        for stmt in batches.iter().flatten() {
            apply_single(&mut eager_db, stmt)?;
        }
        let eager_ns = t.stop() as f64;
        let eager = eager_db.take_stats();

        // Batched: all-or-nothing batches with deferred group validation.
        let mut batched_db = build()?;
        let _ = batched_db.take_stats();
        let mut deferred_checks = 0u64;
        let t = obs::timer("bench.b7.batched").field("scenario", scenario);
        for batch in &batches {
            deferred_checks += batched_db.apply_batch(batch)?.deferred_checks;
        }
        let batched_ns = t.stop() as f64;
        let batched = batched_db.take_stats();

        // The two application orders must be indistinguishable afterwards.
        assert_eq!(
            eager_db.snapshot()?,
            batched_db.snapshot()?,
            "batched and per-statement runs must converge on one state"
        );

        rows.push(BatchDmlRow {
            scenario: scenario.to_owned(),
            statements,
            batches: batches.len(),
            eager_checks: eager.total_checks(),
            batched_checks: batched.total_checks(),
            eager_probes: eager.index_probes,
            batched_probes: batched.index_probes,
            deferred_checks,
            eager_ns,
            batched_ns,
        });
    }
    Ok(rows)
}

/// One row of the B4 removal-effect table.
#[derive(Debug, Clone)]
pub struct RemoveRow {
    /// Courses in the instance.
    pub courses: usize,
    /// Merged relation arity before / after `Remove`.
    pub arity: (usize, usize),
    /// Stored values before / after.
    pub values: (usize, usize),
    /// Stored nulls before / after.
    pub nulls: (usize, usize),
    /// Null constraints on the merged scheme before / after.
    pub constraints: (usize, usize),
}

/// B4: the effect of `Remove` on relation size and constraint count
/// (paper §4.2: removing redundant attributes "simplifies the set of null
/// constraints … as well as reduces the size of the relations").
pub fn remove_effect(scales: &[usize]) -> Result<Vec<RemoveRow>> {
    let mut rows = Vec::new();
    for &courses in scales {
        let mut rng = StdRng::seed_from_u64(5);
        let u = generate_university(
            &UniversitySpec {
                courses,
                ..UniversitySpec::default()
            },
            &mut rng,
        )?;
        let mut m = Merge::plan(
            &u.schema,
            &["COURSE", "OFFER", "TEACH", "ASSIST"],
            "COURSE_M",
        )?;
        let before_state = m.apply(&u.state)?;
        let before = before_state.relation("COURSE_M").expect("merged relation");
        let before_arity = before.arity();
        let before_values = before.value_count();
        let before_nulls = before.null_count();
        let before_constraints = m.generated_null_constraints().len();
        m.remove_all_removable()?;
        let after_state = m.apply(&u.state)?;
        let after = after_state.relation("COURSE_M").expect("merged relation");
        rows.push(RemoveRow {
            courses,
            arity: (before_arity, after.arity()),
            values: (before_values, after.value_count()),
            nulls: (before_nulls, after.null_count()),
            constraints: (before_constraints, m.generated_null_constraints().len()),
        });
    }
    Ok(rows)
}

/// The B8 composite-key join: ASSIST ⋈ TEACH on `(C.NR, SSN)`. No index
/// covers TEACH's composite `[T.C.NR, T.F.SSN]` (its key is `[T.C.NR]`
/// alone), so the pre-optimiser executor degraded to a per-row scan of
/// TEACH; the cost-based planner builds one transient hash table instead.
/// The result is legitimately empty — faculty and student SSNs are
/// disjoint — which keeps the query a pure measure of join work.
#[must_use]
pub fn composite_no_index_query() -> QueryPlan {
    QueryPlan::scan("ASSIST").join(JoinStep::inner(
        "TEACH",
        &["A.C.NR", "A.S.SSN"],
        &["T.C.NR", "T.F.SSN"],
    ))
}

/// The worker counts every sweep-style experiment measures: 1, 2, 4, and
/// the machine's available parallelism, deduplicated and sorted. Counts
/// above the physical core count are kept on purpose — the determinism
/// guarantee says they must still produce byte-identical results, and on
/// a single-core host they are the only multi-worker data points.
#[must_use]
pub fn worker_sweep(cores: usize) -> Vec<usize> {
    let mut sweep = vec![1, 2, 4, cores.max(1)];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// One row of the B8 parallel-executor table.
#[derive(Debug, Clone)]
pub struct ParallelQueryRow {
    /// Query label.
    pub query: String,
    /// Courses in the instance.
    pub courses: usize,
    /// Worker threads used by the parallel run.
    pub workers: usize,
    /// Output rows of the query.
    pub rows_out: u64,
    /// Serial latency (ns) under the cost-based strategy (the `workers:
    /// 1` row's `parallel_ns`, or a dedicated serial loop for the
    /// composite query).
    pub serial_ns: f64,
    /// Latency (ns) of this row's run — median over the timing loop.
    pub parallel_ns: f64,
    /// Latency (ns) of the measured pre-optimiser baseline (forced
    /// index-nested-loop, serial).
    pub baseline_ns: f64,
    /// End-to-end speedup of this row's run over the pre-optimiser serial
    /// executor. For the chain query this is the median of per-pair
    /// `baseline / treatment` ratios from an interleaved A/B loop (host
    /// speed drifts by up to 2× between runs on shared machines, and
    /// pairing cancels the drift); for the composite query it is
    /// `baseline_ns / parallel_ns` (the margin is orders of magnitude, so
    /// drift is irrelevant).
    pub speedup: f64,
    /// Output rows per second through the parallel executor.
    pub rows_per_sec: f64,
    /// Morsels the root input was split into.
    pub morsels: u64,
    /// Hash builds per execution.
    pub hash_builds: u64,
    /// `rows_scanned` per execution under the cost-based strategy.
    pub rows_scanned: u64,
    /// `index_probes` per execution under the cost-based strategy.
    pub index_probes: u64,
    /// `rows_scanned` of the pre-optimiser (forced index-nested-loop)
    /// baseline.
    pub baseline_scanned: u64,
    /// `index_probes` of the pre-optimiser baseline.
    pub baseline_probes: u64,
}

/// B8: morsel-parallel executor and cost-based hash joins versus the
/// pre-optimiser serial index-nested-loop executor, on the unmerged
/// university schema, swept over every [`worker_sweep`] worker count.
///
/// Two queries are measured: the B1 chain scan (covering indexes exist,
/// so INL and borrowed-build hash joins do near-identical work per row —
/// the win there is parallelism) and [`composite_no_index_query`] (no
/// covering index, so the forced-INL fallback scans the right relation
/// per left row — quadratic — while the cost-based plan does one
/// build-side scan). Both baselines are *measured* by forcing the
/// index-nested-loop strategy (`hash_join_threshold = usize::MAX`,
/// serial): the chain baseline inside an interleaved A/B loop per worker
/// count (pairing cancels host-speed drift; the speedup is the median of
/// per-pair ratios), the composite baseline as a single timed execution
/// reused across worker counts (it is quadratic — seconds at full scale —
/// and the ~100× margin swallows any drift). The measured composite
/// baseline is asserted to scan exactly `|ASSIST| + |ASSIST| × |TEACH|`
/// rows, pinning the quadratic shape.
///
/// Each row's `speedup` is *end-to-end* against the pre-optimiser serial
/// executor — strategy change and parallel execution together — because
/// on a single-core host (the common CI shape) pure thread-level speedup
/// is unmeasurable and worker counts above 1 legitimately show thread
/// overhead; on such hosts the chain rows honestly sit near 1.0× and the
/// composite rows carry the measured win.
///
/// Every run is asserted byte-identical, with identical
/// [`relmerge_engine::QueryStats`], to its serial counterpart. The build
/// cache is disabled throughout — B8 measures strategy and workers;
/// [`build_cache_speedup`] (B10) measures the cache.
pub fn parallel_query(courses: usize, iters: u32) -> Result<Vec<ParallelQueryRow>> {
    let _span = obs::span("bench.b8.parallel_query").field("courses", courses);
    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )?;
    let assist_rows = u.state.relation("ASSIST").expect("assist relation").len() as u64;
    let teach_rows = u.state.relation("TEACH").expect("teach relation").len() as u64;
    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
    db.load_state(&u.state)?;
    let cores = db.parallelism();
    db.configure(db.config().build_cache_capacity(0));

    let queries = [
        ("chain scan (COURSE + 3 outer joins)", unmerged_scan_query()),
        (
            "composite join (ASSIST x TEACH)",
            composite_no_index_query(),
        ),
    ];
    let mut rows = Vec::new();
    for (label, plan) in queries {
        let quadratic = plan.root == "ASSIST";
        // Pre-optimiser baseline: forced index-nested-loop, serial. The
        // quadratic composite baseline is timed once here and reused; the
        // chain baseline is re-timed inside the paired loop below.
        db.configure(db.config().hash_join_threshold(usize::MAX));
        db.configure(db.config().parallelism(1));
        let _ = db.execute(&plan)?; // warm-up
        let t0 = std::time::Instant::now();
        let (baseline_rel, baseline_stats) = db.execute(&plan)?;
        let mut baseline_ns = obs::elapsed_ns(t0) as f64;
        let (baseline_scanned, baseline_probes) =
            (baseline_stats.rows_scanned, baseline_stats.index_probes);
        if quadratic {
            assert_eq!(
                baseline_scanned,
                assist_rows + assist_rows * teach_rows,
                "forced-INL composite baseline must scan |A| + |A|x|T| rows"
            );
        }

        // Cost-based serial run.
        db.configure(
            db.config()
                .hash_join_threshold(relmerge_engine::DEFAULT_HASH_JOIN_THRESHOLD),
        );
        let (serial_rel, serial_stats) = db.execute(&plan)?; // warm-up
        assert_eq!(
            serial_rel, baseline_rel,
            "hash-join plan must return the index-nested-loop result"
        );
        assert!(
            serial_stats.index_probes <= baseline_probes
                && serial_stats.rows_scanned <= baseline_scanned
                && serial_stats.index_probes + serial_stats.rows_scanned
                    < baseline_probes + baseline_scanned,
            "cost-based plan must do strictly less access work: {serial_stats:?} \
             vs baseline scanned={baseline_scanned} probes={baseline_probes}"
        );
        let t = obs::timer("bench.b8.serial").field("query", label);
        for _ in 0..iters {
            let _ = db.execute(&plan)?;
        }
        let serial_ns = t.stop() as f64 / f64::from(iters);

        // The sweep: same strategy at every worker count.
        for &workers in &worker_sweep(cores) {
            db.configure(db.config().parallelism(workers));
            let (par_rel, par_stats) = db.execute(&plan)?; // warm-up
            assert_eq!(
                par_rel, serial_rel,
                "parallel result must be byte-identical"
            );
            assert_eq!(par_stats, serial_stats, "parallel stats must be identical");
            let _t = obs::timer("bench.b8.parallel")
                .field("query", label)
                .field("workers", workers);
            let (parallel_ns, speedup) = if quadratic {
                // Baseline is seconds per execution; time the treatment
                // alone and compare against the single baseline run.
                let mut treat = Vec::with_capacity(iters as usize);
                for _ in 0..iters {
                    let t0 = std::time::Instant::now();
                    let _ = db.execute(&plan)?;
                    treat.push(obs::elapsed_ns(t0) as f64);
                }
                let t_ns = median(&mut treat);
                (t_ns, baseline_ns / t_ns)
            } else {
                // Interleave baseline and treatment executions and take
                // the median of per-pair ratios: host speed can drift 2×
                // over seconds, and pairing cancels the drift.
                let mut base = Vec::with_capacity(iters as usize);
                let mut treat = Vec::with_capacity(iters as usize);
                let mut ratios = Vec::with_capacity(iters as usize);
                for _ in 0..iters {
                    db.configure(db.config().hash_join_threshold(usize::MAX));
                    db.configure(db.config().parallelism(1));
                    let t0 = std::time::Instant::now();
                    let _ = db.execute(&plan)?;
                    let b_ns = obs::elapsed_ns(t0) as f64;
                    db.configure(
                        db.config()
                            .hash_join_threshold(relmerge_engine::DEFAULT_HASH_JOIN_THRESHOLD),
                    );
                    db.configure(db.config().parallelism(workers));
                    let t0 = std::time::Instant::now();
                    let _ = db.execute(&plan)?;
                    let t_ns = obs::elapsed_ns(t0) as f64;
                    base.push(b_ns);
                    treat.push(t_ns);
                    ratios.push(b_ns / t_ns);
                }
                baseline_ns = median(&mut base);
                (median(&mut treat), median(&mut ratios))
            };

            rows.push(ParallelQueryRow {
                query: label.to_owned(),
                courses,
                workers,
                rows_out: serial_rel.len() as u64,
                serial_ns,
                parallel_ns,
                baseline_ns,
                speedup,
                rows_per_sec: serial_rel.len() as f64 * 1e9 / parallel_ns,
                morsels: serial_stats.morsels,
                hash_builds: serial_stats.hash_builds,
                rows_scanned: serial_stats.rows_scanned,
                index_probes: serial_stats.index_probes,
                baseline_scanned,
                baseline_probes,
            });
        }
        db.configure(db.config().parallelism(1));
    }
    Ok(rows)
}

/// The median of `xs` (sorts in place; mean of the middle two for even
/// lengths). Benchmarks on shared hosts see multi-× interference spikes;
/// the median discards them where a mean would absorb them.
fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty(), "median of an empty sample");
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// One row of the B15 predicate-pushdown table.
#[derive(Debug, Clone)]
pub struct PushdownRow {
    /// Query label.
    pub query: String,
    /// Courses in the instance.
    pub courses: usize,
    /// Output rows (identical with pushdown on and off).
    pub rows_out: u64,
    /// `rows_scanned` per execution with pushdown off.
    pub off_scanned: u64,
    /// `rows_scanned` per execution with pushdown on.
    pub on_scanned: u64,
    /// `index_probes` with pushdown off.
    pub off_probes: u64,
    /// `index_probes` with pushdown on.
    pub on_probes: u64,
    /// Scan-reduction factor: `off_scanned / max(on_scanned, 1)`.
    pub scan_reduction: f64,
    /// Median latency (ns) with pushdown off.
    pub off_ns: f64,
    /// Median latency (ns) with pushdown on.
    pub on_ns: f64,
    /// Median of per-pair `off / on` latency ratios (interleaved loop).
    pub speedup: f64,
    /// Conjuncts placed below the residual filter per execution.
    pub pushed_conjuncts: u64,
    /// Rows pruned below the residual filter per execution.
    pub pruned_rows: u64,
}

/// B15: optimizer-driven predicate pushdown versus the legacy
/// evaluate-at-the-top filter, on the unmerged university schema.
///
/// Two queries are measured. The *selective chain* scans COURSE,
/// inner-joins TEACH (where the pushed `Eq(T.F.SSN, ssn)` keeps roughly
/// one faculty member's courses out of ~200), then inner-joins ASSIST on
/// the composite non-indexed `[T.C.NR, T.F.SSN]` — under the forced
/// index-nested-loop strategy that last step scans ASSIST once per
/// surviving left row, so evaluating the conjunct at the TEACH probe
/// instead of at the top shrinks the quadratic term by the predicate's
/// selectivity. Like B8's composite query the result is legitimately
/// empty (faculty and student SSNs are disjoint), keeping the query a
/// pure measure of filter placement. The *root Eq upgrade* filters a
/// two-relation outer chain on the root key; the optimizer converts the
/// full scan into an index point lookup, so `rows_scanned` drops to
/// zero.
///
/// Both settings are asserted byte-identical per query; the chain must
/// show a >= 10x scan reduction and the root upgrade must scan zero
/// rows. Latency pairs are interleaved off/on with the median-of-ratios
/// estimator (B8's drift-cancelling idiom). The build cache is disabled
/// so every execution pays its own access work, and the chain pins the
/// join strategy so the delta is filter placement alone, not a strategy
/// flip.
pub fn predicate_pushdown(courses: usize, iters: u32) -> Result<Vec<PushdownRow>> {
    let _span = obs::span("bench.b15.predicate_pushdown").field("courses", courses);
    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )?;
    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
    db.load_state(&u.state)?;
    db.configure(db.config().build_cache_capacity(0));

    // The first faculty SSN: teaches ~1/200th of the offered courses.
    let ssn = 10_000_i64;
    let chain = QueryPlan::scan("COURSE")
        .join(JoinStep::inner("TEACH", &["C.NR"], &["T.C.NR"]))
        .join(JoinStep::inner(
            "ASSIST",
            &["T.C.NR", "T.F.SSN"],
            &["A.C.NR", "A.S.SSN"],
        ))
        .filter(Predicate::eq("T.F.SSN", ssn));
    let offered = *u.offered_courses.first().expect("offered course");
    let root_eq = QueryPlan::scan("COURSE")
        .join(JoinStep::outer("OFFER", &["C.NR"], &["O.C.NR"]))
        .filter(Predicate::eq("C.NR", offered));

    let queries = [
        ("selective chain (Eq pushed to TEACH)", &chain, true),
        ("root Eq upgrade (scan -> lookup)", &root_eq, false),
    ];
    let mut rows = Vec::new();
    for (label, plan, forced_inl) in queries {
        let threshold = if forced_inl {
            usize::MAX
        } else {
            relmerge_engine::DEFAULT_HASH_JOIN_THRESHOLD
        };
        db.configure(db.config().hash_join_threshold(threshold));

        db.configure(db.config().predicate_pushdown(false));
        let (off_rel, off_stats) = db.execute(plan)?;
        db.configure(db.config().predicate_pushdown(true));
        let before = db.metrics_registry().snapshot();
        let (on_rel, on_stats) = db.execute(plan)?;
        let after = db.metrics_registry().snapshot();
        assert_eq!(
            on_rel, off_rel,
            "pushdown must not change the result ({label})"
        );
        let pushed_conjuncts = after.counters["engine.query.pushed_conjuncts"]
            - before.counters["engine.query.pushed_conjuncts"];
        let pruned_rows = after.counters["engine.query.pushdown_pruned_rows"]
            - before.counters["engine.query.pushdown_pruned_rows"];
        if forced_inl {
            assert!(
                on_stats.rows_scanned * 10 <= off_stats.rows_scanned,
                "pushdown must cut the chain's scans >= 10x: on={} off={}",
                on_stats.rows_scanned,
                off_stats.rows_scanned
            );
        } else {
            assert_eq!(
                on_stats.rows_scanned, 0,
                "the pushed root Eq must upgrade the scan to a lookup"
            );
            assert!(
                off_stats.rows_scanned >= courses as u64,
                "the legacy path must pay the full root scan"
            );
        }

        // Interleaved off/on timing pairs; the median of per-pair ratios
        // cancels host-speed drift (see `parallel_query`).
        let mut offs = Vec::with_capacity(iters as usize);
        let mut ons = Vec::with_capacity(iters as usize);
        let mut ratios = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            db.configure(db.config().predicate_pushdown(false));
            let t0 = std::time::Instant::now();
            let _ = db.execute(plan)?;
            let off_ns = obs::elapsed_ns(t0) as f64;
            db.configure(db.config().predicate_pushdown(true));
            let t0 = std::time::Instant::now();
            let _ = db.execute(plan)?;
            let on_ns = obs::elapsed_ns(t0) as f64;
            offs.push(off_ns);
            ons.push(on_ns);
            ratios.push(off_ns / on_ns);
        }
        rows.push(PushdownRow {
            query: label.to_owned(),
            courses,
            rows_out: on_rel.len() as u64,
            off_scanned: off_stats.rows_scanned,
            on_scanned: on_stats.rows_scanned,
            off_probes: off_stats.index_probes,
            on_probes: on_stats.index_probes,
            scan_reduction: off_stats.rows_scanned as f64 / on_stats.rows_scanned.max(1) as f64,
            off_ns: median(&mut offs),
            on_ns: median(&mut ons),
            speedup: median(&mut ratios),
            pushed_conjuncts,
            pruned_rows,
        });
    }
    db.configure(
        db.config()
            .hash_join_threshold(relmerge_engine::DEFAULT_HASH_JOIN_THRESHOLD),
    );
    Ok(rows)
}

/// One row of the B10 build-cache table.
#[derive(Debug, Clone)]
pub struct BuildCacheRow {
    /// Courses in the instance.
    pub courses: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Output rows of the query.
    pub rows_out: u64,
    /// Mean cold latency (ns): the cache is cleared before every
    /// execution, so each one pays the full hash build.
    pub cold_ns: f64,
    /// Mean warm latency (ns): every execution reuses the cached build.
    pub warm_ns: f64,
    /// The headline number: serial cold baseline over this row's warm
    /// run, `cold_ns(workers = 1) / warm_ns`.
    pub speedup: f64,
    /// Cache hits during the warm timing loop.
    pub cache_hits: u64,
    /// Cache misses during the cold timing loop (one per execution).
    pub cache_misses: u64,
    /// Bytes the cached build occupies.
    pub build_bytes: u64,
    /// Partitioned multi-worker builds during the cold loop (0 means the
    /// planner kept every build serial at this scale).
    pub parallel_builds: u64,
    /// Probe-key `Tuple` allocations avoided per execution by the
    /// borrowed-slice lookups.
    pub saved_allocs: u64,
}

/// B10: the versioned build-side cache on the build-heavy composite join,
/// swept over every [`worker_sweep`] worker count.
///
/// Each worker count is measured cold (cache cleared before every
/// execution, so each one rebuilds TEACH's transient hash table) and warm
/// (the first execution populates the cache, every timed one hits it).
/// The headline `speedup` compares each warm run against the *serial*
/// cold baseline — the end-to-end win of cache plus parallelism over the
/// previous executor default. Like B8's composite row, the query's result
/// is legitimately empty (faculty and student SSNs are disjoint), keeping
/// it a pure measure of build-side work.
///
/// Every run — cold or warm, at any worker count — is asserted
/// byte-identical, with identical [`relmerge_engine::QueryStats`], to a
/// cache-off serial reference.
pub fn build_cache_speedup(courses: usize, iters: u32) -> Result<Vec<BuildCacheRow>> {
    let _span = obs::span("bench.b10.build_cache").field("courses", courses);
    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )?;
    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
    db.load_state(&u.state)?;
    let cores = db.parallelism();
    let plan = composite_no_index_query();

    // Cache-off serial reference: every cached run must be byte-identical
    // to it, with identical stats.
    db.configure(db.config().build_cache_capacity(0));
    db.configure(db.config().parallelism(1));
    let (reference, ref_stats) = db.execute(&plan)?;
    db.configure(
        db.config()
            .build_cache_capacity(relmerge_engine::DEFAULT_BUILD_CACHE_BYTES),
    );

    let registry = std::sync::Arc::clone(db.metrics_registry());
    let hits = registry.counter("engine.query.build_cache.hits");
    let misses = registry.counter("engine.query.build_cache.misses");
    let par_builds = registry.counter("engine.query.build.parallel");
    let saved = registry.counter("engine.query.probe_key.saved_allocs");

    let mut serial_cold_ns = 0.0;
    let mut rows = Vec::new();
    for &workers in &worker_sweep(cores) {
        db.configure(db.config().parallelism(workers));

        // Cold: every execution rebuilds.
        db.clear_build_cache();
        let (cold_rel, cold_stats) = db.execute(&plan)?;
        assert_eq!(cold_rel, reference, "cold result must be byte-identical");
        assert_eq!(cold_stats, ref_stats, "cold stats must be identical");
        let m0 = misses.get();
        let p0 = par_builds.get();
        let t = obs::timer("bench.b10.cold").field("workers", workers);
        for _ in 0..iters {
            db.clear_build_cache();
            let _ = db.execute(&plan)?;
        }
        let cold_ns = t.stop() as f64 / f64::from(iters);
        let cache_misses = misses.get() - m0;
        let parallel_builds = par_builds.get() - p0;
        if workers == 1 {
            serial_cold_ns = cold_ns;
        }

        // Warm: populate once, then every execution reuses the build.
        db.clear_build_cache();
        let _ = db.execute(&plan)?;
        let build_bytes = db.build_cache_bytes();
        let (warm_rel, warm_stats) = db.execute(&plan)?;
        assert_eq!(warm_rel, reference, "warm result must be byte-identical");
        assert_eq!(warm_stats, ref_stats, "warm stats must be identical");
        let h0 = hits.get();
        let s0 = saved.get();
        let t = obs::timer("bench.b10.warm").field("workers", workers);
        for _ in 0..iters {
            let _ = db.execute(&plan)?;
        }
        let warm_ns = t.stop() as f64 / f64::from(iters);
        let cache_hits = hits.get() - h0;
        assert!(cache_hits >= 1, "the warm loop must hit the cache");
        let saved_allocs = (saved.get() - s0) / u64::from(iters.max(1));

        rows.push(BuildCacheRow {
            courses,
            workers,
            rows_out: reference.len() as u64,
            cold_ns,
            warm_ns,
            speedup: serial_cold_ns / warm_ns,
            cache_hits,
            cache_misses,
            build_bytes,
            parallel_builds,
            saved_allocs,
        });
    }
    Ok(rows)
}

/// Writes the B8, B10, and B15 rows as machine-readable JSON (the
/// `BENCH_query.json` artifact consumed by CI and by result-comparison
/// tooling). Any section may be empty when only some experiments ran.
pub fn write_parallel_query_json(
    path: &std::path::Path,
    b8: &[ParallelQueryRow],
    b10: &[BuildCacheRow],
    b15: &[PushdownRow],
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::from("{\"experiment\":\"B8+B10+B15\",\"b8\":[");
    for (i, r) in b8.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"query\":\"{}\",\"courses\":{},\"workers\":{},\"rows_out\":{},\
             \"serial_ns\":{:.0},\"parallel_ns\":{:.0},\"baseline_ns\":{:.0},\
             \"speedup\":{:.4},\
             \"rows_per_sec\":{:.0},\"morsels\":{},\"hash_builds\":{},\
             \"rows_scanned\":{},\"index_probes\":{},\
             \"baseline_scanned\":{},\"baseline_probes\":{}}}",
            obs::json_escape(&r.query),
            r.courses,
            r.workers,
            r.rows_out,
            r.serial_ns,
            r.parallel_ns,
            r.baseline_ns,
            r.speedup,
            r.rows_per_sec,
            r.morsels,
            r.hash_builds,
            r.rows_scanned,
            r.index_probes,
            r.baseline_scanned,
            r.baseline_probes,
        );
    }
    out.push_str("],\"b10\":[");
    for (i, r) in b10.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"courses\":{},\"workers\":{},\"rows_out\":{},\
             \"cold_ns\":{:.0},\"warm_ns\":{:.0},\"speedup\":{:.4},\
             \"cache_hits\":{},\"cache_misses\":{},\"build_bytes\":{},\
             \"parallel_builds\":{},\"saved_allocs\":{}}}",
            r.courses,
            r.workers,
            r.rows_out,
            r.cold_ns,
            r.warm_ns,
            r.speedup,
            r.cache_hits,
            r.cache_misses,
            r.build_bytes,
            r.parallel_builds,
            r.saved_allocs,
        );
    }
    out.push_str("],\"b15\":[");
    for (i, r) in b15.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"query\":\"{}\",\"courses\":{},\"rows_out\":{},\
             \"off_scanned\":{},\"on_scanned\":{},\
             \"off_probes\":{},\"on_probes\":{},\
             \"scan_reduction\":{:.2},\
             \"off_ns\":{:.0},\"on_ns\":{:.0},\"speedup\":{:.4},\
             \"pushed_conjuncts\":{},\"pruned_rows\":{}}}",
            obs::json_escape(&r.query),
            r.courses,
            r.rows_out,
            r.off_scanned,
            r.on_scanned,
            r.off_probes,
            r.on_probes,
            r.scan_reduction,
            r.off_ns,
            r.on_ns,
            r.speedup,
            r.pushed_conjuncts,
            r.pruned_rows,
        );
    }
    out.push_str("]}\n");
    std::fs::write(path, out)
}

/// One row of the B14 hot-join ranking table.
#[derive(Debug, Clone)]
pub struct HotJoinRow {
    /// 1-based rank by cumulative cost.
    pub rank: usize,
    /// The edge label, `LEFT->RIGHT[attrs]`.
    pub edge: String,
    /// The ranking key: index probes + rows scanned on the edge.
    pub cumulative_cost: u64,
    /// Index probes spent on the edge.
    pub index_probes: u64,
    /// Rows scanned on the edge.
    pub rows_scanned: u64,
    /// Executions that exercised the edge.
    pub executions: u64,
    /// Intermediate bytes the edge materialized.
    pub intermediate_bytes: u64,
}

/// The B14 result: workload-wide profiler aggregates plus the top-k
/// hot-join ranking.
#[derive(Debug, Clone)]
pub struct WorkloadProfileSummary {
    /// Courses in the instance.
    pub courses: usize,
    /// Operations executed.
    pub ops: usize,
    /// Distinct query fingerprints observed (the skewed read mix has
    /// exactly two shapes, whatever the key skew).
    pub fingerprints: usize,
    /// Executions folded into the profiler.
    pub executions: u64,
    /// Workload-wide index probes (profiler == manual per-query sum).
    pub index_probes: u64,
    /// Workload-wide rows scanned.
    pub rows_scanned: u64,
    /// Workload-wide intermediate bytes.
    pub intermediate_bytes: u64,
    /// Workload-wide peak per-operator intermediate bytes.
    pub peak_intermediate_bytes: u64,
    /// The top-k hot joins, ranked by cumulative cost.
    pub hot_joins: Vec<HotJoinRow>,
}

/// One B14 run: load the unmerged university instance, execute the
/// skewed read mix, and return the profiler snapshot alongside the
/// manually summed per-query [`QueryStats`] — the ground truth the
/// profiler must match exactly.
fn profile_run(
    courses: usize,
    ops: &[relmerge_workload::UniversityOp],
) -> Result<(obs::ProfileSnapshot, relmerge_engine::QueryStats)> {
    use relmerge_workload::UniversityOp;

    let mut rng = StdRng::seed_from_u64(42);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )?;
    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
    db.load_state(&u.state)?;
    let mut manual = relmerge_engine::QueryStats::default();
    for op in ops {
        let (_, stats) = match op {
            UniversityOp::CourseDetail { nr } => db.execute(&unmerged_point_query(*nr))?,
            UniversityOp::ByFaculty { ssn } => db.execute(&unmerged_by_faculty_query(*ssn))?,
            other => panic!("write op in B14 read stream: {other:?}"),
        };
        manual += stats;
    }
    Ok((db.profile_snapshot(), manual))
}

/// B14: the workload profiler on a Zipf-skewed read mix against the
/// unmerged Figure 3 schema — the hot-join report this produces is the
/// evidence stream the merge advisor would consume.
///
/// Two invariants are asserted, not just reported:
///
/// * **Exactness** — the profiler's per-fingerprint totals, summed, equal
///   the manual sum of every execution's [`relmerge_engine::QueryStats`]
///   field for field (peak maxed), and the per-shape split matches the
///   per-operation split.
/// * **Determinism** — a second run over the same operation stream on a
///   fresh database yields a byte-identical hot-join report (wall time is
///   excluded from the report by construction).
pub fn workload_profile(
    courses: usize,
    n_ops: usize,
    top_k: usize,
) -> Result<WorkloadProfileSummary> {
    use relmerge_workload::{skewed_reads, SkewSpec, UniversityOp};

    let _span = obs::span("bench.b14.workload_profile").field("courses", courses);
    // Defaults: 200 faculty (persons 500 × 2/5).
    let mut rng = StdRng::seed_from_u64(14);
    let ops = skewed_reads(&SkewSpec::default(), n_ops, courses, 200, &mut rng);

    let (snap, manual) = profile_run(courses, &ops)?;

    // Exactness: profiler totals == manual per-query sums, field for field.
    let sum = |f: fn(&obs::QueryCost) -> u64| -> u64 {
        snap.queries.values().map(|p| f(&p.totals)).sum()
    };
    assert_eq!(
        snap.executions(),
        ops.len() as u64,
        "every execution folded"
    );
    assert_eq!(sum(|t| t.rows_scanned), manual.rows_scanned);
    assert_eq!(sum(|t| t.index_probes), manual.index_probes);
    assert_eq!(sum(|t| t.hash_builds), manual.hash_builds);
    assert_eq!(sum(|t| t.rows_out), manual.rows_output);
    assert_eq!(sum(|t| t.morsels), manual.morsels);
    assert_eq!(sum(|t| t.intermediate_bytes), manual.intermediate_bytes);
    assert_eq!(
        snap.queries
            .values()
            .map(|p| p.totals.peak_intermediate_bytes)
            .max()
            .unwrap_or(0),
        manual.peak_intermediate_bytes,
        "peak is maxed, not summed"
    );
    // The skewed mix has exactly two shapes — fingerprints hash the plan,
    // not the key constants — and the per-shape execution split matches.
    assert_eq!(snap.queries.len(), 2, "two query shapes, two fingerprints");
    let point_ops = ops
        .iter()
        .filter(|o| matches!(o, UniversityOp::CourseDetail { .. }))
        .count() as u64;
    for p in snap.queries.values() {
        let expected = if p.shape.root == "COURSE" {
            point_ops
        } else {
            ops.len() as u64 - point_ops
        };
        assert_eq!(p.executions, expected, "shape {}", p.shape.label);
    }

    // Determinism: a fresh database + the same stream reproduce the
    // report byte for byte.
    let ranking = obs::report(&snap);
    let (snap2, _) = profile_run(courses, &ops)?;
    assert_eq!(
        obs::report_to_json(&ranking),
        obs::report_to_json(&obs::report(&snap2)),
        "hot-join report must be deterministic"
    );

    let hot_joins: Vec<HotJoinRow> = ranking
        .iter()
        .take(top_k)
        .enumerate()
        .map(|(i, h)| HotJoinRow {
            rank: i + 1,
            edge: h.edge.label(),
            cumulative_cost: h.cumulative_cost,
            index_probes: h.index_probes,
            rows_scanned: h.rows_scanned,
            executions: h.executions,
            intermediate_bytes: h.intermediate_bytes,
        })
        .collect();
    assert!(!hot_joins.is_empty(), "the read mix exercises joins");
    assert!(
        hot_joins.iter().any(|h| h.intermediate_bytes > 0),
        "allocation tracking must attribute bytes to hot edges"
    );

    Ok(WorkloadProfileSummary {
        courses,
        ops: n_ops,
        fingerprints: snap.queries.len(),
        executions: snap.executions(),
        index_probes: sum(|t| t.index_probes),
        rows_scanned: sum(|t| t.rows_scanned),
        intermediate_bytes: sum(|t| t.intermediate_bytes),
        peak_intermediate_bytes: manual.peak_intermediate_bytes,
        hot_joins,
    })
}

/// Writes the B14 summary as machine-readable JSON (the
/// `BENCH_profile.json` artifact).
pub fn write_profile_json(
    path: &std::path::Path,
    summary: &WorkloadProfileSummary,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"experiment\":\"B14\",\"courses\":{},\"ops\":{},\"fingerprints\":{},\
         \"executions\":{},\"index_probes\":{},\"rows_scanned\":{},\
         \"intermediate_bytes\":{},\"peak_intermediate_bytes\":{},\"hot_joins\":[",
        summary.courses,
        summary.ops,
        summary.fingerprints,
        summary.executions,
        summary.index_probes,
        summary.rows_scanned,
        summary.intermediate_bytes,
        summary.peak_intermediate_bytes,
    );
    for (i, h) in summary.hot_joins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rank\":{},\"edge\":\"{}\",\"cumulative_cost\":{},\
             \"index_probes\":{},\"rows_scanned\":{},\"executions\":{},\
             \"intermediate_bytes\":{}}}",
            h.rank,
            obs::json_escape(&h.edge),
            h.cumulative_cost,
            h.index_probes,
            h.rows_scanned,
            h.executions,
            h.intermediate_bytes,
        );
    }
    out.push_str("]}\n");
    std::fs::write(path, out)
}

/// One row of the B9 fault-torture matrix: all cells for one
/// `(injection site, fault mode)` pair, aggregated.
#[derive(Debug, Clone)]
pub struct TortureRow {
    /// Injection site name (see `relmerge_engine::fault::site`).
    pub site: String,
    /// Fault mode label (`"error"` or `"panic"`).
    pub mode: String,
    /// Matrix cells run for this pair (one per arrival index).
    pub cells: u64,
    /// Cells whose fault actually fired.
    pub injections: u64,
    /// Fired cells that surfaced a typed injected/panic error (never a
    /// process abort). For the contained pushdown site
    /// (`engine.query.pushdown`) this instead counts fired cells that
    /// *succeeded* via the verified byte-identical legacy fallback — the
    /// site's acceptance criterion is containment, not a surfaced error.
    pub typed_errors: u64,
    /// Fired cells whose post-abort [`Database::verify_integrity`] report
    /// was clean.
    pub clean_reports: u64,
    /// Fired cells whose post-abort state byte-equalled the pre-batch
    /// snapshot.
    pub snapshot_matches: u64,
    /// Cells whose arm never fired (the batch must then commit).
    pub no_fire: u64,
}

/// B9: the fault-torture matrix. One merged-schema write batch is applied
/// repeatedly; each run arms exactly one injection site at one arrival
/// index, in error mode and in panic mode. Every fired cell must (a)
/// surface a typed error to the caller, (b) leave
/// [`Database::verify_integrity`] clean, and (c) roll the state back to
/// the pre-batch snapshot, byte-identical. A second leg tortures the
/// query path the same way — the partitioned hash build and the
/// build-cache insert — additionally requiring that a failed build never
/// leaves an entry in the cache. A third leg tortures the predicate
/// pushdown planner (`engine.query.pushdown`), whose contract inverts
/// the others: a fault there must be *contained* — the executor falls
/// back to the legacy top-of-plan filter and the query must still
/// succeed, byte-identical (result and stats) to a pushdown-off run.
///
/// Callers that arm panic-mode cells outside the test harness should
/// install a quiet panic hook around the call — the injected panics are
/// caught and converted, but the default hook still prints each one.
pub fn fault_torture(courses: usize, batch_size: usize, seed: u64) -> Result<Vec<TortureRow>> {
    use relmerge_engine::fault::site;
    use relmerge_engine::{FaultMode, FaultPlan};
    use relmerge_workload::{university_ops, write_batches, MixSpec};

    let _span = obs::span("bench.b9.fault_torture")
        .field("courses", courses)
        .field("batch_size", batch_size);
    let (u, m) = university_merge(courses, seed)?;
    let merged_state = m.apply(&u.state)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    // A write-only stream so every statement slot in the batch is a
    // mutation; take the first full batch as the torture subject.
    let ops = university_ops(
        &MixSpec::write_only(),
        batch_size * 3,
        courses,
        20,
        200,
        &mut rng,
    );
    let batches = write_batches(&ops, true, batch_size);
    let batch = batches.first().cloned().unwrap_or_default();

    let build = || -> Result<Database> {
        let mut db = Database::new(m.schema().clone(), DbmsProfile::ideal())?;
        db.load_state(&merged_state)?;
        Ok(db)
    };

    // Dry run with never-firing arms to count per-site arrivals; the
    // arrival count is the matrix width for that site.
    let mut dry = build()?;
    let mut probe = FaultPlan::new();
    for &s in site::BATCH {
        probe = probe.fail_at(s, u64::MAX, FaultMode::Error);
    }
    let probe = dry.set_fault_plan(probe);
    dry.apply_batch(&batch)?;
    let arrivals: Vec<(&'static str, u64)> =
        site::BATCH.iter().map(|&s| (s, probe.hits(s))).collect();

    let mut rows = Vec::new();
    for mode in [FaultMode::Error, FaultMode::Panic] {
        for &(s, hits) in &arrivals {
            let mut row = TortureRow {
                site: s.to_owned(),
                mode: mode.label().to_owned(),
                cells: 0,
                injections: 0,
                typed_errors: 0,
                clean_reports: 0,
                snapshot_matches: 0,
                no_fire: 0,
            };
            for nth in 0..hits {
                row.cells += 1;
                let mut db = build()?;
                let pre = db.snapshot()?;
                let plan = db.set_fault_plan(FaultPlan::new().fail_at(s, nth, mode));
                let outcome = db.apply_batch(&batch);
                if plan.total_fired() == 0 {
                    row.no_fire += 1;
                    outcome?;
                    continue;
                }
                row.injections += 1;
                if let Err(e) = outcome {
                    if matches!(
                        e.root_cause(),
                        DmlError::Schema(Error::Injected { .. })
                            | DmlError::Schema(Error::ExecutionPanic { .. })
                    ) {
                        row.typed_errors += 1;
                    }
                }
                db.clear_fault_plan();
                if db.verify_integrity().is_clean() {
                    row.clean_reports += 1;
                }
                if db.snapshot()? == pre {
                    row.snapshot_matches += 1;
                }
            }
            rows.push(row);
        }
    }

    // The query-path leg: the composite join's transient hash build and
    // its cache insert, against the unmerged schema. A query never
    // mutates state, so the snapshot comparison is about *not* corrupting
    // anything; the sharper invariants are the typed error, the clean
    // integrity report, and the build cache staying empty — a failed
    // build or insert must never leave a poisoned entry behind.
    let qplan = composite_no_index_query();
    let qbuild = || -> Result<Database> {
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
        db.load_state(&u.state)?;
        // Force the transient hash build and a two-chunk partitioned
        // build, so both the serial cache-insert site and every parallel
        // build chunk arrive.
        db.configure(db.config().hash_join_threshold(0));
        db.configure(db.config().parallelism(2));
        db.configure(db.config().build_parallel_threshold(0));
        Ok(db)
    };
    let query_sites = [site::HASH_BUILD, site::BUILD_CACHE_INSERT];
    let mut dry = qbuild()?;
    let mut probe = FaultPlan::new();
    for &s in &query_sites {
        probe = probe.fail_at(s, u64::MAX, FaultMode::Error);
    }
    let probe = dry.set_fault_plan(probe);
    let _ = dry.execute(&qplan)?;
    let q_arrivals: Vec<(&'static str, u64)> =
        query_sites.iter().map(|&s| (s, probe.hits(s))).collect();

    for mode in [FaultMode::Error, FaultMode::Panic] {
        for &(s, hits) in &q_arrivals {
            let mut row = TortureRow {
                site: s.to_owned(),
                mode: mode.label().to_owned(),
                cells: 0,
                injections: 0,
                typed_errors: 0,
                clean_reports: 0,
                snapshot_matches: 0,
                no_fire: 0,
            };
            for nth in 0..hits {
                row.cells += 1;
                let mut db = qbuild()?;
                let pre = db.snapshot()?;
                let plan = db.set_fault_plan(FaultPlan::new().fail_at(s, nth, mode));
                let outcome = db.execute(&qplan);
                if plan.total_fired() == 0 {
                    row.no_fire += 1;
                    outcome?;
                    continue;
                }
                row.injections += 1;
                if let Err(Error::Injected { .. } | Error::ExecutionPanic { .. }) = outcome {
                    row.typed_errors += 1;
                }
                assert_eq!(
                    db.build_cache_len(),
                    0,
                    "a failed build must never be cached ({s}, {mode:?}, nth {nth})"
                );
                db.clear_fault_plan();
                if db.verify_integrity().is_clean() {
                    row.clean_reports += 1;
                }
                if db.snapshot()? == pre {
                    row.snapshot_matches += 1;
                }
            }
            rows.push(row);
        }
    }

    // The pushdown leg: the predicate-planning site fires before any
    // data is touched, so an injected error or panic must never surface.
    // The executor falls back to the legacy top-of-plan filter; the
    // query must succeed byte-identical (result and stats) to a
    // pushdown-off reference with the fallback counter bumped. Those
    // verified contained fallbacks are recorded as this leg's
    // `typed_errors` (see [`TortureRow::typed_errors`]).
    let pquery = unmerged_scan_query().filter(Predicate::not_null("T.F.SSN"));
    let pbuild = || -> Result<Database> {
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
        db.load_state(&u.state)?;
        Ok(db)
    };
    let mut reference = pbuild()?;
    reference.configure(reference.config().predicate_pushdown(false));
    let (ref_rel, ref_stats) = reference.execute(&pquery)?;

    let mut dry = pbuild()?;
    let probe =
        dry.set_fault_plan(FaultPlan::new().fail_at(site::PUSHDOWN, u64::MAX, FaultMode::Error));
    let _ = dry.execute(&pquery)?;
    let p_hits = probe.hits(site::PUSHDOWN);

    for mode in [FaultMode::Error, FaultMode::Panic] {
        let mut row = TortureRow {
            site: site::PUSHDOWN.to_owned(),
            mode: mode.label().to_owned(),
            cells: 0,
            injections: 0,
            typed_errors: 0,
            clean_reports: 0,
            snapshot_matches: 0,
            no_fire: 0,
        };
        for nth in 0..p_hits {
            row.cells += 1;
            let mut db = pbuild()?;
            let pre = db.snapshot()?;
            let plan = db.set_fault_plan(FaultPlan::new().fail_at(site::PUSHDOWN, nth, mode));
            let outcome = db.execute(&pquery);
            if plan.total_fired() == 0 {
                row.no_fire += 1;
                outcome?;
                continue;
            }
            row.injections += 1;
            let fallbacks =
                db.metrics_registry().snapshot().counters["engine.query.pushdown.fallbacks"];
            if let Ok((rel, stats)) = outcome {
                if rel == ref_rel && stats == ref_stats && fallbacks == 1 {
                    row.typed_errors += 1;
                }
            }
            db.clear_fault_plan();
            if db.verify_integrity().is_clean() {
                row.clean_reports += 1;
            }
            if db.snapshot()? == pre {
                row.snapshot_matches += 1;
            }
        }
        rows.push(row);
    }

    // The multi-session leg: `engine.session.snapshot` must be contained
    // to the failing pin attempt, and `engine.writer.commit` must fail
    // the commit typed while the master — and every concurrently-pinned
    // reader — stays byte-identical. Either way the store remains fully
    // serviceable afterwards.
    let sbuild = || -> Result<Store> {
        let mut db = Database::new(m.schema().clone(), DbmsProfile::ideal())?;
        db.load_state(&merged_state)?;
        Ok(Store::new(db))
    };
    let st = sbuild()?;
    let mut probe = FaultPlan::new();
    for &s in site::SESSION {
        probe = probe.fail_at(s, u64::MAX, FaultMode::Error);
    }
    let probe = st.set_fault_plan(probe);
    let dry_session = st.session();
    let _ = dry_session.pin()?;
    dry_session.apply_batch(&batch)?;
    let s_arrivals: Vec<(&'static str, u64)> =
        site::SESSION.iter().map(|&s| (s, probe.hits(s))).collect();

    for mode in [FaultMode::Error, FaultMode::Panic] {
        for &(s, hits) in &s_arrivals {
            let mut row = TortureRow {
                site: s.to_owned(),
                mode: mode.label().to_owned(),
                cells: 0,
                injections: 0,
                typed_errors: 0,
                clean_reports: 0,
                snapshot_matches: 0,
                no_fire: 0,
            };
            for nth in 0..hits {
                row.cells += 1;
                let store = sbuild()?;
                let session = store.session();
                let pre = store.snapshot()?;
                // Pinned *before* the fault arms: the reader the failed
                // commit must not poison.
                let pinned = session.pin()?;
                let plan = store.set_fault_plan(FaultPlan::new().fail_at(s, nth, mode));
                let typed = match s {
                    site::SESSION_SNAPSHOT => match session.pin() {
                        Ok(_) => None,
                        Err(e) => Some(matches!(
                            e,
                            Error::Injected { .. } | Error::ExecutionPanic { .. }
                        )),
                    },
                    _ => match session.apply_batch(&batch) {
                        Ok(_) => None,
                        Err(e) => Some(matches!(
                            e.root_cause(),
                            DmlError::Schema(Error::Injected { .. })
                                | DmlError::Schema(Error::ExecutionPanic { .. })
                        )),
                    },
                };
                if plan.total_fired() == 0 {
                    row.no_fire += 1;
                    assert!(typed.is_none(), "unfired arm must not abort ({s})");
                    continue;
                }
                row.injections += 1;
                if typed == Some(true) {
                    row.typed_errors += 1;
                }
                store.clear_fault_plan();
                if store.verify_integrity().is_clean() {
                    row.clean_reports += 1;
                }
                if store.snapshot()? == pre {
                    row.snapshot_matches += 1;
                }
                // The concurrently-pinned reader is unpoisoned: it still
                // serves its frozen pre-fault view.
                assert_eq!(
                    pinned.snapshot()?,
                    pre,
                    "a failed {s} must not disturb pinned readers ({mode:?}, nth {nth})"
                );
                // And the store stays fully serviceable.
                let _ = session.pin()?;
                session.apply_batch(&batch)?;
            }
            rows.push(row);
        }
    }
    Ok(rows)
}

/// The B13 online-merge ledger: one workload-driven live migration,
/// before/after workload cost, capacity oracles, the migration fault
/// matrix, and the post-merge worker sweep.
#[derive(Debug, Clone)]
pub struct OnlineMergeSummary {
    /// Courses in the instance.
    pub courses: usize,
    /// Read operations in the replayed stream (each executed twice:
    /// unmerged phase A, merged phase B).
    pub ops: usize,
    /// Members of the advisor's chosen merge set (key relation first).
    pub members: Vec<String>,
    /// Name of the merged relation the live database now hosts.
    pub merged_name: String,
    /// Profiler-observed probe+scan cost the chosen merge eliminates.
    pub observed_cost: u64,
    /// Rows rewritten into the merged schema by the migration.
    pub rows_migrated: usize,
    /// Statement chunks the migration applied.
    pub chunks_applied: usize,
    /// Workload index probes before the migration.
    pub pre_probes: u64,
    /// Workload index probes after the migration (strictly smaller).
    pub post_probes: u64,
    /// Workload rows scanned before the migration.
    pub pre_rows_scanned: u64,
    /// Workload rows scanned after the migration.
    pub post_rows_scanned: u64,
    /// Median per-operation latency before the migration (µs).
    pub pre_median_us: f64,
    /// Median per-operation latency after the migration (µs).
    pub post_median_us: f64,
    /// Proposition 4.1 verdict on the pre-migration state.
    pub capacity_4_1: bool,
    /// Propositions 4.1 + 4.2 (`check_both`) verdict across the migration.
    pub capacity_both: bool,
    /// The migration fault matrix (same shape as B9's rows).
    pub torture: Vec<TortureRow>,
    /// Worker counts of the byte-identical post-merge sweep.
    pub workers: Vec<usize>,
}

/// Median of a latency sample, in place.
fn median_us(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// B13: the online merge advisor end to end — run a Zipf-skewed read mix
/// against the live unmerged university database, let the profiler's
/// hot-join evidence drive [`relmerge_core::Advisor::propose_from_profile`],
/// migrate the live database with [`Database::migrate`], and replay the
/// identical stream against the merged schema.
///
/// Asserted, not just reported:
///
/// * the advisor's top workload-backed proposal is the paper's COURSE
///   chain, with nonzero observed cost;
/// * Proposition 4.1 holds on the pre-state and `check_both` (4.1 + 4.2)
///   holds across the migration;
/// * the replayed workload's index probes strictly drop;
/// * every arrival of both `engine.migrate.*` fault sites, in error and
///   panic mode, aborts with a typed error, verifies clean, and rolls the
///   state back byte-identical to the pre-migration snapshot;
/// * the post-merge replay is byte-identical at every worker count.
pub fn online_merge(courses: usize, n_ops: usize, seed: u64) -> Result<OnlineMergeSummary> {
    use relmerge_core::{check_both, check_proposition_4_1, Advisor, AdvisorConfig};
    use relmerge_engine::fault::site;
    use relmerge_engine::{FaultMode, FaultPlan};
    use relmerge_workload::{skewed_reads, SkewSpec, UniversityOp};
    use std::time::Instant;

    let _span = obs::span("bench.b13.online_merge").field("courses", courses);
    let mut rng = StdRng::seed_from_u64(seed);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )?;
    // Defaults: 200 faculty (persons 500 × 2/5), as in B14.
    let mut ops_rng = StdRng::seed_from_u64(seed ^ 0xB13);
    let ops = skewed_reads(&SkewSpec::default(), n_ops, courses, 200, &mut ops_rng);
    let plan_for = |merged: bool, op: &UniversityOp| -> QueryPlan {
        match (merged, op) {
            (false, UniversityOp::CourseDetail { nr }) => unmerged_point_query(*nr),
            (false, UniversityOp::ByFaculty { ssn }) => unmerged_by_faculty_query(*ssn),
            (true, UniversityOp::CourseDetail { nr }) => merged_point_query(*nr),
            (true, UniversityOp::ByFaculty { ssn }) => merged_by_faculty_query(*ssn),
            (_, other) => panic!("write op in B13 read stream: {other:?}"),
        }
    };

    let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
    db.load_state(&u.state)?;

    // Phase A: the hot read mix against the unmerged schema. Every
    // execution folds into the live profiler — the evidence stream the
    // advisor consumes.
    let mut pre_stats = relmerge_engine::QueryStats::default();
    let mut pre_lat = Vec::with_capacity(ops.len());
    for op in &ops {
        let t = Instant::now();
        let (_, stats) = db.execute(&plan_for(false, op))?;
        pre_lat.push(t.elapsed().as_secs_f64() * 1e6);
        pre_stats += stats;
    }

    // The advisor, fed the live profile, ranks the COURSE chain first —
    // the only candidate the observed workload pays for.
    let advisor = Advisor::new(AdvisorConfig::permissive());
    let proposals = advisor.propose_from_profile(&db.profile_snapshot(), db.schema())?;
    let top = proposals
        .iter()
        .find(|p| p.admissible && p.observed_cost > 0)
        .expect("the skewed mix must surface an admissible workload-backed merge");
    assert_eq!(
        top.members[0], "COURSE",
        "hot set rooted at the key relation"
    );
    for m in ["OFFER", "TEACH", "ASSIST"] {
        assert!(
            top.members.iter().any(|x| x == m),
            "{m} must be in the hot merge set: {:?}",
            top.members
        );
    }

    // Plan the chosen merge and check the capacity oracle up front
    // (`migrate` re-checks forward capacity itself before touching state).
    let refs: Vec<&str> = top.members.iter().map(String::as_str).collect();
    let mut plan = relmerge_core::Merge::plan(db.schema(), &refs, "COURSE_M")?;
    plan.remove_all_removable()?;
    let pre_state = db.snapshot()?;
    let capacity_4_1 = check_proposition_4_1(&plan, &pre_state)?;
    assert!(capacity_4_1, "Proposition 4.1 must hold pre-migration");

    // The live migration, then the 4.1 + 4.2 oracle across it.
    let report = db.migrate(&plan)?;
    let post_state = db.snapshot()?;
    let capacity_both = check_both(&plan, &pre_state, &post_state)?.holds();
    assert!(
        capacity_both,
        "Propositions 4.1/4.2 must hold post-migration"
    );
    assert!(
        !report.pre_profile.queries.is_empty(),
        "the pre-merge profile must be archived with the report"
    );

    // Phase B: replay the identical stream against the live, now-merged
    // database. The probe count must strictly drop — that is the payoff
    // the advisor promised.
    let mut post_stats = relmerge_engine::QueryStats::default();
    let mut post_lat = Vec::with_capacity(ops.len());
    for op in &ops {
        let t = Instant::now();
        let (_, stats) = db.execute(&plan_for(true, op))?;
        post_lat.push(t.elapsed().as_secs_f64() * 1e6);
        post_stats += stats;
    }
    assert!(
        post_stats.index_probes < pre_stats.index_probes,
        "merging must strictly cut workload probes: {} -> {}",
        pre_stats.index_probes,
        post_stats.index_probes
    );

    // The post-merge worker sweep: byte-identical results at every level
    // of parallelism, on the migrated (not freshly built) database.
    let cores = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
    let workers = worker_sweep(cores);
    let mut baseline: Option<Vec<relmerge_relational::Relation>> = None;
    for &w in &workers {
        db.configure(db.config().parallelism(w));
        let mut results = Vec::with_capacity(ops.len());
        for op in &ops {
            results.push(db.execute(&plan_for(true, op))?.0);
        }
        match &baseline {
            None => baseline = Some(results),
            Some(b) => assert_eq!(*b, results, "worker count {w} changed replay results"),
        }
    }

    // The migration fault matrix: every arrival of both migration sites,
    // in both modes, against a fresh unmerged twin. Same protocol as B9:
    // a dry run with never-firing arms counts arrivals per site, then one
    // cell per (site, mode, arrival index).
    let fresh = || -> Result<Database> {
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
        db.load_state(&u.state)?;
        Ok(db)
    };
    let mut dry = fresh()?;
    let mut probe = FaultPlan::new();
    for &s in site::MIGRATION {
        probe = probe.fail_at(s, u64::MAX, FaultMode::Error);
    }
    let probe = dry.set_fault_plan(probe);
    dry.migrate(&plan)?;
    let arrivals: Vec<(&'static str, u64)> = site::MIGRATION
        .iter()
        .map(|&s| (s, probe.hits(s)))
        .collect();

    let mut torture = Vec::new();
    for mode in [FaultMode::Error, FaultMode::Panic] {
        for &(s, hits) in &arrivals {
            assert!(hits > 0, "site {s} must arrive during a real migration");
            let mut row = TortureRow {
                site: s.to_owned(),
                mode: mode.label().to_owned(),
                cells: 0,
                injections: 0,
                typed_errors: 0,
                clean_reports: 0,
                snapshot_matches: 0,
                no_fire: 0,
            };
            for nth in 0..hits {
                row.cells += 1;
                let mut db = fresh()?;
                let pre = db.snapshot()?;
                let fp = db.set_fault_plan(FaultPlan::new().fail_at(s, nth, mode));
                let outcome = db.migrate(&plan);
                if fp.total_fired() == 0 {
                    row.no_fire += 1;
                    outcome?;
                    continue;
                }
                row.injections += 1;
                if let Err(Error::Injected { .. } | Error::ExecutionPanic { .. }) = outcome {
                    row.typed_errors += 1;
                }
                db.clear_fault_plan();
                if db.verify_integrity().is_clean() {
                    row.clean_reports += 1;
                }
                if db.snapshot()? == pre {
                    row.snapshot_matches += 1;
                }
            }
            assert!(
                row.no_fire == 0
                    && row.injections == row.cells
                    && row.typed_errors == row.injections
                    && row.clean_reports == row.injections
                    && row.snapshot_matches == row.injections,
                "every migration torture cell must recover: {row:?}"
            );
            torture.push(row);
        }
    }

    Ok(OnlineMergeSummary {
        courses,
        ops: ops.len(),
        members: top.members.clone(),
        merged_name: report.merged_name.clone(),
        observed_cost: top.observed_cost,
        rows_migrated: report.rows_migrated,
        chunks_applied: report.chunks_applied,
        pre_probes: pre_stats.index_probes,
        post_probes: post_stats.index_probes,
        pre_rows_scanned: pre_stats.rows_scanned,
        post_rows_scanned: post_stats.rows_scanned,
        pre_median_us: median_us(&mut pre_lat),
        post_median_us: median_us(&mut post_lat),
        capacity_4_1,
        capacity_both,
        torture,
        workers,
    })
}

/// Writes the B13 summary as machine-readable JSON (the
/// `BENCH_merge.json` artifact).
pub fn write_merge_json(path: &std::path::Path, s: &OnlineMergeSummary) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"experiment\":\"B13\",\"courses\":{},\"ops\":{},\"merged_name\":\"{}\",\"members\":[",
        s.courses,
        s.ops,
        obs::json_escape(&s.merged_name),
    );
    for (i, m) in s.members.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", obs::json_escape(m));
    }
    let _ = write!(
        out,
        "],\"observed_cost\":{},\"rows_migrated\":{},\"chunks_applied\":{},\
         \"pre_probes\":{},\"post_probes\":{},\"pre_rows_scanned\":{},\
         \"post_rows_scanned\":{},\"pre_median_us\":{:.3},\"post_median_us\":{:.3},\
         \"capacity_4_1\":{},\"capacity_both\":{},\"workers\":[",
        s.observed_cost,
        s.rows_migrated,
        s.chunks_applied,
        s.pre_probes,
        s.post_probes,
        s.pre_rows_scanned,
        s.post_rows_scanned,
        s.pre_median_us,
        s.post_median_us,
        s.capacity_4_1,
        s.capacity_both,
    );
    for (i, w) in s.workers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{w}");
    }
    out.push_str("],\"torture\":[");
    for (i, r) in s.torture.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"site\":\"{}\",\"mode\":\"{}\",\"cells\":{},\"injections\":{},\
             \"typed_errors\":{},\"clean_reports\":{},\"snapshot_matches\":{},\
             \"no_fire\":{}}}",
            obs::json_escape(&r.site),
            obs::json_escape(&r.mode),
            r.cells,
            r.injections,
            r.typed_errors,
            r.clean_reports,
            r.snapshot_matches,
            r.no_fire,
        );
    }
    out.push_str("]}\n");
    std::fs::write(path, out)
}

/// One point of the B11 recovery-time-vs-log-length curve: a literal
/// prefix of the write-ahead log, recovered and timed.
#[derive(Debug, Clone)]
pub struct WalRecoveryRow {
    /// Committed workload batches whose records the replayed prefix holds.
    pub batches: usize,
    /// Records the recovery replayed (the seed batch included).
    pub records: u64,
    /// Valid WAL bytes replayed.
    pub wal_bytes: u64,
    /// Wall time of the whole recovery (ns).
    pub replay_ns: u64,
}

/// The B11 durability ledger: WAL append overhead, the literal
/// log-truncation crash matrix, the durability fault matrix, and the
/// recovery-time-vs-log-length curve.
#[derive(Debug, Clone)]
pub struct WalSummary {
    /// Courses in the instance.
    pub courses: usize,
    /// Workload batches committed through the log.
    pub batches: usize,
    /// Statements per batch.
    pub batch_size: usize,
    /// Mean per-batch commit latency with the WAL on (µs).
    pub durable_batch_us: f64,
    /// Mean per-batch commit latency of the in-memory twin (µs).
    pub memory_batch_us: f64,
    /// Relative append overhead: `durable / memory − 1`.
    pub append_overhead: f64,
    /// Crash points exercised by literally truncating the log.
    pub truncation_cells: usize,
    /// Crash points that recovered verify-clean and byte-identical to the
    /// last durably-acked prefix.
    pub truncation_clean: usize,
    /// The durability fault matrix (same row shape as B9). For
    /// `engine.wal.append` a cell passes `snapshot_matches` only if the
    /// rollback holds in memory, at the log position, AND through a fresh
    /// recovery; for the contained `engine.snapshot.write` site
    /// `typed_errors` counts verified containment (batch committed,
    /// generation unchanged), as with B9's pushdown site; for
    /// `engine.recovery.replay` the row verifies fail-typed-then-retry.
    pub torture: Vec<TortureRow>,
    /// Recovery time against replayed log length.
    pub recovery: Vec<WalRecoveryRow>,
}

/// B11: durability torture. Commits a write workload through the
/// write-ahead log (timing the append overhead against an in-memory
/// twin), then attacks the result three ways: literal truncation of the
/// log at every durably-acked boundary plus random mid-record offsets
/// (every cut must recover verify-clean, byte-identical to the last
/// acked prefix); the three durability fault sites in error and panic
/// mode ([`site::WAL_APPEND`] must abort the batch on disk and in
/// memory, [`site::SNAPSHOT_WRITE`] must be contained, and
/// [`site::RECOVERY_REPLAY`] must fail the recovery typed while leaving
/// the directory retry-clean); and a recovery-time-vs-log-length sweep
/// over literal log prefixes.
///
/// Callers that arm panic-mode cells should install a quiet panic hook
/// around the call, as with [`fault_torture`].
///
/// [`site::WAL_APPEND`]: relmerge_engine::fault::site::WAL_APPEND
/// [`site::SNAPSHOT_WRITE`]: relmerge_engine::fault::site::SNAPSHOT_WRITE
/// [`site::RECOVERY_REPLAY`]: relmerge_engine::fault::site::RECOVERY_REPLAY
pub fn wal_torture(
    courses: usize,
    n_batches: usize,
    batch_size: usize,
    seed: u64,
) -> Result<WalSummary> {
    use relmerge_engine::fault::site;
    use relmerge_engine::{DurabilityConfig, EngineConfig, FaultMode, FaultPlan, FsyncPolicy};
    use relmerge_workload::{university_ops, write_batches, MixSpec};
    use std::time::Instant;

    let _span = obs::span("bench.b11.wal_torture")
        .field("courses", courses)
        .field("batches", n_batches);
    let io = |context: &str, e: std::io::Error| Error::Durability {
        detail: format!("{context}: {e}"),
    };
    let dir = std::env::temp_dir().join(format!("relmerge-b11-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = |snapshot_every: u64| {
        EngineConfig::default().durability(Some(
            DurabilityConfig::new(&dir)
                .snapshot_every(snapshot_every)
                // The measured overhead is serialization plus page-cache
                // write; the crash torture cuts the *file*, which fsync
                // cannot widen or narrow.
                .fsync(FsyncPolicy::Never),
        ))
    };
    let cfg = durable(0); // one generation: the whole history stays replayable

    let mut rng = StdRng::seed_from_u64(seed);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )?;

    // Seed through the logged DML path — `load_state` would bypass the
    // log. One deferred-validation batch is order-free and costs a single
    // record.
    let mut db = Database::new_with_config(u.schema.clone(), DbmsProfile::ideal(), cfg.clone())?;
    let mut memory = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
    memory.load_state(&u.state)?;
    let seed_batch: Vec<Statement> = u
        .state
        .iter()
        .flat_map(|(name, rel)| rel.iter().map(move |t| Statement::insert(name, t.clone())))
        .collect();
    db.apply_batch(&seed_batch)?;

    // Leg 1 — append overhead: the same workload against the durable
    // database and its in-memory twin, recording every durably-acked
    // `(offset, state)` prefix point for the crash legs.
    let mut ops_rng = StdRng::seed_from_u64(seed ^ 0xB11);
    let ops = university_ops(
        &MixSpec::write_only(),
        n_batches * batch_size,
        courses,
        20,
        200,
        &mut ops_rng,
    );
    let batches = write_batches(&ops, false, batch_size);
    let (_, seed_off) = db.wal_position().expect("durable database");
    let mut prefixes: Vec<(u64, DatabaseState, usize)> = vec![(seed_off, db.snapshot()?, 0)];
    let mut durable_ns = 0u64;
    let mut memory_ns = 0u64;
    let mut committed = 0usize;
    for batch in &batches {
        let t0 = Instant::now();
        let r = db.apply_batch(batch);
        durable_ns += obs::elapsed_ns(t0);
        let t0 = Instant::now();
        let m = memory.apply_batch(batch);
        memory_ns += obs::elapsed_ns(t0);
        if r.is_ok() != m.is_ok() {
            return Err(Error::Durability {
                detail: "durable and in-memory twins diverged".to_owned(),
            });
        }
        if r.is_ok() {
            committed += 1;
            let (_, off) = db.wal_position().expect("durable database");
            prefixes.push((off, db.snapshot()?, committed));
        }
    }
    let per_batch = batches.len().max(1) as f64;
    let durable_batch_us = durable_ns as f64 / 1e3 / per_batch;
    let memory_batch_us = memory_ns as f64 / 1e3 / per_batch;
    let append_overhead = if memory_ns > 0 {
        durable_ns as f64 / memory_ns as f64 - 1.0
    } else {
        0.0
    };
    let (generation, end) = db.wal_position().expect("durable database");
    let expected_final = db.snapshot()?;
    drop(db);

    // Leg 2 — literal crash torture: cut the log at every durably-acked
    // boundary and at random mid-record offsets; every cut must recover
    // verify-clean and byte-identical to the last acked prefix.
    let log = dir.join(format!("wal-{generation}.log"));
    let pristine = std::fs::read(&log).map_err(|e| io("read log", e))?;
    let base = prefixes[0].0;
    let mut kills: Vec<u64> = prefixes.iter().map(|(off, _, _)| *off).collect();
    for _ in 0..8 {
        kills.push(rng.gen_range(base..=end));
    }
    let mut truncation_cells = 0usize;
    let mut truncation_clean = 0usize;
    for kill in kills {
        std::fs::write(&log, &pristine[..kill as usize]).map_err(|e| io("cut log", e))?;
        truncation_cells += 1;
        let (rec, _) = Database::recover(cfg.clone())?;
        let expected = prefixes
            .iter()
            .rev()
            .find(|(off, _, _)| *off <= kill)
            .map_or(&prefixes[0].1, |(_, s, _)| s);
        if rec.verify_integrity().is_clean() && rec.snapshot()? == *expected {
            truncation_clean += 1;
        }
        std::fs::write(&log, &pristine).map_err(|e| io("restore log", e))?;
    }

    // Leg 3 — recovery time against log length, over literal prefixes at
    // evenly spaced committed-batch checkpoints.
    let mut recovery = Vec::new();
    let steps: Vec<usize> = if prefixes.len() <= 5 {
        (0..prefixes.len()).collect()
    } else {
        (0..5).map(|i| i * (prefixes.len() - 1) / 4).collect()
    };
    for &i in &steps {
        let (off, _, at) = &prefixes[i];
        std::fs::write(&log, &pristine[..*off as usize]).map_err(|e| io("cut log", e))?;
        let (_, report) = Database::recover(cfg.clone())?;
        recovery.push(WalRecoveryRow {
            batches: *at,
            records: report.records_replayed(),
            wal_bytes: report.wal_bytes_replayed,
            replay_ns: report.replay_ns,
        });
    }
    std::fs::write(&log, &pristine).map_err(|e| io("restore log", e))?;

    // Leg 4 — the durability fault matrix. Recovery-replay first, while
    // the pristine log still holds the full history: a fault during
    // replay fails the whole recovery typed, the disk is left untouched,
    // and the retry succeeds.
    let mut torture: Vec<TortureRow> = Vec::new();
    let (probe_db, probe_report) = Database::recover(cfg.clone())?;
    drop(probe_db);
    let replayable = probe_report.records_replayed();
    let nths: Vec<u64> = if replayable <= 6 {
        (0..replayable).collect()
    } else {
        (0..6).map(|i| i * (replayable - 1) / 5).collect()
    };
    for mode in [FaultMode::Error, FaultMode::Panic] {
        let mut row = TortureRow {
            site: site::RECOVERY_REPLAY.to_owned(),
            mode: mode.label().to_owned(),
            cells: 0,
            injections: 0,
            typed_errors: 0,
            clean_reports: 0,
            snapshot_matches: 0,
            no_fire: 0,
        };
        for &nth in &nths {
            row.cells += 1;
            let plan =
                std::sync::Arc::new(FaultPlan::new().fail_at(site::RECOVERY_REPLAY, nth, mode));
            let outcome = Database::recover_with_faults(cfg.clone(), Some(plan.clone()));
            if plan.fired(site::RECOVERY_REPLAY) == 0 {
                row.no_fire += 1;
                let _ = outcome?;
                continue;
            }
            row.injections += 1;
            if let Err(Error::Injected { .. } | Error::ExecutionPanic { .. }) = outcome {
                row.typed_errors += 1;
            }
            let (rec, _) = Database::recover(cfg.clone())?;
            if rec.verify_integrity().is_clean() {
                row.clean_reports += 1;
            }
            if rec.snapshot()? == expected_final {
                row.snapshot_matches += 1;
            }
        }
        torture.push(row);
    }

    // A pool of pre-tested batches for the write-side legs: each cell
    // needs a batch known to commit, so the armed fault is the only
    // failure cause. An in-memory fork (`Database::clone`) is the tester.
    let mut spare_rng = StdRng::seed_from_u64(seed ^ 0xA11D);
    let spare_ops = university_ops(
        &MixSpec::write_only(),
        64 * batch_size.max(1),
        courses,
        20,
        200,
        &mut spare_rng,
    );
    let mut pool = write_batches(&spare_ops, false, batch_size);
    let next_committing =
        |db: &Database, pool: &mut Vec<Vec<Statement>>| -> Result<Vec<Statement>> {
            while let Some(b) = pool.pop() {
                let mut fork = db.clone();
                if fork.apply_batch(&b).is_ok() {
                    return Ok(b);
                }
            }
            Err(Error::Durability {
                detail: "ran out of committing batches".to_owned(),
            })
        };

    // WAL-append leg: the failed append aborts the batch — in memory
    // (rollback), at the log position, and on disk (a fresh recovery
    // still sees the pre-batch state).
    let (mut db, _) = Database::recover(cfg.clone())?;
    let probe_batch = next_committing(&db, &mut pool)?;
    let probe =
        db.set_fault_plan(FaultPlan::new().fail_at(site::WAL_APPEND, u64::MAX, FaultMode::Error));
    db.apply_batch(&probe_batch)?;
    let hits = probe.hits(site::WAL_APPEND);
    db.clear_fault_plan();
    for mode in [FaultMode::Error, FaultMode::Panic] {
        let mut row = TortureRow {
            site: site::WAL_APPEND.to_owned(),
            mode: mode.label().to_owned(),
            cells: 0,
            injections: 0,
            typed_errors: 0,
            clean_reports: 0,
            snapshot_matches: 0,
            no_fire: 0,
        };
        for nth in 0..hits {
            row.cells += 1;
            let batch = next_committing(&db, &mut pool)?;
            let pre = db.snapshot()?;
            let pre_pos = db.wal_position();
            let plan = db.set_fault_plan(FaultPlan::new().fail_at(site::WAL_APPEND, nth, mode));
            let outcome = db.apply_batch(&batch);
            if plan.total_fired() == 0 {
                row.no_fire += 1;
                db.clear_fault_plan();
                outcome?;
                continue;
            }
            row.injections += 1;
            if let Err(e) = outcome {
                if matches!(
                    e.root_cause(),
                    DmlError::Schema(Error::Injected { .. })
                        | DmlError::Schema(Error::ExecutionPanic { .. })
                ) {
                    row.typed_errors += 1;
                }
            }
            db.clear_fault_plan();
            if db.verify_integrity().is_clean() {
                row.clean_reports += 1;
            }
            let (rec, _) = Database::recover(cfg.clone())?;
            if db.snapshot()? == pre && db.wal_position() == pre_pos && rec.snapshot()? == pre {
                row.snapshot_matches += 1;
            }
        }
        torture.push(row);
    }
    drop(db);

    // Snapshot leg: a failed snapshot is *contained* — the batch that
    // triggered the cadence stays committed (it is already in the log),
    // the generation does not advance, and recovery replays the gap.
    let (mut db, _) = Database::recover(durable(1))?;
    for mode in [FaultMode::Error, FaultMode::Panic] {
        let mut row = TortureRow {
            site: site::SNAPSHOT_WRITE.to_owned(),
            mode: mode.label().to_owned(),
            cells: 1,
            injections: 0,
            typed_errors: 0,
            clean_reports: 0,
            snapshot_matches: 0,
            no_fire: 0,
        };
        let batch = next_committing(&db, &mut pool)?;
        let gen_before = db.wal_position().map(|(g, _)| g);
        let plan = db.set_fault_plan(FaultPlan::new().fail_at(site::SNAPSHOT_WRITE, 0, mode));
        let outcome = db.apply_batch(&batch);
        if plan.fired(site::SNAPSHOT_WRITE) == 0 {
            row.no_fire += 1;
            db.clear_fault_plan();
            outcome?;
            torture.push(row);
            continue;
        }
        row.injections += 1;
        db.clear_fault_plan();
        // Containment is this site's acceptance criterion (cf. B9's
        // pushdown site): the batch committed and no snapshot landed.
        if outcome.is_ok() && db.wal_position().map(|(g, _)| g) == gen_before {
            row.typed_errors += 1;
        }
        if db.verify_integrity().is_clean() {
            row.clean_reports += 1;
        }
        let (rec, _) = Database::recover(durable(0))?;
        if rec.snapshot()? == db.snapshot()? {
            row.snapshot_matches += 1;
        }
        torture.push(row);
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    Ok(WalSummary {
        courses,
        batches: committed,
        batch_size,
        durable_batch_us,
        memory_batch_us,
        append_overhead,
        truncation_cells,
        truncation_clean,
        torture,
        recovery,
    })
}

/// Writes the B11 durability ledger as one JSON object (`BENCH_wal.json`).
pub fn write_wal_json(path: &std::path::Path, s: &WalSummary) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"experiment\":\"B11\",\"courses\":{},\"batches\":{},\"batch_size\":{},\
         \"durable_batch_us\":{:.3},\"memory_batch_us\":{:.3},\"append_overhead\":{:.4},\
         \"truncation_cells\":{},\"truncation_clean\":{},\"recovery\":[",
        s.courses,
        s.batches,
        s.batch_size,
        s.durable_batch_us,
        s.memory_batch_us,
        s.append_overhead,
        s.truncation_cells,
        s.truncation_clean,
    );
    for (i, r) in s.recovery.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"batches\":{},\"records\":{},\"wal_bytes\":{},\"replay_ns\":{}}}",
            r.batches, r.records, r.wal_bytes, r.replay_ns,
        );
    }
    out.push_str("],\"torture\":[");
    for (i, r) in s.torture.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"site\":\"{}\",\"mode\":\"{}\",\"cells\":{},\"injections\":{},\
             \"typed_errors\":{},\"clean_reports\":{},\"snapshot_matches\":{},\
             \"no_fire\":{}}}",
            obs::json_escape(&r.site),
            obs::json_escape(&r.mode),
            r.cells,
            r.injections,
            r.typed_errors,
            r.clean_reports,
            r.snapshot_matches,
            r.no_fire,
        );
    }
    out.push_str("]}\n");
    std::fs::write(path, out)
}

/// One row of the B12 concurrency curve: N client threads of the mixed
/// university workload over one shared [`Store`].
#[derive(Debug, Clone)]
pub struct ConcurrencyRow {
    /// Client threads (one [`relmerge_engine::Session`] each).
    pub threads: usize,
    /// Operations executed across all threads (reads + writes).
    pub ops: usize,
    /// Read operations — each pins a snapshot and runs a query.
    pub reads: usize,
    /// Write operations — each commits a batch through the writer path.
    pub writes: usize,
    /// Wall time of the whole storm (ns).
    pub total_ns: f64,
    /// Aggregate operations per second across all threads.
    pub ops_per_sec: f64,
    /// Median read latency under concurrent writes (ns, pin + execute).
    pub read_p50_ns: f64,
    /// 95th-percentile read latency under concurrent writes (ns).
    pub read_p95_ns: f64,
    /// Shared-cache hits this run folded into the store registry.
    pub cache_hits: u64,
    /// Shared-cache misses this run folded into the store registry.
    pub cache_misses: u64,
    /// Pins retained across the storm and re-read byte-identical after it.
    pub frozen_reads: usize,
}

/// The B12 ledger: the thread sweep plus its two side proofs — the
/// single-`Database` baseline and the deterministic cross-session
/// cache-reuse probe.
#[derive(Debug, Clone)]
pub struct ConcurrencySummary {
    /// Courses in the instance.
    pub courses: usize,
    /// Logical operations per client thread.
    pub ops_per_thread: usize,
    /// ns/op of thread 0's stream on a plain [`Database`] (no store).
    pub baseline_ns_per_op: f64,
    /// Hits of the deterministic two-session same-join probe (> 0 proves
    /// one session's build served another's query).
    pub cross_session_hits: u64,
    /// One row per swept thread count ([`worker_sweep`]).
    pub rows: Vec<ConcurrencyRow>,
}

/// Thread `t`'s deterministic operation stream: the default read-mostly
/// mix with its new course numbers shifted into a per-thread range, so
/// concurrent writers never collide on a key and every write commits.
fn b12_thread_ops(t: usize, n: usize, courses: usize) -> Vec<relmerge_workload::UniversityOp> {
    use relmerge_workload::{university_ops, MixSpec, UniversityOp};
    let mut rng = StdRng::seed_from_u64(0xB12 + t as u64);
    let mut ops = university_ops(&MixSpec::default(), n, courses, 20, 200, &mut rng);
    let offset = (t as i64 + 1) * 10_000_000;
    for op in &mut ops {
        if let UniversityOp::AddCourse { nr, .. } | UniversityOp::DropCourse { nr } = op {
            if *nr >= 1_000_000 {
                *nr += offset;
            }
        }
    }
    ops
}

/// The query a read op lowers to against the unmerged schema (`None`
/// for write ops).
fn b12_read_plan(op: &relmerge_workload::UniversityOp) -> Option<QueryPlan> {
    use relmerge_workload::UniversityOp;
    match op {
        UniversityOp::CourseDetail { nr } => Some(unmerged_point_query(*nr)),
        UniversityOp::ByFaculty { ssn } => Some(unmerged_by_faculty_query(*ssn)),
        UniversityOp::AddCourse { .. } | UniversityOp::DropCourse { .. } => None,
    }
}

/// `pct`-quantile of an ascending latency sample (0 when empty).
fn percentile_ns(sorted: &[u64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * pct).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

/// B12: N client threads of the mixed university workload over one
/// shared [`Store`] — snapshot readers, serialized writers, and the
/// store-wide versioned build cache, swept over every [`worker_sweep`]
/// thread count.
///
/// Each thread mints its own [`relmerge_engine::Session`]: read ops pin
/// a snapshot and run the unmerged point or reverse-lookup query; write
/// ops commit their statements through the serialized writer path; every
/// 8th op additionally runs [`composite_no_index_query`] — its
/// transient TEACH build flows through the shared versioned cache, so
/// concurrent sessions at the same relation version reuse one build.
///
/// Three correctness proofs ride along with the timing:
/// - **frozen pins** — each thread retains its first read pins across
///   the whole storm and the harness re-executes them afterwards,
///   asserting byte-identical rows (a reader never observes later
///   commits);
/// - **cross-session reuse** — a deterministic two-session probe on a
///   fresh store asserts the second session's identical join hits the
///   build the first inserted (`cross_session_hits > 0`);
/// - **baseline sanity** — thread 0's stream is also run against a plain
///   [`Database`], and the single-thread store row must land within a
///   generous factor of it (the session layer adds one pin per read, not
///   a new execution path). The factor is wide because shared single-core
///   CI hosts drift; the printed table carries the honest numbers.
pub fn concurrent_sessions(courses: usize, ops_per_thread: usize) -> Result<ConcurrencySummary> {
    use relmerge_workload::unmerged_statements;

    let _span = obs::span("bench.b12.concurrency").field("courses", courses);
    let mut rng = StdRng::seed_from_u64(12);
    let u = generate_university(
        &UniversitySpec {
            courses,
            ..UniversitySpec::default()
        },
        &mut rng,
    )?;
    let mut base = Database::new(u.schema.clone(), DbmsProfile::ideal())?;
    base.load_state(&u.state)?;
    let cores = base.parallelism();

    // Single-`Database` baseline: thread 0's exact stream, no store.
    let baseline_ns_per_op = {
        let mut solo = base.fork();
        let ops = b12_thread_ops(0, ops_per_thread, courses);
        let t0 = std::time::Instant::now();
        for (i, op) in ops.iter().enumerate() {
            match b12_read_plan(op) {
                Some(plan) => {
                    let _ = solo.execute(&plan)?;
                }
                None => {
                    solo.apply_batch(&unmerged_statements(op))
                        .expect("baseline write stream is collision-free");
                }
            }
            if i % 8 == 0 {
                let _ = solo.execute(&composite_no_index_query())?;
            }
        }
        t0.elapsed().as_nanos() as f64 / ops.len() as f64
    };

    // Deterministic cross-session reuse proof: a fresh store, two
    // sessions, the same composite join — the second session's execution
    // must hit the build the first session's miss inserted.
    let cross_session_hits = {
        let store = Store::new(base.fork());
        let first = store.session();
        let second = store.session();
        let plan = composite_no_index_query();
        let (first_rows, _) = first.pin()?.execute(&plan)?;
        let before = store.metrics_registry().snapshot();
        let pin = second.pin()?;
        let (second_rows, _) = pin.execute(&plan)?;
        assert_eq!(
            first_rows, second_rows,
            "a shared-cache hit must not change the result"
        );
        drop(pin);
        drop(second);
        drop(first);
        let diff = store.metrics_registry().snapshot().diff(&before);
        let hits = diff
            .counters
            .get("engine.query.build_cache.hits")
            .copied()
            .unwrap_or(0);
        assert!(
            hits > 0,
            "the second session's identical join must reuse the shared build"
        );
        hits
    };

    let mut rows = Vec::new();
    for &threads in &worker_sweep(cores) {
        let store = Store::new(base.fork());
        let before = store.metrics_registry().snapshot();
        let t0 = std::time::Instant::now();
        let per_thread: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let store = store.clone();
                    let ops = b12_thread_ops(t, ops_per_thread, courses);
                    scope.spawn(move || {
                        let session = store.session();
                        let mut lat: Vec<u64> = Vec::new();
                        let (mut reads, mut writes) = (0usize, 0usize);
                        let mut frozen = Vec::new();
                        for (i, op) in ops.iter().enumerate() {
                            match b12_read_plan(op) {
                                Some(plan) => {
                                    let t0 = std::time::Instant::now();
                                    let pin = session.pin().expect("pin");
                                    let (rel, _) = pin.execute(&plan).expect("read");
                                    lat.push(t0.elapsed().as_nanos() as u64);
                                    reads += 1;
                                    if frozen.len() < 2 {
                                        frozen.push((pin, plan, rel));
                                    }
                                }
                                None => {
                                    session
                                        .apply_batch(&unmerged_statements(op))
                                        .expect("per-thread streams are collision-free");
                                    writes += 1;
                                }
                            }
                            if i % 8 == 0 {
                                let t0 = std::time::Instant::now();
                                let pin = session.pin().expect("pin");
                                let _ = pin
                                    .execute(&composite_no_index_query())
                                    .expect("composite probe");
                                lat.push(t0.elapsed().as_nanos() as u64);
                                reads += 1;
                            }
                        }
                        (lat, reads, writes, frozen)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("b12 client thread"))
                .collect()
        });
        let total_ns = t0.elapsed().as_nanos() as f64;

        // The retained pins saw the whole storm; their reads must replay
        // byte-identical now that every writer has committed.
        let mut lat: Vec<u64> = Vec::new();
        let (mut reads, mut writes, mut frozen_reads) = (0usize, 0usize, 0usize);
        for (l, r, w, frozen) in per_thread {
            lat.extend(l);
            reads += r;
            writes += w;
            for (pin, plan, rel) in frozen {
                let (again, _) = pin.execute(&plan)?;
                assert_eq!(
                    again, rel,
                    "a pinned snapshot must stay frozen under concurrent writes"
                );
                frozen_reads += 1;
            }
        }
        // Pins (and their session metric shards) are dropped; the store
        // registry now holds every counter this run charged.
        let diff = store.metrics_registry().snapshot().diff(&before);
        let pick = |name: &str| diff.counters.get(name).copied().unwrap_or(0);
        let cache_hits = pick("engine.query.build_cache.hits");
        let cache_misses = pick("engine.query.build_cache.misses");
        if threads >= 2 {
            assert!(
                cache_hits > 0,
                "concurrent sessions issuing the same join must share builds"
            );
        }
        lat.sort_unstable();
        let ops = reads + writes;
        rows.push(ConcurrencyRow {
            threads,
            ops,
            reads,
            writes,
            total_ns,
            ops_per_sec: ops as f64 / (total_ns / 1e9),
            read_p50_ns: percentile_ns(&lat, 0.50),
            read_p95_ns: percentile_ns(&lat, 0.95),
            cache_hits,
            cache_misses,
            frozen_reads,
        });
    }

    let n1 = rows
        .iter()
        .find(|r| r.threads == 1)
        .expect("worker_sweep always contains 1");
    let n1_ns_per_op = n1.total_ns / n1.ops as f64;
    assert!(
        n1_ns_per_op < baseline_ns_per_op * 10.0,
        "one session over a store must stay in the same regime as a plain \
         Database: {n1_ns_per_op:.0} ns/op vs baseline {baseline_ns_per_op:.0} ns/op"
    );

    Ok(ConcurrencySummary {
        courses,
        ops_per_thread,
        baseline_ns_per_op,
        cross_session_hits,
        rows,
    })
}

/// Writes the B12 concurrency ledger as one JSON object
/// (`BENCH_concurrency.json`).
pub fn write_concurrency_json(
    path: &std::path::Path,
    s: &ConcurrencySummary,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"experiment\":\"B12\",\"courses\":{},\"ops_per_thread\":{},\
         \"baseline_ns_per_op\":{:.1},\"cross_session_hits\":{},\"rows\":[",
        s.courses, s.ops_per_thread, s.baseline_ns_per_op, s.cross_session_hits,
    );
    for (i, r) in s.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"threads\":{},\"ops\":{},\"reads\":{},\"writes\":{},\
             \"total_ns\":{:.0},\"ops_per_sec\":{:.1},\"read_p50_ns\":{:.0},\
             \"read_p95_ns\":{:.0},\"cache_hits\":{},\"cache_misses\":{},\
             \"frozen_reads\":{}}}",
            r.threads,
            r.ops,
            r.reads,
            r.writes,
            r.total_ns,
            r.ops_per_sec,
            r.read_p50_ns,
            r.read_p95_ns,
            r.cache_hits,
            r.cache_misses,
            r.frozen_reads,
        );
    }
    out.push_str("]}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_speedup_shape() {
        let rows = query_speedup(&[200], 50).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        // The unmerged query needs 4 probes (1 lookup + 3 joins); merged 1.
        assert_eq!(r.unmerged_probes, 4);
        assert_eq!(r.merged_probes, 1);
        // The merged plan must not be slower for point queries (shape, not
        // magnitude — debug builds are noisy, so allow generous slack).
        assert!(r.point_speedup > 0.8, "{r:?}");
    }

    #[test]
    fn reverse_lookup_queries_agree() {
        let (u, m) = university_merge(300, 3).unwrap();
        let (unmerged, merged) = university_databases(&u, &m).unwrap();
        // Probe every faculty member; results must agree and the merged
        // plan must use its secondary index (no scans).
        for ssn in 10_000..10_040 {
            let (r1, s1) = unmerged.execute(&unmerged_by_faculty_query(ssn)).unwrap();
            let (r2, s2) = merged.execute(&merged_by_faculty_query(ssn)).unwrap();
            assert!(r1.set_eq_unordered(&r2), "ssn {ssn}: {r1} vs {r2}");
            assert_eq!(s2.rows_scanned, 0, "merged reverse lookup must not scan");
            assert_eq!(s2.index_probes, 1);
            assert!(s1.index_probes >= 1);
        }
    }

    #[test]
    fn maintenance_shape() {
        let rows = maintenance_cost(100).unwrap();
        assert_eq!(rows.len(), 2);
        let unmerged = &rows[0];
        let merged = &rows[1];
        // Unmerged: 4 statements per entity, no procedural checks.
        assert_eq!(unmerged.statements, 400);
        assert_eq!(unmerged.procedural, 0);
        assert!(unmerged.declarative > 0);
        // Merged: 1 statement per entity, trigger checks present.
        assert_eq!(merged.statements, 100);
        assert!(merged.procedural > 0);
    }

    #[test]
    fn mixed_workload_runs_and_agrees() {
        let rows = mixed_workload(200, 2_000).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].ops, 2_000);
        assert_eq!(rows[0].reads + rows[0].writes, 2_000);
        assert!(rows[0].reads > rows[0].writes, "read-mostly mix");
        assert!(rows[1].total_ns > 0.0);
    }

    #[test]
    fn batch_dml_defers_and_saves_checks() {
        // `batch_dml` itself asserts the final states are identical.
        let rows = batch_dml(200, 400, 32).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.statements > 0, "{r:?}");
            assert!(r.batches > 1, "{r:?}");
            // The acceptance criterion: strictly fewer checks and probes
            // than per-statement application of the same stream.
            assert!(r.batched_checks < r.eager_checks, "{r:?}");
            assert!(r.batched_probes < r.eager_probes, "{r:?}");
            assert!(r.deferred_checks > 0, "group validation ran: {r:?}");
        }
    }

    #[test]
    fn concurrent_sessions_shape() {
        // `concurrent_sessions` itself asserts frozen pins replay
        // byte-identical, cross-session cache reuse, and the N=1 regime
        // bound; here we check the ledger's shape and the JSON artifact.
        let s = concurrent_sessions(120, 48).unwrap();
        assert!(s.cross_session_hits > 0);
        assert!(s.baseline_ns_per_op > 0.0);
        assert!(s.rows.iter().any(|r| r.threads == 1));
        assert!(s.rows.iter().any(|r| r.threads >= 2));
        for r in &s.rows {
            assert_eq!(r.ops, r.reads + r.writes, "{r:?}");
            assert!(r.reads > r.writes, "read-mostly mix: {r:?}");
            assert!(r.frozen_reads > 0, "{r:?}");
            assert!(r.ops_per_sec > 0.0, "{r:?}");
            assert!(r.read_p95_ns >= r.read_p50_ns, "{r:?}");
            if r.threads >= 2 {
                assert!(r.cache_hits > 0, "{r:?}");
            }
        }
        let path = std::env::temp_dir().join("relmerge_b12_shape_test.json");
        write_concurrency_json(&path, &s).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("{\"experiment\":\"B12\""), "{text}");
        assert!(text.contains("\"rows\":["), "{text}");
    }

    #[test]
    fn worker_sweep_is_sorted_and_deduped() {
        assert_eq!(worker_sweep(1), vec![1, 2, 4]);
        assert_eq!(worker_sweep(3), vec![1, 2, 3, 4]);
        assert_eq!(worker_sweep(4), vec![1, 2, 4]);
        assert_eq!(worker_sweep(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn parallel_query_shape() {
        // `parallel_query` itself asserts byte-identical results, equal
        // stats, and strictly lower access work than the baseline.
        let rows = parallel_query(300, 2).unwrap();
        // One row per query per swept worker count, chain rows first.
        let sweep = rows.len() / 2;
        assert_eq!(rows.len(), 2 * sweep);
        assert!(sweep >= 3, "the sweep includes 1, 2, and 4 workers");
        let chain_rows = &rows[..sweep];
        assert!(
            chain_rows.iter().any(|r| r.workers > 1),
            "multi-worker entries exist even on a single-core host"
        );
        for chain in chain_rows {
            assert_eq!(chain.rows_out, 300, "{chain:?}");
            assert!(chain.morsels > 0, "{chain:?}");
            assert!(chain.hash_builds > 0, "covering indexes exist: {chain:?}");
            // The chain's win is probes → borrowed-index hash builds.
            assert!(chain.index_probes < chain.baseline_probes, "{chain:?}");
            assert!(chain.baseline_ns > 0.0, "measured baseline: {chain:?}");
        }
        for composite in &rows[sweep..] {
            assert_eq!(composite.rows_out, 0, "disjoint SSNs: {composite:?}");
            // The composite's win is per-row scans → one build-side scan.
            assert!(
                composite.rows_scanned < composite.baseline_scanned,
                "{composite:?}"
            );
            assert_eq!(composite.index_probes, composite.baseline_probes);
            assert!(
                composite.baseline_ns > 0.0,
                "measured baseline: {composite:?}"
            );
        }
    }

    #[test]
    fn median_is_order_insensitive_and_spike_robust() {
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [4.0, 1.0]), 2.5);
        // A 100× interference spike does not move the median.
        assert_eq!(median(&mut [2.0, 200.0, 1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn build_cache_speedup_shape() {
        // `build_cache_speedup` itself asserts byte-identity and stat
        // equality against the cache-off serial reference; wall-clock
        // magnitudes are left to the release-mode B10 run.
        let rows = build_cache_speedup(300, 2).unwrap();
        assert!(rows.len() >= 3, "sweep includes 1, 2, and 4 workers");
        assert_eq!(rows[0].workers, 1);
        for r in &rows {
            assert!(r.cache_hits >= 1, "{r:?}");
            assert_eq!(r.cache_misses, 2, "every cold iteration misses: {r:?}");
            assert!(r.build_bytes > 0, "{r:?}");
            assert!(r.saved_allocs > 0, "every probe row saves one: {r:?}");
            assert!(r.cold_ns > 0.0 && r.warm_ns > 0.0 && r.speedup > 0.0);
        }
    }

    #[test]
    fn composite_baseline_is_measured_and_quadratic() {
        // The composite baseline is a real forced-INL execution;
        // `parallel_query` asserts internally that it scans exactly
        // `|ASSIST| + |ASSIST| × |TEACH|` rows. Cross-check the recorded
        // row against an independent forced run.
        let courses = 120;
        let rows = parallel_query(courses, 1).unwrap();
        let composite = &rows[rows.len() / 2]; // first composite-query row
        let mut rng = StdRng::seed_from_u64(42);
        let u = generate_university(
            &UniversitySpec {
                courses,
                ..UniversitySpec::default()
            },
            &mut rng,
        )
        .unwrap();
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).unwrap();
        db.load_state(&u.state).unwrap();
        db.configure(db.config().hash_join_threshold(usize::MAX));
        db.configure(db.config().parallelism(1));
        let (_, forced) = db.execute(&composite_no_index_query()).unwrap();
        assert_eq!(forced.rows_scanned, composite.baseline_scanned);
        assert_eq!(forced.index_probes, composite.baseline_probes);
    }

    #[test]
    fn parallel_query_json_is_well_formed() {
        let b8 = parallel_query(150, 1).unwrap();
        let b10 = build_cache_speedup(150, 1).unwrap();
        let b15 = predicate_pushdown(150, 1).unwrap();
        let path = std::env::temp_dir().join("relmerge_bench_query_test.json");
        write_parallel_query_json(&path, &b8, &b10, &b15).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("{\"experiment\":\"B8+B10+B15\",\"b8\":["));
        assert!(text.contains("],\"b10\":["));
        assert!(text.contains("],\"b15\":["));
        assert!(text.trim_end().ends_with("]}"));
        for key in ["\"rows_per_sec\":", "\"baseline_ns\":"] {
            assert_eq!(text.matches(key).count(), b8.len(), "{key}");
        }
        for key in ["\"cache_hits\":", "\"warm_ns\":"] {
            assert_eq!(text.matches(key).count(), b10.len(), "{key}");
        }
        for key in ["\"scan_reduction\":", "\"pushed_conjuncts\":"] {
            assert_eq!(text.matches(key).count(), b15.len(), "{key}");
        }
        assert_eq!(
            text.matches("\"speedup\":").count(),
            b8.len() + b10.len() + b15.len(),
            "every row carries a speedup"
        );
    }

    #[test]
    fn predicate_pushdown_shape() {
        // `predicate_pushdown` itself asserts byte-identity, the >= 10x
        // chain scan reduction, and the scan-to-lookup upgrade; the
        // checks here cover the recorded rows.
        let rows = predicate_pushdown(200, 2).unwrap();
        assert_eq!(rows.len(), 2);
        let chain = &rows[0];
        assert!(chain.scan_reduction >= 10.0, "{chain:?}");
        assert!(chain.pushed_conjuncts >= 1, "{chain:?}");
        assert!(chain.pruned_rows > 0, "{chain:?}");
        let root = &rows[1];
        assert_eq!(root.on_scanned, 0, "{root:?}");
        assert!(root.off_scanned >= 200, "{root:?}");
        assert!(root.rows_out >= 1, "{root:?}");
        for r in &rows {
            assert!(r.off_ns > 0.0 && r.on_ns > 0.0 && r.speedup > 0.0, "{r:?}");
        }
    }

    #[test]
    fn workload_profile_shape() {
        // `workload_profile` itself asserts the exactness (profiler totals
        // == manual per-query sums) and determinism invariants; the shape
        // checks here cover the summary surface.
        let s = workload_profile(200, 300, 5).unwrap();
        assert_eq!(s.ops, 300);
        assert_eq!(s.fingerprints, 2);
        assert_eq!(s.executions, 300);
        assert!(s.index_probes > 0);
        assert!(s.intermediate_bytes > 0, "allocation tracking is live");
        assert!(s.peak_intermediate_bytes > 0);
        assert!(s.peak_intermediate_bytes <= s.intermediate_bytes);
        assert!(!s.hot_joins.is_empty() && s.hot_joins.len() <= 5);
        // Ranking is 1-based, dense, and sorted by cumulative cost.
        for (i, h) in s.hot_joins.iter().enumerate() {
            assert_eq!(h.rank, i + 1);
            assert_eq!(h.cumulative_cost, h.index_probes + h.rows_scanned);
            if i > 0 {
                assert!(h.cumulative_cost <= s.hot_joins[i - 1].cumulative_cost);
            }
        }
        // The point query dominates the skewed mix, so its first join
        // edge (COURSE→OFFER) must lead the ranking.
        assert_eq!(s.hot_joins[0].edge, "COURSE->OFFER[O.C.NR]");
    }

    #[test]
    fn profile_json_is_well_formed() {
        let s = workload_profile(120, 100, 3).unwrap();
        let path = std::env::temp_dir().join("relmerge_bench_profile_test.json");
        write_profile_json(&path, &s).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("{\"experiment\":\"B14\","));
        assert!(text.trim_end().ends_with("]}"));
        assert_eq!(
            text.matches("\"cumulative_cost\":").count(),
            s.hot_joins.len()
        );
        assert_eq!(
            text.matches("\"edge\":").count(),
            s.hot_joins.len(),
            "every hot join carries its relation pair"
        );
        assert!(text.contains("\"intermediate_bytes\":"));
    }

    #[test]
    fn fault_torture_every_cell_recovers() {
        let rows = fault_torture(60, 8, 11).unwrap();
        // 4 batch sites × 2 modes, plus 2 query sites × 2 modes, plus
        // the contained pushdown site × 2 modes, plus 2 session sites
        // × 2 modes.
        assert_eq!(rows.len(), 18);
        let total_cells: u64 = rows.iter().map(|r| r.cells).sum();
        assert!(total_cells > 8, "matrix is wider than one cell per pair");
        for r in &rows {
            assert!(r.cells > 0, "{r:?}");
            assert_eq!(r.no_fire, 0, "every arrival index must fire: {r:?}");
            // The acceptance criterion: typed error, clean integrity,
            // byte-identical rollback — for every fired cell.
            assert_eq!(r.injections, r.cells, "{r:?}");
            assert_eq!(r.typed_errors, r.injections, "{r:?}");
            assert_eq!(r.clean_reports, r.injections, "{r:?}");
            assert_eq!(r.snapshot_matches, r.injections, "{r:?}");
        }
    }

    #[test]
    fn online_merge_shape() {
        let s = online_merge(60, 40, 7).unwrap();
        // The advisor chose the paper's chain from the observed workload.
        assert_eq!(s.merged_name, "COURSE_M");
        assert_eq!(s.members[0], "COURSE");
        assert!(s.observed_cost > 0, "{s:?}");
        // Capacity oracles and the probe payoff (the strict-drop and
        // torture invariants are asserted inside online_merge; re-state
        // the headline ones on the summary).
        assert!(s.capacity_4_1 && s.capacity_both);
        assert!(s.post_probes < s.pre_probes, "{s:?}");
        assert!(s.rows_migrated > 0 && s.chunks_applied > 0);
        // 2 migration sites × 2 modes.
        assert_eq!(s.torture.len(), 4);
        assert!(!s.workers.is_empty());
    }

    #[test]
    fn merge_json_is_well_formed() {
        let s = online_merge(60, 40, 7).unwrap();
        let path = std::env::temp_dir().join("relmerge_bench_merge_test.json");
        write_merge_json(&path, &s).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("{\"experiment\":\"B13\","));
        assert!(text.trim_end().ends_with("}"));
        assert_eq!(text.matches("\"site\":").count(), s.torture.len());
        assert!(text.contains("\"pre_probes\":"));
        assert!(text.contains("\"capacity_both\":true"));
    }

    #[test]
    fn remove_effect_shrinks() {
        let rows = remove_effect(&[200]).unwrap();
        let r = &rows[0];
        assert_eq!(r.arity, (7, 4));
        assert!(r.values.1 < r.values.0);
        assert!(r.nulls.1 < r.nulls.0);
        assert!(r.constraints.1 < r.constraints.0);
    }

    #[test]
    fn wal_torture_matrix_is_green_at_smoke_scale() {
        // Panic-mode cells deliberately panic inside the engine; keep the
        // default hook from spraying backtraces.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let s = wal_torture(60, 6, 6, 7);
        std::panic::set_hook(default_hook);
        let s = s.unwrap();
        assert!(s.batches > 0);
        assert_eq!(s.truncation_clean, s.truncation_cells, "{s:?}");
        // 3 sites × 2 modes, every cell fired and fully recovered.
        assert_eq!(s.torture.len(), 6);
        for r in &s.torture {
            assert_eq!(r.no_fire, 0, "{r:?}");
            assert_eq!(r.injections, r.cells, "{r:?}");
            assert_eq!(r.typed_errors, r.injections, "{r:?}");
            assert_eq!(r.clean_reports, r.injections, "{r:?}");
            assert_eq!(r.snapshot_matches, r.injections, "{r:?}");
        }
        // The recovery curve covers the empty prefix through the full log.
        assert!(s.recovery.len() >= 2);
        assert_eq!(s.recovery[0].batches, 0);
        assert_eq!(s.recovery.last().unwrap().batches, s.batches);
        assert!(s.recovery.last().unwrap().records > s.recovery[0].records);
    }

    #[test]
    fn wal_json_is_well_formed() {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let s = wal_torture(60, 4, 4, 11);
        std::panic::set_hook(default_hook);
        let s = s.unwrap();
        let path = std::env::temp_dir().join("relmerge_bench_wal_test.json");
        write_wal_json(&path, &s).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("{\"experiment\":\"B11\","));
        assert!(text.trim_end().ends_with("}"));
        assert_eq!(text.matches("\"site\":").count(), s.torture.len());
        assert_eq!(text.matches("\"replay_ns\":").count(), s.recovery.len());
        assert!(text.contains("\"append_overhead\":"));
        assert!(text.contains("\"truncation_clean\":"));
    }
}
