//! Shared experiment harnesses behind the `reproduce` binary and the
//! Criterion benches.
//!
//! Each experiment function returns structured rows; the binary formats
//! them as the tables recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;
